//! Explore the reachability-based detection deadline (§3): how the
//! deadline shrinks as the state approaches the unsafe boundary, how
//! the uncertainty bound and the actuator range tighten it, and what
//! the reachable boxes look like.
//!
//! Run with: `cargo run --example deadline_explorer`

use awsad::prelude::*;

fn main() {
    // Vehicle-turning-style scalar plant: x' = (u - x) / 0.2 at 20 ms.
    let system = LtiSystem::from_continuous(
        Matrix::diagonal(&[-5.0]),
        Matrix::from_rows(&[&[5.0]]).unwrap(),
        Matrix::identity(1),
        0.02,
    )
    .unwrap();
    let safe = BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap();
    let u_set = BoxSet::from_bounds(&[-3.0], &[3.0]).unwrap();

    println!("deadline vs distance to the unsafe boundary (safe |x| <= 2):");
    let cfg = ReachConfig::new(u_set.clone(), 0.075, safe.clone(), 100).unwrap();
    let est = DeadlineEstimator::new(system.a(), system.b(), cfg).unwrap();
    for x in [0.0, 0.5, 1.0, 1.5, 1.8, 1.95] {
        let d = est.deadline(&Vector::from_slice(&[x]));
        println!("  x = {x:>5.2}  ->  deadline {d}");
    }

    println!();
    println!("reachable boxes from x = 1.0 (worst-case control + noise):");
    for t in [1usize, 2, 4, 8, 12] {
        let boxed = est.reach_box(&Vector::from_slice(&[1.0]), t).unwrap();
        println!("  t = {t:>2}: {boxed}");
    }

    println!();
    println!("tightening the uncertainty bound extends the deadline:");
    for eps in [0.3, 0.15, 0.075, 0.01] {
        let cfg = ReachConfig::new(u_set.clone(), eps, safe.clone(), 100).unwrap();
        let est = DeadlineEstimator::new(system.a(), system.b(), cfg).unwrap();
        let d = est.deadline(&Vector::from_slice(&[1.0]));
        println!("  eps = {eps:>5.3}  ->  deadline from x=1.0: {d}");
    }

    println!();
    println!("a weaker actuator (smaller U) also extends the deadline:");
    for gamma in [3.0, 1.5, 0.75, 0.3] {
        let u = BoxSet::from_bounds(&[-gamma], &[gamma]).unwrap();
        let cfg = ReachConfig::new(u, 0.075, safe.clone(), 100).unwrap();
        let est = DeadlineEstimator::new(system.a(), system.b(), cfg).unwrap();
        let d = est.deadline(&Vector::from_slice(&[1.0]));
        println!("  |u| <= {gamma:>4.2}  ->  deadline from x=1.0: {d}");
    }

    println!();
    println!("accounting for estimate noise (initial ball, §3.3.1) tightens it:");
    let cfg = ReachConfig::new(u_set, 0.075, safe, 100).unwrap();
    let est = DeadlineEstimator::new(system.a(), system.b(), cfg).unwrap();
    for r0 in [0.0, 0.05, 0.2, 0.5] {
        let d = est
            .checked_deadline(&Vector::from_slice(&[1.0]), r0)
            .unwrap();
        println!("  r0 = {r0:>4.2}  ->  deadline from x=1.0: {d}");
    }
}
