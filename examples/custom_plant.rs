//! Bring your own plant: define a custom CPS model (a 2-D thermal
//! process), attach the detection system through the same `CpsModel`
//! interface the built-in benchmarks use, and run a Monte-Carlo cell
//! on it.
//!
//! Run with: `cargo run --example custom_plant`

use awsad::models::{AttackProfile, CpsModel};
use awsad::prelude::*;
use awsad::sim::{run_cell, AttackKind, EpisodeConfig};

fn thermal_process() -> CpsModel {
    // Two coupled thermal masses: x1 = core temperature deviation,
    // x2 = enclosure temperature deviation, u = heater power deviation.
    let a_c = Matrix::from_rows(&[&[-0.5, 0.3], &[0.2, -0.4]]).unwrap();
    let b_c = Matrix::from_rows(&[&[0.8], &[0.0]]).unwrap();
    let system = LtiSystem::from_continuous(a_c, b_c, Matrix::identity(2), 0.1).unwrap();

    CpsModel {
        name: "Thermal Process",
        system,
        control_limits: BoxSet::from_bounds(&[-4.0], &[4.0]).unwrap(),
        epsilon: 0.05,
        sensor_noise: 0.03,
        safe_set: BoxSet::from_bounds(&[-3.0, -4.0], &[3.0, 4.0]).unwrap(),
        threshold: Vector::from_slice(&[0.06, 0.06]),
        pid_channels: vec![PidChannel::new(
            0,
            0,
            PidGains::new(2.0, 1.5, 0.0),
            Reference::constant(1.0),
        )],
        x0: Vector::zeros(2),
        default_max_window: 40,
        state_names: vec!["core_temp", "enclosure_temp"],
        attack_profile: AttackProfile {
            target_dim: 0,
            bias_range: (0.35, 0.9),
            ramp_time_range: (80, 200),
            delay_range: (10, 40),
            replay_len: 20,
            reference_step: -0.8,
            onset_range: (150, 250),
            duration_range: (40, 120),
        },
    }
}

fn main() {
    let model = thermal_process();
    model.validate().expect("custom model is well-formed");

    println!(
        "custom model: {} ({} states)",
        model.name,
        model.state_dim()
    );
    let est = model.deadline_estimator(model.default_max_window).unwrap();
    println!(
        "nominal deadline from the operating point: {}",
        est.deadline(&Vector::from_slice(&[1.0, 0.5]))
    );

    let cfg = EpisodeConfig::for_model(&model);
    for kind in AttackKind::attacks() {
        let cell = run_cell(&model, kind, 30, &cfg, 2024);
        println!(
            "{kind}: adaptive detected {}/30 (DM {}), fixed detected {}/30 (DM {})",
            cell.adaptive.detected,
            cell.adaptive.deadline_misses,
            cell.fixed.detected,
            cell.fixed.deadline_misses
        );
        assert!(cell.adaptive.deadline_misses <= cell.fixed.deadline_misses);
    }
    println!();
    println!("the adaptive detector transfers to a model the paper never saw —");
    println!("only the CpsModel description (plant, PID, U, eps, S, tau) changes.");
}
