//! Detection-as-a-service over loopback TCP.
//!
//! Starts an `awsad-serve` server in-process, connects the blocking
//! client, opens one remote session per plant family, and streams
//! each session a seeded attack episode in batches. Everything the
//! client sees — alarms, windows, deadlines — travelled through the
//! versioned binary wire protocol; the final metrics query shows the
//! engine counters next to the server's transport counters.
//!
//! Run with `cargo run --release --example serve_demo`.

use awsad::models::Simulator;
use awsad::prelude::*;
use awsad::serve::wire::WireTick;
use awsad::sim::run_episode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 64;

fn main() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    println!("detection server listening on {}\n", server.local_addr());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    println!(
        "{:<22} {:>6} {:>7} {:>7} {:>11}",
        "session", "ticks", "alarms", "onset", "1st alarm"
    );
    for sim in Simulator::all() {
        let model = sim.build();
        let mut cfg = EpisodeConfig::for_model(&model);
        cfg.steps = cfg.steps.min(300);

        // A seeded bias-attack episode, generated locally; only raw
        // measurements cross the wire — detection happens server-side.
        let seed = 4200 + sim.table1_row() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let scenario = sample_attack(&model, AttackKind::Bias, &mut rng);
        let mut attack = scenario.attack;
        let episode = run_episode(
            &model,
            attack.as_mut(),
            Some(scenario.reference),
            &cfg,
            seed,
        );

        // The spec pins w_m to the episode's max window so the remote
        // detector matches what the episode was profiled with, and
        // installs an exact deadline cache (decisions unchanged).
        let mut spec = SessionSpec::model_defaults(sim.table1_row() as u8);
        spec.max_window = cfg.max_window as u32;
        spec.cache_capacity = 4096;
        let session = client.open_session(&spec).expect("open session");

        let ticks: Vec<WireTick> = episode
            .estimates
            .iter()
            .zip(&episode.inputs)
            .map(|(x, u)| WireTick {
                estimate: x.as_slice().to_vec(),
                input: u.as_slice().to_vec(),
            })
            .collect();

        let mut outcomes = Vec::with_capacity(ticks.len());
        for chunk in ticks.chunks(BATCH) {
            outcomes.extend(client.tick_batch(session.id, chunk).expect("tick batch"));
        }

        let alarms = outcomes.iter().filter(|o| o.alarm()).count();
        let onset = episode.attack_onset;
        let first_alarm = onset
            .and_then(|t| {
                outcomes
                    .iter()
                    .find(|o| o.seq as usize >= t && o.alarm())
                    .map(|o| o.seq)
            })
            .map(|s| s.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22} {:>6} {:>7} {:>7} {:>11}",
            format!("{} (#{})", sim, session.id),
            outcomes.len(),
            alarms,
            onset.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            first_alarm,
        );
        client.close_session(session.id).expect("close session");
    }

    let m = client.metrics().expect("metrics");
    println!("\nserver metrics (engine | transport)");
    println!("  ticks processed        {}", m.ticks_processed);
    println!("  alarms raised          {}", m.alarms_raised);
    println!("  degraded ticks         {}", m.degraded_ticks);
    println!("  queue high-water       {}", m.queue_depth_high_water);
    for (name, lat) in [
        ("log stage", m.log_latency),
        ("detect stage", m.detect_latency),
    ] {
        println!(
            "  {name:<14} mean {:>8.0} ns, p99 ≤ {}",
            lat.mean_ns,
            lat.p99_bound_ns
                .map(|b| format!("{b} ns"))
                .unwrap_or_else(|| "overflow".into()),
        );
    }
    println!("  frames in/out          {}/{}", m.frames_in, m.frames_out);
    println!("  decode errors          {}", m.decode_errors);
    println!(
        "  connections            {} opened, {} dropped",
        m.connections_opened, m.connections_dropped
    );

    server.shutdown();
    println!("\nserver shut down cleanly");
}
