//! Streaming detection across a fleet of 64 plant instances.
//!
//! Each session owns one simulator's detection state (data logger +
//! adaptive detector with an exact deadline cache installed) and is
//! fed the measurement/input trace of a seeded attack episode through
//! the `awsad-runtime` engine. A fixed worker pool drains all sessions
//! concurrently; the engine's built-in metrics summarize throughput,
//! alarms, queue pressure, and per-stage latency at the end.
//!
//! Run with `cargo run --release --example streaming_detection`.

use awsad::core::{AdaptiveDetector, DetectorConfig};
use awsad::models::Simulator;
use awsad::prelude::*;
use awsad::sim::run_episode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SESSIONS: usize = 64;

fn main() {
    // Block throttles producers when a session queue fills, so every
    // tick gets the full adaptive treatment; switch to
    // `BackpressurePolicy::Degrade` to instead absorb bursts on the
    // cheap w_m fallback path (outcomes flagged `degraded`).
    let engine = DetectionEngine::new(EngineConfig {
        workers: 0, // one per CPU
        queue_capacity: 32,
        backpressure: BackpressurePolicy::Block,
        ..EngineConfig::default()
    });
    let simulators = Simulator::all();

    // Pre-generate each session's trace (one attacked episode per
    // plant instance), then stream every trace through the engine.
    let mut sessions = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS {
        let sim = simulators[i % simulators.len()];
        let model = sim.build();
        let mut cfg = EpisodeConfig::for_model(&model);
        cfg.steps = cfg.steps.min(400);
        let seed = 9000 + i as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let scenario = sample_attack(&model, AttackKind::Bias, &mut rng);
        let mut attack = scenario.attack;
        let episode = run_episode(
            &model,
            attack.as_mut(),
            Some(scenario.reference),
            &cfg,
            seed,
        );

        let det_cfg = DetectorConfig::new(model.threshold.clone(), cfg.max_window).unwrap();
        let mut detector =
            AdaptiveDetector::new(det_cfg, model.deadline_estimator(cfg.max_window).unwrap())
                .unwrap();
        detector.set_initial_radius(cfg.initial_radius);
        detector.set_deadline_cache(DeadlineCache::new(CacheConfig::exact(4096)));
        let logger = model.data_logger(cfg.max_window);

        let (session, outcomes) = engine.add_session(logger, detector);
        sessions.push((sim, session, outcomes, episode));
    }

    // Interleave submission round-robin across the fleet, the arrival
    // order a shared ingest point would see.
    let rounds = sessions
        .iter()
        .map(|(_, _, _, e)| e.estimates.len())
        .max()
        .unwrap_or(0);
    for t in 0..rounds {
        for (_, session, _, episode) in &sessions {
            if t < episode.estimates.len() {
                session
                    .submit(Tick {
                        estimate: episode.estimates[t].clone(),
                        input: episode.inputs[t].clone(),
                    })
                    .expect("session open");
            }
        }
    }
    engine.drain();

    println!(
        "fleet: {SESSIONS} sessions on {} workers\n",
        engine.workers()
    );
    println!(
        "{:<22} {:>7} {:>7} {:>10} {:>10}",
        "session", "ticks", "alarms", "1st alarm", "cache hit%"
    );
    let mut total_hits = 0u64;
    let mut total_queries = 0u64;
    for (i, (sim, session, outcomes, episode)) in sessions.iter().enumerate() {
        let outs: Vec<TickOutcome> = outcomes.try_iter().collect();
        let alarms = outs.iter().filter(|o| o.step.alarm()).count();
        let first = episode
            .attack_onset
            .and_then(|onset| {
                outs.iter()
                    .find(|o| o.seq as usize >= onset && o.step.alarm())
            })
            .map(|o| o.seq.to_string())
            .unwrap_or_else(|| "-".into());
        let stats = session.deadline_cache_stats().expect("cache installed");
        total_hits += stats.hits;
        total_queries += stats.hits + stats.misses;
        if i < 8 || i == SESSIONS - 1 {
            println!(
                "{:<22} {:>7} {:>7} {:>10} {:>9.1}%",
                format!("{} #{i}", sim),
                outs.len(),
                alarms,
                first,
                100.0 * stats.hit_rate(),
            );
        } else if i == 8 {
            println!("  … {} more sessions …", SESSIONS - 9);
        }
    }

    let m = engine.metrics();
    println!("\nruntime metrics");
    println!("  ticks processed        {}", m.ticks_processed);
    println!("  alarms raised          {}", m.alarms_raised);
    println!("  degraded ticks         {}", m.degraded_ticks);
    println!("  queue high-water       {}", m.queue_depth_high_water);
    println!(
        "  deadline cache         {:.1}% hits ({total_hits}/{total_queries})",
        100.0 * total_hits as f64 / total_queries.max(1) as f64
    );
    for (name, hist) in [
        ("log stage", m.log_latency),
        ("detect stage", m.detect_latency),
    ] {
        println!(
            "  {name:<14} mean {:>8.0} ns, p99 ≤ {} ns",
            hist.mean_ns(),
            hist.quantile_bound_ns(0.99)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
}
