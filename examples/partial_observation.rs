//! Lifting the paper's full-observability assumption: a plant whose
//! sensor measures only part of the state, a Luenberger observer
//! reconstructing the rest, and the unchanged detection stack running
//! on the observer's estimates.
//!
//! Run with: `cargo run --example partial_observation`

use awsad::lti::Observer;
use awsad::prelude::*;

fn main() {
    // Double-integrator cart: position measured, velocity not.
    let system = LtiSystem::new_discrete(
        Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 0.95]]).unwrap(),
        Matrix::from_rows(&[&[0.005], &[0.1]]).unwrap(),
        Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
        0.1,
    )
    .unwrap();
    assert!(system.is_observable(), "position alone observes the cart");
    assert!(system.is_controllable());

    // Full-state twin used by the detection stack (predictions need
    // the full state transition; the observer supplies the state).
    let full_state_model = LtiSystem::new_discrete_fully_observable(
        system.a().clone(),
        system.b().clone(),
        system.dt(),
    )
    .unwrap();

    let gain = Matrix::from_rows(&[&[0.9], &[1.2]]).unwrap();
    let mut observer = Observer::new(system.clone(), gain, Vector::zeros(2)).unwrap();
    println!(
        "observer error dynamics spectral radius: {:.3} (convergent: {})",
        awsad::linalg::spectral_radius(&observer.error_dynamics()).unwrap(),
        observer.is_convergent()
    );

    let max_window = 30;
    let reach = ReachConfig::new(
        BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(),
        0.02,
        BoxSet::from_bounds(&[-4.0, f64::NEG_INFINITY], &[4.0, f64::INFINITY]).unwrap(),
        max_window,
    )
    .unwrap();
    let estimator = DeadlineEstimator::new(system.a(), system.b(), reach).unwrap();
    let config = DetectorConfig::new(Vector::from_slice(&[0.08, 0.08]), max_window).unwrap();
    let mut logger = DataLogger::new(full_state_model, max_window);
    let mut detector = AdaptiveDetector::new(config, estimator).unwrap();

    let mut pid = PidController::new(
        vec![PidChannel::new(
            0,
            0,
            PidGains::new(3.0, 0.2, 4.0),
            Reference::constant(1.0),
        )],
        BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(),
        0.1,
    )
    .unwrap();

    let mut plant = Plant::new(
        system.clone(),
        Vector::zeros(2),
        NoiseModel::uniform_ball(0.005).unwrap(),
    );
    // Attack the *measurement* channel (1-D): +0.6 bias from step 150.
    let mut attack = BiasAttack::new(AttackWindow::new(150, Some(60)), Vector::from_slice(&[0.6]));

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(21);
    let mut first_alarm = None;
    for t in 0..300usize {
        let y = attack.tamper(t, &plant.measure());
        // The observer turns the (possibly corrupted) 1-D measurement
        // into a full state estimate.
        let u_prev_estimate = observer.estimate().clone();
        let u = pid.control(t, &u_prev_estimate);
        observer.update(&u, &y);
        logger.record(observer.estimate().clone(), u.clone());
        let out = detector.step(&logger);
        if out.alarm() && first_alarm.is_none() && t >= 150 {
            first_alarm = Some((t, out.window));
        }
        plant.step(&u, &mut rng);
    }

    match first_alarm {
        Some((t, w)) => {
            println!("sensor bias at step 150; first alarm at step {t} (window {w})");
            println!("=> the detection stack is agnostic to where estimates come from:");
            println!("   the observer's innovation turns the measurement bias into");
            println!("   exactly the residual pattern the window detector consumes.");
            assert!(t <= 160, "detection too slow: {t}");
        }
        None => panic!("the detector missed the attack through the observer"),
    }
}
