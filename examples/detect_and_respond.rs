//! Detection is only useful if it leaves time to *act* (§1: "detecting
//! an attack after consequences occur is just as damaging"). This
//! example closes that loop: when the adaptive detector raises an
//! alarm, the controller stops trusting the sensors and steers the
//! plant toward the safe center using open-loop predictions from the
//! last *trusted* state estimate — the same trusted point the deadline
//! estimator uses.
//!
//! With the response enabled the vehicle survives a bias attack that
//! otherwise drives it out of its safe envelope. Because the adaptive
//! detector alerts within the detection deadline, the recovery starts
//! while recovery is still possible — that is the entire point of
//! deadline-aware detection.
//!
//! Run with: `cargo run --example detect_and_respond`

use awsad::models::Simulator;
use awsad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One closed-loop run; returns (first alarm, first unsafe step).
fn run(respond: bool) -> (Option<usize>, Option<usize>) {
    let model = Simulator::VehicleTurning.build();
    let w_m = model.default_max_window;
    let mut plant = Plant::new(
        model.system.clone(),
        model.x0.clone(),
        NoiseModel::uniform_ball(model.epsilon * 0.5).unwrap(),
    );
    let mut pid = model.controller().unwrap();
    let mut logger = model.data_logger(w_m);
    let mut detector = AdaptiveDetector::new(
        DetectorConfig::new(model.threshold.clone(), w_m).unwrap(),
        model.deadline_estimator(w_m).unwrap(),
    )
    .unwrap();
    detector.set_initial_radius(model.sensor_noise);

    // Large, unsafe-driving sensor bias (beyond the stealthy band —
    // the attacker here wants damage, not stealth).
    let mut attack = BiasAttack::new(AttackWindow::from_step(300), Vector::from_slice(&[-1.4]));
    let sensor_noise = NoiseModel::uniform_ball(model.sensor_noise).unwrap();

    let mut rng = StdRng::seed_from_u64(17);
    let mut first_alarm: Option<usize> = None;
    let mut first_unsafe: Option<usize> = None;
    // Recovery state: open-loop prediction from the last trusted
    // estimate, maintained once the alarm fires.
    let mut recovery_estimate: Option<Vector> = None;

    for t in 0..700usize {
        if first_unsafe.is_none() && !model.safe_set.contains(plant.state()) {
            first_unsafe = Some(t);
        }
        let measured = &plant.measure() + &sensor_noise.sample(1, &mut rng);
        let estimate = attack.tamper(t, &measured);

        let u = if let Some(pred) = &recovery_estimate {
            // Contingency mode: ignore sensors; P-control on the
            // predicted state toward the safe center (0.0).
            let u = Vector::from_slice(&[(-2.0 * pred[0]).clamp(-3.0, 3.0)]);
            recovery_estimate = Some(model.system.step(pred, &u));
            u
        } else {
            pid.control(t, &estimate)
        };

        logger.record(estimate, u.clone());
        let out = detector.step(&logger);
        if out.alarm() && first_alarm.is_none() && t >= 300 {
            first_alarm = Some(t);
            if respond {
                // Seed the recovery with the newest *trusted* estimate
                // (outside the detection window — the attacked samples
                // are quarantined).
                let trusted = logger
                    .trusted_entry(out.window)
                    .expect("logger has history")
                    .estimate
                    .clone();
                recovery_estimate = Some(trusted);
            }
        }
        plant.step(&u, &mut rng);
    }
    (first_alarm, first_unsafe)
}

fn main() {
    let (alarm_no, unsafe_no) = run(false);
    let (alarm_yes, unsafe_yes) = run(true);

    println!("vehicle turning, -1.4 sensor bias from step 300 (safe |yaw| <= 2)");
    println!();
    println!("without response: alarm at {alarm_no:?}, unsafe at {unsafe_no:?}");
    println!("with response:    alarm at {alarm_yes:?}, unsafe at {unsafe_yes:?}");
    println!();

    assert!(alarm_no.is_some(), "detector must catch the bias");
    assert!(
        unsafe_no.is_some(),
        "without a response the attack must drive the vehicle unsafe"
    );
    assert_eq!(
        unsafe_yes, None,
        "with an in-deadline alarm and a recovery action the vehicle stays safe"
    );
    println!("=> in-time detection converted into safety: the alarm arrived early");
    println!("   enough that open-loop recovery from the last trusted state kept");
    println!("   the vehicle inside its safe envelope.");
}
