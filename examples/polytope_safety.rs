//! Deadlines against polytopic safe sets: coupled linear constraints
//! that an axis-aligned box cannot express, checked exactly by the
//! same support-function machinery (§3.4 generalized).
//!
//! Run with: `cargo run --example polytope_safety`

use awsad::prelude::*;
use awsad::reach::PolytopeDeadlineEstimator;
use awsad::sets::{Halfspace, Polytope};

fn main() {
    // Double-integrator vehicle: position x, velocity v; |u| <= 1.
    let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap();
    let b = Matrix::from_rows(&[&[0.005], &[0.1]]).unwrap();
    let control = BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap();

    // Box constraint: position below 10.
    let box_safe = Polytope::from_box(
        &BoxSet::from_bounds(
            &[f64::NEG_INFINITY, f64::NEG_INFINITY],
            &[10.0, f64::INFINITY],
        )
        .unwrap(),
    )
    .unwrap();
    // Coupled braking constraint: position + 2*velocity <= 10
    // ("if you're fast, you must be further from the wall").
    let coupled_safe = Polytope::new(vec![
        Halfspace::new(Vector::from_slice(&[1.0, 0.0]), 10.0).unwrap(),
        Halfspace::new(Vector::from_slice(&[1.0, 2.0]), 10.0).unwrap(),
    ])
    .unwrap();

    let est_box =
        PolytopeDeadlineEstimator::new(&a, &b, control.clone(), 0.01, box_safe, 300).unwrap();
    let est_coupled =
        PolytopeDeadlineEstimator::new(&a, &b, control, 0.01, coupled_safe, 300).unwrap();

    println!("deadline comparison: position-only box vs coupled position+velocity face");
    println!(
        "{:>10} {:>10} {:>14} {:>16}",
        "position", "velocity", "box deadline", "coupled deadline"
    );
    for (x, v) in [
        (0.0, 0.0),
        (5.0, 0.0),
        (5.0, 1.0),
        (5.0, 2.0),
        (8.0, 0.0),
        (8.0, 1.0),
    ] {
        let state = Vector::from_slice(&[x, v]);
        let d_box = est_box.deadline(&state);
        let d_coupled = est_coupled.deadline(&state);
        println!(
            "{x:>10.1} {v:>10.1} {:>14} {:>16}",
            show(d_box),
            show(d_coupled)
        );
    }

    println!();
    println!("the coupled face tightens the deadline precisely for fast states —");
    println!("information the box model cannot encode. The adaptive detector fed by");
    println!("the polytope estimator therefore sharpens its window earlier when the");
    println!("vehicle approaches the wall at speed.");

    // Machine-checked takeaway for the fast state.
    let fast = Vector::from_slice(&[5.0, 2.0]);
    let d_box = est_box.deadline(&fast);
    let d_coupled = est_coupled.deadline(&fast);
    assert!(
        d_coupled.is_tighter_than(d_box),
        "coupled {d_coupled:?} should be tighter than box {d_box:?}"
    );
}

fn show(d: Deadline) -> String {
    match d {
        Deadline::Within(t) => format!("{t} steps"),
        Deadline::Beyond => "beyond".into(),
    }
}
