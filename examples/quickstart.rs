//! Quickstart: wire up the detection system by hand on a simple plant
//! and watch it catch a sensor attack.
//!
//! Run with: `cargo run --example quickstart`

use awsad::core::DetectionReport;
use awsad::prelude::*;

fn main() {
    // ── 1. A plant: first-order yaw dynamics at 20 ms ───────────────
    let system = LtiSystem::from_continuous(
        Matrix::diagonal(&[-2.0]), // x' = -2x + 2u
        Matrix::from_rows(&[&[2.0]]).unwrap(),
        Matrix::identity(1), // fully observable
        0.02,
    )
    .unwrap();
    let mut plant = Plant::new(
        system.clone(),
        Vector::zeros(1),
        NoiseModel::uniform_ball(0.03).unwrap(),
    );

    // ── 2. A PI controller holding the yaw at 1.0, |u| <= 3 ─────────
    let mut pid = PidController::new(
        vec![PidChannel::new(
            0,
            0,
            PidGains::new(0.5, 7.0, 0.0),
            Reference::constant(1.0),
        )],
        BoxSet::from_bounds(&[-3.0], &[3.0]).unwrap(),
        0.02,
    )
    .unwrap();

    // ── 3. The detection system ─────────────────────────────────────
    let max_window = 40;
    let reach = ReachConfig::new(
        BoxSet::from_bounds(&[-3.0], &[3.0]).unwrap(), // actuator set U
        0.075,                                         // uncertainty bound
        BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(), // safe set S
        max_window,
    )
    .unwrap();
    let estimator = DeadlineEstimator::new(system.a(), system.b(), reach).unwrap();
    let config = DetectorConfig::new(Vector::from_slice(&[0.07]), max_window).unwrap();
    let mut logger = DataLogger::new(system.clone(), max_window);
    let mut detector = AdaptiveDetector::new(config, estimator).unwrap();

    // ── 4. An attacker: +0.8 sensor bias from step 300 ──────────────
    let mut attack = BiasAttack::new(
        AttackWindow::new(300, Some(100)),
        Vector::from_slice(&[0.8]),
    );

    // ── 5. The closed loop ──────────────────────────────────────────
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let mut first_alarm = None;
    let mut report = DetectionReport::new();
    for t in 0..500usize {
        let measured = attack.tamper(t, &plant.measure());
        let u = pid.control(t, &measured);
        logger.record(measured, u.clone());
        let out = detector.step(&logger);
        report.record(&out);
        if out.alarm() && first_alarm.is_none() {
            first_alarm = Some((t, out.window, out.deadline));
        }
        plant.step(&u, &mut rng);
    }

    match first_alarm {
        Some((t, w, deadline)) => {
            println!("attack started at step 300");
            println!("first alarm at step {t} (window {w}, deadline {deadline})");
            assert!(t >= 300, "no false alarm expected before the attack here");
            assert!(
                t <= 305,
                "the bias onset should be caught within a few steps"
            );
            println!("=> detected {} step(s) after the attack began", t - 300);
        }
        None => panic!("the detector missed the attack"),
    }
    println!();
    println!("{report}");
}
