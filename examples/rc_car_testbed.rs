//! The paper's §6.2 testbed experiment, reproduced on the identified
//! RC-car model: cruise at 4 m/s, +2.5 m/s speed bias at step 80,
//! adaptive vs fixed window-30 detection.
//!
//! Run with: `cargo run --example rc_car_testbed`

use awsad::attack::{AttackWindow, BiasAttack};
use awsad::linalg::Vector;
use awsad::models::{rc_car, RC_CAR_ATTACK_STEP, RC_CAR_BIAS_MPS, RC_CAR_C};
use awsad::sim::{run_episode, EpisodeConfig};

fn main() {
    let model = rc_car();
    let mut cfg = EpisodeConfig::for_model(&model);
    cfg.steps = 200;
    cfg.fixed_window = 30;

    let mut attack = BiasAttack::new(
        AttackWindow::from_step(RC_CAR_ATTACK_STEP),
        Vector::from_slice(&[RC_CAR_BIAS_MPS / RC_CAR_C]),
    );
    let r = run_episode(&model, &mut attack, None, &cfg, 88);

    println!("RC car cruise control at 4 m/s; safe speed range [2, 10] m/s");
    println!("+{RC_CAR_BIAS_MPS} m/s sensor bias injected at step {RC_CAR_ATTACK_STEP}");
    println!();
    println!(
        "{:>5} {:>12} {:>14} {:>7} {:>9}",
        "step", "true (m/s)", "sensed (m/s)", "window", "alarms"
    );
    for t in (70..110).step_by(2) {
        let marks = match (r.adaptive_alarms[t], r.fixed_alarms[t]) {
            (true, true) => "A F",
            (true, false) => "A",
            (false, true) => "F",
            (false, false) => "",
        };
        println!(
            "{:>5} {:>12.3} {:>14.3} {:>7} {:>9}",
            t,
            r.states[t][0] * RC_CAR_C,
            r.estimates[t][0] * RC_CAR_C,
            r.windows[t],
            marks
        );
    }

    let adaptive_at = r.first_adaptive_alarm(RC_CAR_ATTACK_STEP);
    println!();
    println!(
        "first adaptive alarm: step {:?} ({} step(s) after the attack)",
        adaptive_at,
        adaptive_at.map_or(0, |a| a - RC_CAR_ATTACK_STEP)
    );
    println!(
        "true speed enters the unsafe region at step {:?}",
        r.unsafe_entry
    );
    println!(
        "fixed window-30 alarm: {:?} (the ideal-LTI replay never accumulates enough",
        r.first_fixed_alarm(RC_CAR_ATTACK_STEP)
    );
    println!("mean residual for w=30 — see EXPERIMENTS.md for the closed-form argument)");

    assert_eq!(
        adaptive_at,
        Some(RC_CAR_ATTACK_STEP),
        "paper: alert in the first step"
    );
}
