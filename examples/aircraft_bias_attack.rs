//! The paper's headline scenario on a Table 1 model: aircraft pitch
//! under a bias attack, adaptive vs fixed window, with per-phase
//! commentary.
//!
//! Run with: `cargo run --example aircraft_bias_attack`

use awsad::models::Simulator;
use awsad::sim::{evaluate, run_episode, sample_attack, AttackKind, EpisodeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = Simulator::AircraftPitch.build();
    let cfg = EpisodeConfig::for_model(&model);

    println!(
        "model: {} ({} states, dt = {} s)",
        model.name,
        model.state_dim(),
        model.dt()
    );
    println!(
        "safe set: pitch angle within [-2.5, 2.5] rad; threshold tau = {:?}",
        model.threshold.as_slice()
    );

    let seed = 11;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let scenario = sample_attack(&model, AttackKind::Bias, &mut rng);
    let onset = scenario.onset.unwrap();
    let mut attack = scenario.attack;
    let r = run_episode(
        &model,
        attack.as_mut(),
        Some(scenario.reference),
        &cfg,
        seed,
    );

    let adaptive = evaluate(&r, &r.adaptive_alarms);
    let fixed = evaluate(&r, &r.fixed_alarms);

    println!();
    println!(
        "attack: sensor bias on the pitch channel, steps {}..{}",
        onset,
        r.attack_end.unwrap()
    );
    println!(
        "estimated detection deadline at onset: {} steps (absolute step {})",
        r.onset_deadline.unwrap_or(cfg.max_window),
        adaptive.deadline_step.map_or("-".into(), |d| d.to_string()),
    );
    println!();
    println!(
        "                     adaptive        fixed (w = {})",
        cfg.fixed_window
    );
    println!(
        "first alarm:         {:<15} {}",
        fmt(adaptive.detection_step),
        fmt(fixed.detection_step)
    );
    println!(
        "detection delay:     {:<15} {}",
        fmt(adaptive.detection_delay),
        fmt(fixed.detection_delay)
    );
    println!(
        "missed deadline:     {:<15} {}",
        adaptive.missed_deadline, fixed.missed_deadline
    );
    println!(
        "false-positive rate: {:<15.3} {:.3}",
        adaptive.false_positive_rate, fixed.false_positive_rate
    );

    // Show how the adaptive window moved around the attack.
    println!();
    println!("adaptive window sizes around the attack:");
    for t in (onset.saturating_sub(6)..(onset + 12).min(r.windows.len())).step_by(2) {
        println!(
            "  t = {:>4}  window = {:>2}  deadline = {:>3}  residual(theta) = {:.4}{}",
            t,
            r.windows[t],
            r.deadlines[t].map_or("inf".into(), |d| d.to_string()),
            r.residuals[t][2],
            if r.adaptive_alarms[t] {
                "  << ALARM"
            } else {
                ""
            }
        );
    }

    assert!(adaptive.detected && !adaptive.missed_deadline);
}

fn fmt(v: Option<usize>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}
