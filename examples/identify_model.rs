//! The paper's §6.2 workflow end to end: drive the plant, *identify*
//! its model from logged data (least squares), and hand the identified
//! model to the detection stack.
//!
//! The detector never needs the true dynamics — only a model good
//! enough that benign residuals stay below τ. This example quantifies
//! that: identification error, benign residual level with the
//! identified model, and detection of a bias attack through it.
//!
//! Run with: `cargo run --example identify_model`

use awsad::linalg::lstsq;
use awsad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The "real car": the paper's identified testbed model is the
    // ground truth here; we pretend not to know it.
    let (a_true, b_true) = (8.435e-1, 7.7919e-4);
    let true_sys = LtiSystem::new_discrete_fully_observable(
        Matrix::diagonal(&[a_true]),
        Matrix::from_rows(&[&[b_true]]).unwrap(),
        0.05,
    )
    .unwrap();
    let mut plant = Plant::new(
        true_sys,
        Vector::from_slice(&[0.0104]),
        NoiseModel::uniform_ball(5.0e-5).unwrap(),
    );

    // ── 1. Excite and log: persistent excitation via a dithered input.
    let mut rng = StdRng::seed_from_u64(2);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut targets: Vec<f64> = Vec::new();
    let mut prev = plant.state()[0];
    for t in 0..400usize {
        let u = 2.0 + 1.5 * (t as f64 * 0.61).sin();
        plant.step(&Vector::from_slice(&[u]), &mut rng);
        rows.push(vec![prev, u]);
        targets.push(plant.state()[0]);
        prev = plant.state()[0];
    }

    // ── 2. Identify: x_{t+1} ≈ a x_t + b u_t by least squares.
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let design = Matrix::from_rows(&refs).unwrap();
    let coef = lstsq(&design, &Vector::from_vec(targets)).unwrap();
    let (a_hat, b_hat) = (coef[0], coef[1]);
    println!(
        "identified a = {a_hat:.6} (true {a_true:.6}, err {:.2e})",
        (a_hat - a_true).abs()
    );
    println!(
        "identified b = {b_hat:.6e} (true {b_true:.6e}, err {:.2e})",
        (b_hat - b_true).abs()
    );
    assert!((a_hat - a_true).abs() < 5e-3, "identification too poor");

    // ── 3. Build the detection stack from the *identified* model.
    let id_sys = LtiSystem::new_discrete_fully_observable(
        Matrix::diagonal(&[a_hat]),
        Matrix::from_rows(&[&[b_hat]]).unwrap(),
        0.05,
    )
    .unwrap();
    let w_m = 30;
    let reach = ReachConfig::new(
        BoxSet::from_bounds(&[0.0], &[7.7]).unwrap(),
        1.0e-4,
        BoxSet::from_bounds(&[5.2e-3], &[2.6e-2]).unwrap(),
        w_m,
    )
    .unwrap();
    let estimator = DeadlineEstimator::new(id_sys.a(), id_sys.b(), reach).unwrap();

    // ── 4. Calibrate τ from a benign run through the identified model.
    let mut bench_logger = DataLogger::new(id_sys.clone(), w_m);
    let mut pid = PidController::new(
        vec![PidChannel::new(
            0,
            0,
            PidGains::new(1.0e3, 2.0e3, 0.0),
            Reference::constant(0.0104),
        )],
        BoxSet::from_bounds(&[0.0], &[7.7]).unwrap(),
        0.05,
    )
    .unwrap();
    let mut residuals = Vec::new();
    for t in 0..400usize {
        let est = plant.measure();
        let u = pid.control(t, &est);
        let entry = bench_logger.record(est, u.clone());
        residuals.push(entry.residual.clone());
        plant.step(&u, &mut rng);
    }
    let tau = calibrate_threshold(&residuals, 2, 0.01, 2.0).unwrap();
    println!(
        "calibrated tau = {:.3e} (paper's testbed used 3.67e-3)",
        tau[0]
    );

    // ── 5. Detect a +2.5 m/s bias through the identified model.
    let mut logger = DataLogger::new(id_sys, w_m);
    let mut detector =
        AdaptiveDetector::new(DetectorConfig::new(tau, w_m).unwrap(), estimator).unwrap();
    let mut attack = BiasAttack::new(
        AttackWindow::from_step(100),
        Vector::from_slice(&[2.5 / 384.3402]),
    );
    pid.reset();
    let mut first_alarm = None;
    for t in 0..200usize {
        let est = attack.tamper(t, &plant.measure());
        let u = pid.control(t, &est);
        logger.record(est, u.clone());
        if detector.step(&logger).alarm() && first_alarm.is_none() {
            first_alarm = Some(t);
        }
        plant.step(&u, &mut rng);
    }
    println!("bias attack at step 100; first alarm at {first_alarm:?}");
    let alarm = first_alarm.expect("attack must be detected");
    assert!(
        (100..=102).contains(&alarm),
        "detection too slow through the identified model"
    );
    println!("=> identify -> calibrate -> detect, exactly the paper's testbed pipeline,");
    println!("   with every stage running on this library's own primitives.");
}
