//! Discrete linear time-invariant (LTI) plant models with bounded
//! process noise.
//!
//! The DAC'22 detection system assumes the physical system evolves as
//!
//! ```text
//! x_{t+1} = A x_t + B u_t + v_t,        ‖v_t‖₂ ≤ ε       (Eq. 1)
//! y_t     = C x_t
//! ```
//!
//! This crate provides:
//!
//! * [`LtiSystem`] — the immutable model `(A, B, C, δ)`, constructible
//!   directly in discrete time or from a continuous-time model via
//!   zero-order-hold discretization;
//! * [`NoiseModel`] — the per-step uncertainty `v_t`: none, uniform in
//!   a Euclidean ε-ball (the paper's assumption), or truncated
//!   Gaussian clipped to the ε-ball;
//! * [`Plant`] — a stateful closed-loop participant that owns the true
//!   state, applies control inputs and draws noise from a caller
//!   provided RNG (keeping every experiment reproducible from a seed);
//! * [`Observer`] — a Luenberger observer for partially measured
//!   plants (`C ≠ I`), lifting the paper's full-observability
//!   assumption; structural checks (`is_controllable`,
//!   `is_observable`, exact `spectral_radius`) live on [`LtiSystem`].
//!
//! # Example
//!
//! ```
//! use awsad_linalg::{Matrix, Vector};
//! use awsad_lti::{LtiSystem, NoiseModel, Plant};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // First-order lag x' = -x + u discretized at 20 ms.
//! let sys = LtiSystem::from_continuous(
//!     Matrix::diagonal(&[-1.0]),
//!     Matrix::from_rows(&[&[1.0]]).unwrap(),
//!     Matrix::identity(1),
//!     0.02,
//! ).unwrap();
//! let mut plant = Plant::new(sys, Vector::zeros(1), NoiseModel::None);
//! let mut rng = StdRng::seed_from_u64(7);
//! let x1 = plant.step(&Vector::from_slice(&[1.0]), &mut rng).clone();
//! assert!(x1[0] > 0.0 && x1[0] < 0.02);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod error;
mod noise;
mod observer;
mod plant;
mod system;

pub use error::LtiError;
pub use noise::NoiseModel;
pub use observer::Observer;
pub use plant::Plant;
pub use system::LtiSystem;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LtiError>;
