use awsad_linalg::{spectral_radius, Matrix};

use crate::LtiSystem;

/// Numerical rank of a matrix via row-echelon reduction with partial
/// pivoting, with entries below `tol` (relative to the largest pivot)
/// treated as zero.
fn numerical_rank(m: &Matrix, tol: f64) -> usize {
    let rows = m.rows();
    let cols = m.cols();
    let mut a = m.clone();
    let mut rank = 0;
    let mut row = 0;
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0_f64, |acc, &x| acc.max(x.abs()))
        .max(1e-300);
    for col in 0..cols {
        // Find pivot in this column at or below `row`.
        let mut best = row;
        let mut best_val = 0.0;
        for r in row..rows {
            let v = a[(r, col)].abs();
            if v > best_val {
                best_val = v;
                best = r;
            }
        }
        if best_val <= tol * scale {
            continue;
        }
        // Swap rows and eliminate below.
        if best != row {
            for c in 0..cols {
                let tmp = a[(row, c)];
                a[(row, c)] = a[(best, c)];
                a[(best, c)] = tmp;
            }
        }
        for r in (row + 1)..rows {
            let factor = a[(r, col)] / a[(row, col)];
            for c in col..cols {
                let upd = factor * a[(row, c)];
                a[(r, c)] -= upd;
            }
        }
        rank += 1;
        row += 1;
        if row == rows {
            break;
        }
    }
    rank
}

impl LtiSystem {
    /// The controllability matrix `[B, AB, A²B, …, A^{n−1}B]`.
    pub fn controllability_matrix(&self) -> Matrix {
        let n = self.state_dim();
        let mut blocks = self.b().clone();
        let mut term = self.b().clone();
        for _ in 1..n {
            term = self.a().checked_mul(&term).expect("shapes fixed");
            blocks = blocks.hstack(&term).expect("row counts match");
        }
        blocks
    }

    /// The observability matrix `[C; CA; CA²; …; CA^{n−1}]`.
    pub fn observability_matrix(&self) -> Matrix {
        let n = self.state_dim();
        let mut blocks = self.c().clone();
        let mut term = self.c().clone();
        for _ in 1..n {
            term = term.checked_mul(self.a()).expect("shapes fixed");
            blocks = blocks.vstack(&term).expect("column counts match");
        }
        blocks
    }

    /// Whether the pair `(A, B)` is controllable (the controllability
    /// matrix has full row rank).
    ///
    /// The reachability analysis implicitly assumes the attacker's
    /// worst-case control can actually steer the plant; an
    /// uncontrollable direction can never be driven unsafe by inputs
    /// alone.
    pub fn is_controllable(&self) -> bool {
        numerical_rank(&self.controllability_matrix(), 1e-10) == self.state_dim()
    }

    /// Whether the pair `(A, C)` is observable (the observability
    /// matrix has full column rank).
    ///
    /// The paper assumes full observability ("all n dimensions can be
    /// estimated from sensor measurements"); this check verifies the
    /// weaker structural property needed when `C ≠ I` and a state
    /// observer ([`Observer`](crate::Observer)) reconstructs the
    /// state.
    pub fn is_observable(&self) -> bool {
        numerical_rank(&self.observability_matrix(), 1e-10) == self.state_dim()
    }

    /// Exact spectral radius of `A` (open-loop).
    ///
    /// # Panics
    ///
    /// Never panics for a constructed system (A is square and finite).
    pub fn spectral_radius(&self) -> f64 {
        spectral_radius(self.a()).expect("A is square and finite by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_linalg::Matrix;

    fn double_integrator(c: Matrix) -> LtiSystem {
        LtiSystem::new_discrete(
            Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap(),
            Matrix::from_rows(&[&[0.005], &[0.1]]).unwrap(),
            c,
            0.1,
        )
        .unwrap()
    }

    #[test]
    fn double_integrator_is_controllable() {
        let sys = double_integrator(Matrix::identity(2));
        assert!(sys.is_controllable());
        assert_eq!(sys.controllability_matrix().shape(), (2, 2));
    }

    #[test]
    fn decoupled_state_is_uncontrollable() {
        // Second state unaffected by the input and by the first state.
        let sys = LtiSystem::new_discrete(
            Matrix::from_rows(&[&[0.9, 0.0], &[0.0, 0.8]]).unwrap(),
            Matrix::from_rows(&[&[1.0], &[0.0]]).unwrap(),
            Matrix::identity(2),
            0.1,
        )
        .unwrap();
        assert!(!sys.is_controllable());
    }

    #[test]
    fn position_measurement_observes_double_integrator() {
        // Measuring position alone observes velocity through the
        // dynamics.
        let sys = double_integrator(Matrix::from_rows(&[&[1.0, 0.0]]).unwrap());
        assert!(sys.is_observable());
        assert_eq!(sys.observability_matrix().shape(), (2, 2));
    }

    #[test]
    fn velocity_measurement_misses_position() {
        // Measuring only velocity of a double integrator cannot
        // reconstruct absolute position.
        let sys = double_integrator(Matrix::from_rows(&[&[0.0, 1.0]]).unwrap());
        assert!(!sys.is_observable());
    }

    #[test]
    fn full_state_output_is_always_observable() {
        let sys = double_integrator(Matrix::identity(2));
        assert!(sys.is_observable());
    }

    #[test]
    fn spectral_radius_of_integrator_is_one() {
        let sys = double_integrator(Matrix::identity(2));
        assert!((sys.spectral_radius() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_helper_detects_dependent_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(numerical_rank(&m, 1e-10), 1);
        let full = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert_eq!(numerical_rank(&full, 1e-10), 2);
        assert_eq!(numerical_rank(&Matrix::zeros(3, 3), 1e-10), 0);
    }
}
