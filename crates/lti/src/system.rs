use awsad_linalg::{discretize, Matrix, Vector};

use crate::{LtiError, Result};

/// An immutable discrete LTI model `(A, B, C)` with sampling period
/// `δ` (the paper's control step size, Table 1 column `δ`).
///
/// The same object serves three consumers:
///
/// * the [`Plant`](crate::Plant) advances the *true* state with it;
/// * the data logger predicts the expected state
///   `x̃_t = A x̄_{t−1} + B u_{t−1}` with it;
/// * the deadline estimator computes reachable sets from its `A`/`B`.
///
/// # Example
///
/// ```
/// use awsad_linalg::{Matrix, Vector};
/// use awsad_lti::LtiSystem;
///
/// let sys = LtiSystem::new_discrete(
///     Matrix::diagonal(&[0.9]),
///     Matrix::from_rows(&[&[0.1]]).unwrap(),
///     Matrix::identity(1),
///     0.02,
/// ).unwrap();
/// let next = sys.step(&Vector::from_slice(&[1.0]), &Vector::from_slice(&[0.5]));
/// assert!((next[0] - 0.95).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LtiSystem {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    dt: f64,
}

impl LtiSystem {
    /// Creates a discrete-time model directly from `(A, B, C, δ)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `A` is not square, `B` does not have
    /// `n` rows, or `C` does not have `n` columns; returns
    /// [`LtiError::InvalidSamplingPeriod`] for a non-positive `δ`.
    pub fn new_discrete(a: Matrix, b: Matrix, c: Matrix, dt: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LtiError::StateMatrixNotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if b.rows() != n {
            return Err(LtiError::InputMatrixMismatch {
                state_dim: n,
                shape: b.shape(),
            });
        }
        if c.cols() != n {
            return Err(LtiError::OutputMatrixMismatch {
                state_dim: n,
                shape: c.shape(),
            });
        }
        if !dt.is_finite() || dt <= 0.0 {
            return Err(LtiError::InvalidSamplingPeriod { dt });
        }
        Ok(LtiSystem { a, b, c, dt })
    }

    /// Creates a discrete model by zero-order-hold discretization of a
    /// continuous-time `(A_c, B_c, C)` triple at period `dt`.
    ///
    /// This is how the Table 1 benchmark models (given as differential
    /// equations) become the difference equation of Eq. (1).
    ///
    /// # Errors
    ///
    /// Same as [`LtiSystem::new_discrete`], plus any discretization
    /// failure surfaced as [`LtiError::Linalg`].
    pub fn from_continuous(a_c: Matrix, b_c: Matrix, c: Matrix, dt: f64) -> Result<Self> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(LtiError::InvalidSamplingPeriod { dt });
        }
        let (a_d, b_d) = discretize(&a_c, &b_c, dt)?;
        LtiSystem::new_discrete(a_d, b_d, c, dt)
    }

    /// Creates a fully-observable model (`C = I`) from discrete
    /// `(A, B, δ)`.
    ///
    /// The paper assumes full observability ("all n dimensions can be
    /// estimated from sensor measurements").
    ///
    /// # Errors
    ///
    /// Same as [`LtiSystem::new_discrete`].
    pub fn new_discrete_fully_observable(a: Matrix, b: Matrix, dt: f64) -> Result<Self> {
        let n = a.rows();
        LtiSystem::new_discrete(a, b, Matrix::identity(n), dt)
    }

    /// State dimension `n`.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }

    /// Input dimension `m`.
    pub fn input_dim(&self) -> usize {
        self.b.cols()
    }

    /// Output dimension `p`.
    pub fn output_dim(&self) -> usize {
        self.c.rows()
    }

    /// Sampling period `δ` in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// State matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Input matrix `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// Output matrix `C`.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// Noise-free dynamics step `A x + B u`.
    ///
    /// This is simultaneously the plant update (before adding `v_t`)
    /// and the one-step prediction `x̃_t` used to form residuals.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `u` have the wrong length; use
    /// [`LtiSystem::checked_step`] for fallible callers.
    pub fn step(&self, x: &Vector, u: &Vector) -> Vector {
        self.checked_step(x, u)
            .expect("state/input dimensions must match model")
    }

    /// Fallible variant of [`LtiSystem::step`].
    ///
    /// # Errors
    ///
    /// Returns [`LtiError::DimensionMismatch`] when `x` or `u` have the
    /// wrong length.
    pub fn checked_step(&self, x: &Vector, u: &Vector) -> Result<Vector> {
        if x.len() != self.state_dim() {
            return Err(LtiError::DimensionMismatch {
                what: "state",
                expected: self.state_dim(),
                actual: x.len(),
            });
        }
        if u.len() != self.input_dim() {
            return Err(LtiError::DimensionMismatch {
                what: "input",
                expected: self.input_dim(),
                actual: u.len(),
            });
        }
        let ax = self.a.checked_mul_vec(x)?;
        let bu = self.b.checked_mul_vec(u)?;
        Ok(&ax + &bu)
    }

    /// Sensor map `y = C x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len()` differs from the state dimension.
    pub fn measure(&self, x: &Vector) -> Vector {
        self.c
            .checked_mul_vec(x)
            .expect("state dimension must match model")
    }

    /// Spectral-radius upper bound via the induced ∞-norm of `A^k`,
    /// `ρ(A) ≤ ‖A^k‖_∞^{1/k}`.
    ///
    /// A cheap stability diagnostic used by model validation tests
    /// (all Table 1 closed-loop plants are open-loop stable or
    /// marginally stable integrators).
    pub fn spectral_radius_bound(&self, k: usize) -> f64 {
        let k = k.max(1);
        self.a
            .pow(k)
            .expect("A is square by construction")
            .norm_inf()
            .powf(1.0 / k as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> LtiSystem {
        LtiSystem::new_discrete(
            Matrix::from_rows(&[&[0.9, 0.1], &[0.0, 0.8]]).unwrap(),
            Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap(),
            Matrix::identity(2),
            0.02,
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let s = simple();
        assert_eq!(s.state_dim(), 2);
        assert_eq!(s.input_dim(), 1);
        assert_eq!(s.output_dim(), 2);
        assert_eq!(s.dt(), 0.02);
    }

    #[test]
    fn shape_validation() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 1);
        let c = Matrix::identity(2);
        assert!(matches!(
            LtiSystem::new_discrete(Matrix::zeros(2, 3), b.clone(), c.clone(), 0.1),
            Err(LtiError::StateMatrixNotSquare { .. })
        ));
        assert!(matches!(
            LtiSystem::new_discrete(a.clone(), Matrix::zeros(3, 1), c.clone(), 0.1),
            Err(LtiError::InputMatrixMismatch { .. })
        ));
        assert!(matches!(
            LtiSystem::new_discrete(a.clone(), b.clone(), Matrix::zeros(1, 3), 0.1),
            Err(LtiError::OutputMatrixMismatch { .. })
        ));
        assert!(matches!(
            LtiSystem::new_discrete(a, b, c, 0.0),
            Err(LtiError::InvalidSamplingPeriod { .. })
        ));
    }

    #[test]
    fn step_matches_hand_computation() {
        let s = simple();
        let x = Vector::from_slice(&[1.0, 2.0]);
        let u = Vector::from_slice(&[0.5]);
        let next = s.step(&x, &u);
        assert!(next.approx_eq(&Vector::from_slice(&[1.1, 2.1])));
    }

    #[test]
    fn checked_step_rejects_bad_dims() {
        let s = simple();
        assert!(s
            .checked_step(&Vector::zeros(3), &Vector::zeros(1))
            .is_err());
        assert!(s
            .checked_step(&Vector::zeros(2), &Vector::zeros(2))
            .is_err());
    }

    #[test]
    fn measurement_uses_c() {
        let s = LtiSystem::new_discrete(
            Matrix::identity(2),
            Matrix::zeros(2, 1),
            Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
            0.1,
        )
        .unwrap();
        let y = s.measure(&Vector::from_slice(&[3.0, 4.0]));
        assert_eq!(y.as_slice(), &[3.0]);
    }

    #[test]
    fn from_continuous_first_order() {
        let s = LtiSystem::from_continuous(
            Matrix::diagonal(&[-2.0]),
            Matrix::from_rows(&[&[2.0]]).unwrap(),
            Matrix::identity(1),
            0.1,
        )
        .unwrap();
        assert!((s.a()[(0, 0)] - (-0.2_f64).exp()).abs() < 1e-12);
        // Steady state under u = 1 should be 1 (dc gain of 2/2).
        let mut x = Vector::zeros(1);
        let u = Vector::from_slice(&[1.0]);
        for _ in 0..1_000 {
            x = s.step(&x, &u);
        }
        assert!((x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_radius_bound_stable_system() {
        let s = simple();
        assert!(s.spectral_radius_bound(64) < 1.0);
    }
}
