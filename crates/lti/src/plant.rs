use awsad_linalg::Vector;
use rand::Rng;

use crate::{LtiSystem, NoiseModel};

/// The *true* physical system in a closed-loop simulation.
///
/// `Plant` owns the ground-truth state `x_t`, which attackers never
/// touch — sensor attacks corrupt only the *measurements* downstream.
/// Each [`Plant::step`] applies the dynamics of Eq. (1) with a fresh
/// noise draw from the caller's RNG:
///
/// ```text
/// x_{t+1} = A x_t + B u_t + v_t
/// ```
///
/// Keeping the RNG external makes whole experiments reproducible from
/// a single seed, which the Monte-Carlo harness in `awsad-sim` relies
/// on.
#[derive(Debug, Clone)]
pub struct Plant {
    system: LtiSystem,
    state: Vector,
    noise: NoiseModel,
    steps: usize,
}

impl Plant {
    /// Creates a plant at initial state `x0`.
    ///
    /// # Panics
    ///
    /// Panics when `x0.len()` differs from the model's state dimension.
    pub fn new(system: LtiSystem, x0: Vector, noise: NoiseModel) -> Self {
        assert_eq!(
            x0.len(),
            system.state_dim(),
            "initial state dimension must match model"
        );
        Plant {
            system,
            state: x0,
            noise,
            steps: 0,
        }
    }

    /// The underlying model.
    pub fn system(&self) -> &LtiSystem {
        &self.system
    }

    /// The current true state `x_t`.
    pub fn state(&self) -> &Vector {
        &self.state
    }

    /// The noise model in effect.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Number of steps taken since construction (the current `t`).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Advances one control period with input `u` and returns the new
    /// true state.
    ///
    /// # Panics
    ///
    /// Panics when `u.len()` differs from the model's input dimension.
    pub fn step(&mut self, u: &Vector, rng: &mut impl Rng) -> &Vector {
        let noise = self.noise.sample(self.system.state_dim(), rng);
        let next = self.system.step(&self.state, u);
        self.state = &next + &noise;
        self.steps += 1;
        &self.state
    }

    /// The *true* sensor reading `y_t = C x_t` before any attack.
    pub fn measure(&self) -> Vector {
        self.system.measure(&self.state)
    }

    /// Resets the plant to a new initial state and zero step count.
    ///
    /// # Panics
    ///
    /// Panics when `x0.len()` differs from the model's state dimension.
    pub fn reset(&mut self, x0: Vector) {
        assert_eq!(
            x0.len(),
            self.system.state_dim(),
            "reset state dimension must match model"
        );
        self.state = x0;
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lag_system() -> LtiSystem {
        LtiSystem::new_discrete(
            Matrix::diagonal(&[0.5]),
            Matrix::from_rows(&[&[0.5]]).unwrap(),
            Matrix::identity(1),
            0.02,
        )
        .unwrap()
    }

    #[test]
    fn noise_free_step_is_deterministic() {
        let mut p = Plant::new(lag_system(), Vector::from_slice(&[1.0]), NoiseModel::None);
        let mut rng = StdRng::seed_from_u64(0);
        let x1 = p.step(&Vector::from_slice(&[1.0]), &mut rng).clone();
        assert!((x1[0] - 1.0).abs() < 1e-12);
        assert_eq!(p.steps(), 1);
    }

    #[test]
    fn noisy_trajectory_stays_within_tube() {
        // With |noise| <= eps each step and a contraction of 0.5, the
        // deviation from the nominal fixed point is bounded by
        // eps / (1 - 0.5).
        let eps = 0.01;
        let mut p = Plant::new(
            lag_system(),
            Vector::from_slice(&[1.0]),
            NoiseModel::uniform_ball(eps).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let u = Vector::from_slice(&[1.0]);
        for _ in 0..500 {
            p.step(&u, &mut rng);
            assert!((p.state()[0] - 1.0).abs() <= eps / 0.5 + 1e-9);
        }
    }

    #[test]
    fn measure_uses_output_matrix() {
        let sys = LtiSystem::new_discrete(
            Matrix::identity(2),
            Matrix::zeros(2, 1),
            Matrix::from_rows(&[&[2.0, 0.0]]).unwrap(),
            0.1,
        )
        .unwrap();
        let p = Plant::new(sys, Vector::from_slice(&[3.0, 1.0]), NoiseModel::None);
        assert_eq!(p.measure().as_slice(), &[6.0]);
    }

    #[test]
    fn reset_restores_state_and_counter() {
        let mut p = Plant::new(lag_system(), Vector::from_slice(&[1.0]), NoiseModel::None);
        let mut rng = StdRng::seed_from_u64(1);
        p.step(&Vector::from_slice(&[0.0]), &mut rng);
        p.reset(Vector::from_slice(&[2.0]));
        assert_eq!(p.state().as_slice(), &[2.0]);
        assert_eq!(p.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "initial state dimension")]
    fn wrong_initial_dimension_panics() {
        let _ = Plant::new(lag_system(), Vector::zeros(2), NoiseModel::None);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mk = || {
            Plant::new(
                lag_system(),
                Vector::from_slice(&[0.0]),
                NoiseModel::uniform_ball(0.1).unwrap(),
            )
        };
        let mut p1 = mk();
        let mut p2 = mk();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let u = Vector::from_slice(&[0.3]);
        for _ in 0..50 {
            assert_eq!(p1.step(&u, &mut r1), p2.step(&u, &mut r2));
        }
    }
}
