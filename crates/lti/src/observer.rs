use awsad_linalg::{spectral_radius, Matrix, Vector};

use crate::{LtiError, LtiSystem, Result};

/// A Luenberger state observer
/// `x̂⁺ = A x̂ + B u + L (y − C x̂)`.
///
/// The paper assumes full observability "for ease of presentation";
/// this observer lifts that assumption: when only part of the state is
/// measured (`C ≠ I`), it reconstructs a full state estimate that the
/// data logger, the detector and the deadline estimator can consume
/// unchanged. Detection-wise, a sensor attack now corrupts the
/// *measurement* `y`, and the observer's innovation dynamics shape how
/// the corruption appears in the residual.
///
/// The gain `L` is supplied by the caller;
/// [`Observer::is_convergent`] verifies the design (spectral radius of
/// `A − L C` strictly inside the unit circle).
///
/// # Example
///
/// ```
/// use awsad_linalg::{Matrix, Vector};
/// use awsad_lti::{LtiSystem, Observer};
///
/// // Double integrator, position-only measurement.
/// let sys = LtiSystem::new_discrete(
///     Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap(),
///     Matrix::from_rows(&[&[0.005], &[0.1]]).unwrap(),
///     Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
///     0.1,
/// ).unwrap();
/// let l = Matrix::from_rows(&[&[0.8], &[1.5]]).unwrap();
/// let mut obs = Observer::new(sys, l, Vector::zeros(2)).unwrap();
/// assert!(obs.is_convergent());
/// ```
#[derive(Debug, Clone)]
pub struct Observer {
    system: LtiSystem,
    gain: Matrix,
    estimate: Vector,
}

impl Observer {
    /// Creates an observer with gain `L` and initial estimate `x̂₀`.
    ///
    /// # Errors
    ///
    /// Returns [`LtiError::DimensionMismatch`] when `L` is not
    /// `n × p` (state × output) or `x̂₀` has the wrong length.
    pub fn new(system: LtiSystem, gain: Matrix, initial: Vector) -> Result<Self> {
        let n = system.state_dim();
        let p = system.output_dim();
        if gain.shape() != (n, p) {
            return Err(LtiError::DimensionMismatch {
                what: "observer gain rows",
                expected: n,
                actual: gain.rows(),
            });
        }
        if initial.len() != n {
            return Err(LtiError::DimensionMismatch {
                what: "initial estimate",
                expected: n,
                actual: initial.len(),
            });
        }
        Ok(Observer {
            system,
            gain,
            estimate: initial,
        })
    }

    /// The underlying model.
    pub fn system(&self) -> &LtiSystem {
        &self.system
    }

    /// The current state estimate `x̂`.
    pub fn estimate(&self) -> &Vector {
        &self.estimate
    }

    /// The error dynamics matrix `A − L C`.
    pub fn error_dynamics(&self) -> Matrix {
        let lc = self
            .gain
            .checked_mul(self.system.c())
            .expect("shapes validated at construction");
        &self.system.a().clone() - &lc
    }

    /// Whether the estimation error converges (spectral radius of
    /// `A − L C` strictly below 1).
    pub fn is_convergent(&self) -> bool {
        spectral_radius(&self.error_dynamics())
            .map(|rho| rho < 1.0)
            .unwrap_or(false)
    }

    /// Advances the observer one step with input `u` and measurement
    /// `y`, returning the new estimate.
    ///
    /// # Panics
    ///
    /// Panics when `u` or `y` have the wrong dimension.
    pub fn update(&mut self, u: &Vector, y: &Vector) -> &Vector {
        assert_eq!(
            y.len(),
            self.system.output_dim(),
            "measurement dimension must match C"
        );
        let predicted = self.system.step(&self.estimate, u);
        let expected_y = self.system.measure(&self.estimate);
        let innovation = y - &expected_y;
        let correction = self
            .gain
            .checked_mul_vec(&innovation)
            .expect("shapes validated at construction");
        self.estimate = &predicted + &correction;
        &self.estimate
    }

    /// Resets the estimate.
    ///
    /// # Panics
    ///
    /// Panics when `x0` has the wrong length.
    pub fn reset(&mut self, x0: Vector) {
        assert_eq!(
            x0.len(),
            self.system.state_dim(),
            "reset estimate dimension must match model"
        );
        self.estimate = x0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoiseModel, Plant};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn partial_system() -> LtiSystem {
        LtiSystem::new_discrete(
            Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 0.9]]).unwrap(),
            Matrix::from_rows(&[&[0.005], &[0.1]]).unwrap(),
            Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(), // position only
            0.1,
        )
        .unwrap()
    }

    fn gain() -> Matrix {
        Matrix::from_rows(&[&[0.9], &[1.2]]).unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        let sys = partial_system();
        assert!(Observer::new(sys.clone(), Matrix::zeros(2, 2), Vector::zeros(2)).is_err());
        assert!(Observer::new(sys.clone(), gain(), Vector::zeros(3)).is_err());
        assert!(Observer::new(sys, gain(), Vector::zeros(2)).is_ok());
    }

    #[test]
    fn designed_gain_is_convergent() {
        let obs = Observer::new(partial_system(), gain(), Vector::zeros(2)).unwrap();
        assert!(obs.is_convergent());
        // Zero gain leaves the marginally stable A: not strictly
        // convergent.
        let lazy = Observer::new(partial_system(), Matrix::zeros(2, 1), Vector::zeros(2)).unwrap();
        assert!(!lazy.is_convergent());
    }

    #[test]
    fn estimate_converges_to_true_state() {
        let sys = partial_system();
        let mut plant = Plant::new(
            sys.clone(),
            Vector::from_slice(&[2.0, -1.0]),
            NoiseModel::None,
        );
        // Observer starts at the wrong state.
        let mut obs = Observer::new(sys, gain(), Vector::zeros(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let u = Vector::from_slice(&[0.1]);
        for _ in 0..200 {
            let y = plant.measure();
            obs.update(&u, &y);
            plant.step(&u, &mut rng);
        }
        let err = (obs.estimate() - plant.state()).norm_inf();
        // One-step lag: compare loosely.
        assert!(err < 0.05, "observer error {err}");
    }

    #[test]
    fn estimate_tracks_under_bounded_noise() {
        let sys = partial_system();
        let mut plant = Plant::new(
            sys.clone(),
            Vector::zeros(2),
            NoiseModel::uniform_ball(0.01).unwrap(),
        );
        let mut obs = Observer::new(sys, gain(), Vector::zeros(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let u = Vector::from_slice(&[0.2]);
        let mut worst: f64 = 0.0;
        for t in 0..500 {
            let y = plant.measure();
            obs.update(&u, &y);
            plant.step(&u, &mut rng);
            if t > 50 {
                worst = worst.max((obs.estimate() - plant.state()).norm_inf());
            }
        }
        assert!(worst < 0.2, "steady-state observer error {worst}");
    }

    #[test]
    fn reset_restores_estimate() {
        let mut obs = Observer::new(partial_system(), gain(), Vector::zeros(2)).unwrap();
        obs.update(&Vector::from_slice(&[1.0]), &Vector::from_slice(&[1.0]));
        obs.reset(Vector::from_slice(&[7.0, 8.0]));
        assert_eq!(obs.estimate().as_slice(), &[7.0, 8.0]);
    }

    #[test]
    fn error_dynamics_shape() {
        let obs = Observer::new(partial_system(), gain(), Vector::zeros(2)).unwrap();
        assert_eq!(obs.error_dynamics().shape(), (2, 2));
    }
}
