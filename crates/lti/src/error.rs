use std::fmt;

use awsad_linalg::LinalgError;

/// Errors produced when constructing or simulating an LTI model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LtiError {
    /// The `A` matrix is not square.
    StateMatrixNotSquare {
        /// Offending shape.
        shape: (usize, usize),
    },
    /// The `B` matrix row count does not match the state dimension.
    InputMatrixMismatch {
        /// State dimension from `A`.
        state_dim: usize,
        /// Shape of the supplied `B`.
        shape: (usize, usize),
    },
    /// The `C` matrix column count does not match the state dimension.
    OutputMatrixMismatch {
        /// State dimension from `A`.
        state_dim: usize,
        /// Shape of the supplied `C`.
        shape: (usize, usize),
    },
    /// The sampling period is not finite and positive.
    InvalidSamplingPeriod {
        /// Offending period.
        dt: f64,
    },
    /// The noise bound ε is negative or not finite.
    InvalidNoiseBound {
        /// Offending bound.
        epsilon: f64,
    },
    /// A vector supplied at runtime has the wrong dimension.
    DimensionMismatch {
        /// What the vector was (e.g. `"state"`, `"input"`).
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// An underlying linear-algebra operation failed (e.g.
    /// discretization of a non-finite model).
    Linalg(LinalgError),
}

impl fmt::Display for LtiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LtiError::StateMatrixNotSquare { shape } => {
                write!(
                    f,
                    "state matrix A must be square, got {}x{}",
                    shape.0, shape.1
                )
            }
            LtiError::InputMatrixMismatch { state_dim, shape } => write!(
                f,
                "input matrix B must have {state_dim} rows, got {}x{}",
                shape.0, shape.1
            ),
            LtiError::OutputMatrixMismatch { state_dim, shape } => write!(
                f,
                "output matrix C must have {state_dim} columns, got {}x{}",
                shape.0, shape.1
            ),
            LtiError::InvalidSamplingPeriod { dt } => {
                write!(f, "sampling period must be finite and positive, got {dt}")
            }
            LtiError::InvalidNoiseBound { epsilon } => {
                write!(
                    f,
                    "noise bound must be finite and non-negative, got {epsilon}"
                )
            }
            LtiError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} vector must have length {expected}, got {actual}"),
            LtiError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for LtiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LtiError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for LtiError {
    fn from(e: LinalgError) -> Self {
        LtiError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LtiError::InvalidSamplingPeriod { dt: -1.0 };
        assert!(e.to_string().contains("-1"));
        let wrapped = LtiError::from(LinalgError::Singular);
        assert!(wrapped.to_string().contains("singular"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
        assert!(e.source().is_none());
    }

    #[test]
    fn dimension_mismatch_message() {
        let e = LtiError::DimensionMismatch {
            what: "input",
            expected: 2,
            actual: 3,
        };
        let s = e.to_string();
        assert!(s.contains("input") && s.contains('2') && s.contains('3'));
    }
}
