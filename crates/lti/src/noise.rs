use awsad_linalg::Vector;
use rand::{Rng, RngExt as _};

use crate::{LtiError, Result};

/// Per-step process uncertainty `v_t` of Eq. (1).
///
/// The paper assumes `v_t` is bounded by `ε` at each control step and
/// over-approximates it by an origin-centered Euclidean ball `B_ε`
/// (§3.2.1). Every variant here respects that bound, so the deadline
/// estimator's reachable sets remain sound over-approximations of the
/// simulated trajectories.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum NoiseModel {
    /// No process noise (`v_t = 0`).
    None,
    /// `v_t` drawn uniformly from the Euclidean ball of radius `ε`.
    UniformBall {
        /// Noise bound ε (Table 1 column `ε`).
        epsilon: f64,
    },
    /// `v_t` drawn from an isotropic Gaussian with standard deviation
    /// `ε / 3` per axis, then clipped to the ε-ball so the bound still
    /// holds.
    TruncatedGaussian {
        /// Noise bound ε.
        epsilon: f64,
    },
}

impl NoiseModel {
    /// Creates a uniform-ball noise model, validating the bound.
    ///
    /// # Errors
    ///
    /// Returns [`LtiError::InvalidNoiseBound`] for negative or
    /// non-finite `epsilon`.
    pub fn uniform_ball(epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(LtiError::InvalidNoiseBound { epsilon });
        }
        Ok(NoiseModel::UniformBall { epsilon })
    }

    /// Creates a truncated-Gaussian noise model, validating the bound.
    ///
    /// # Errors
    ///
    /// Returns [`LtiError::InvalidNoiseBound`] for negative or
    /// non-finite `epsilon`.
    pub fn truncated_gaussian(epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(LtiError::InvalidNoiseBound { epsilon });
        }
        Ok(NoiseModel::TruncatedGaussian { epsilon })
    }

    /// The Euclidean bound `ε` this model never exceeds.
    pub fn bound(&self) -> f64 {
        match self {
            NoiseModel::None => 0.0,
            NoiseModel::UniformBall { epsilon } | NoiseModel::TruncatedGaussian { epsilon } => {
                *epsilon
            }
        }
    }

    /// Samples one noise vector of dimension `n`.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> Vector {
        match self {
            NoiseModel::None => Vector::zeros(n),
            NoiseModel::UniformBall { epsilon } => sample_uniform_ball(n, *epsilon, rng),
            NoiseModel::TruncatedGaussian { epsilon } => {
                let sigma = epsilon / 3.0;
                let v: Vector = (0..n)
                    .map(|_| sigma * sample_standard_normal(rng))
                    .collect();
                let norm = v.norm_l2();
                if norm > *epsilon && norm > 0.0 {
                    v.scale(epsilon / norm)
                } else {
                    v
                }
            }
        }
    }
}

/// Uniform sample from the n-dimensional Euclidean ball of radius `r`:
/// an isotropic direction (normalized Gaussian) scaled by `r·U^{1/n}`.
fn sample_uniform_ball(n: usize, r: f64, rng: &mut impl Rng) -> Vector {
    if n == 0 || r == 0.0 {
        return Vector::zeros(n);
    }
    loop {
        let g: Vector = (0..n).map(|_| sample_standard_normal(rng)).collect();
        let norm = g.norm_l2();
        if norm > 1e-12 {
            let radius = r * rng.random_range(0.0..1.0f64).powf(1.0 / n as f64);
            return g.scale(radius / norm);
        }
    }
}

/// Standard normal via Box–Muller (rand itself ships no Gaussian).
fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(NoiseModel::uniform_ball(-0.1).is_err());
        assert!(NoiseModel::uniform_ball(f64::NAN).is_err());
        assert!(NoiseModel::truncated_gaussian(f64::INFINITY).is_err());
        assert!(NoiseModel::uniform_ball(0.0).is_ok());
    }

    #[test]
    fn bounds_reported() {
        assert_eq!(NoiseModel::None.bound(), 0.0);
        assert_eq!(NoiseModel::uniform_ball(0.5).unwrap().bound(), 0.5);
        assert_eq!(NoiseModel::truncated_gaussian(0.3).unwrap().bound(), 0.3);
    }

    #[test]
    fn none_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = NoiseModel::None.sample(3, &mut rng);
        assert_eq!(v.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn uniform_ball_respects_bound() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = NoiseModel::uniform_ball(0.075).unwrap();
        for _ in 0..2_000 {
            let v = m.sample(3, &mut rng);
            assert!(v.norm_l2() <= 0.075 + 1e-12);
        }
    }

    #[test]
    fn truncated_gaussian_respects_bound() {
        let mut rng = StdRng::seed_from_u64(43);
        let m = NoiseModel::truncated_gaussian(0.01).unwrap();
        for _ in 0..2_000 {
            let v = m.sample(2, &mut rng);
            assert!(v.norm_l2() <= 0.01 + 1e-12);
        }
    }

    #[test]
    fn uniform_ball_fills_the_ball() {
        // Mean radius of a uniform 1-D ball sample is r/2; check the
        // sampler is not just returning boundary points.
        let mut rng = StdRng::seed_from_u64(44);
        let m = NoiseModel::uniform_ball(1.0).unwrap();
        let mean: f64 = (0..4_000)
            .map(|_| m.sample(1, &mut rng).norm_l2())
            .sum::<f64>()
            / 4_000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean radius {mean} not near 0.5");
    }

    #[test]
    fn samples_are_roughly_zero_mean() {
        let mut rng = StdRng::seed_from_u64(45);
        let m = NoiseModel::uniform_ball(1.0).unwrap();
        let mut acc = Vector::zeros(2);
        let n = 4_000;
        for _ in 0..n {
            acc += &m.sample(2, &mut rng);
        }
        let mean = acc.scale(1.0 / n as f64);
        assert!(mean.norm_inf() < 0.05, "mean {mean} not near zero");
    }

    #[test]
    fn zero_epsilon_gives_zero() {
        let mut rng = StdRng::seed_from_u64(46);
        let v = NoiseModel::uniform_ball(0.0).unwrap().sample(4, &mut rng);
        assert_eq!(v.norm_l2(), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let m = NoiseModel::uniform_ball(1.0).unwrap();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(m.sample(3, &mut r1), m.sample(3, &mut r2));
        }
    }
}
