//! Seeded scenario generation and the one-line seed string.
//!
//! A **scenario** is everything a differential oracle needs to run one
//! detection episode: a plant, a detector configuration, and a
//! closed-loop `(estimate, input)` trace with an attack schedule baked
//! in. Scenarios come in five families:
//!
//! * [`Family::Registry`] — a random Table 1 model under randomized
//!   window parameters, threshold scaling, cache capacity, and attack
//!   schedule. Everything is expressible as a
//!   [`SessionSpec`], so registry scenarios can run through **all**
//!   detection paths including the serve wire protocol.
//! * [`Family::RandomLti`] — a freshly synthesized stable-or-marginal
//!   LTI plant (spectral radius dialed in explicitly), random PID
//!   gains, noise bounds, and detector knobs the wire protocol cannot
//!   express (initial radius, re-estimation period, complementary
//!   toggle). These exercise the local paths and the estimator
//!   oracles.
//! * [`Family::Sensor`] — a Table 1 model sensed through a randomized
//!   output map `C ≠ I`: a steady-state Kalman observer reconstructs
//!   the estimate stream while a per-sensor attack falsifies
//!   individual output channels. The spec carries the output map, so
//!   these run every path, wire included.
//! * [`Family::Severe`] — the sensor family's worst case: fewer than
//!   half of the sensors are trustworthy.
//! * [`Family::Drift`] — a Table 1 model whose **true plant drifts**
//!   mid-stream (a step or ramp scaling of `A` and/or `B`), noise-free
//!   so the drifted dynamics are exactly identifiable, with an
//!   optional concurrent sensor attack on top. Carries a precomputed
//!   [`ScenarioRecalibration`] — the tick index and drifted matrices
//!   the session swaps to via the `Recalibrate` wire op — feeding the
//!   ninth differential-oracle path.
//!
//! Every scenario derives deterministically from a [`SeedSpec`], which
//! serializes to a one-line seed string
//!
//! ```text
//! awsad1:<family>:<seed as 16 hex digits>[:len=N]
//! ```
//!
//! so a failure anywhere (CI, fuzz run, property test) replays exactly
//! from the printed line. The optional `len=N` caps the trace length —
//! the shrinker uses it to minimize a failing episode without leaving
//! the seed-string format.

use std::fmt;
use std::str::FromStr;

use awsad_attack::{
    AttackWindow, BiasAttack, DelayAttack, NoAttack, PerSensor, ReplayAttack, SensorAttack,
};
use awsad_control::{Controller, PidChannel, PidController, PidGains, Reference};
use awsad_core::{AdaptiveDetector, DataLogger, DetectorConfig};
use awsad_linalg::{spectral_radius, Matrix, Vector};
use awsad_lti::{LtiSystem, Observer};
use awsad_models::Simulator;
use awsad_reach::{CacheConfig, DeadlineCache, DeadlineEstimator, ReachConfig};
use awsad_serve::server::session_parts_for_spec;
use awsad_serve::wire::{SessionSpec, WireTick};
use awsad_sets::BoxSet;
use awsad_sim::design_output_observer;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Which generator produced a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// A randomized Table 1 model — runs every path, wire included.
    Registry,
    /// A synthesized random LTI plant — local paths + estimator
    /// oracles.
    RandomLti,
    /// A Table 1 model sensed through a randomized output map
    /// `C ≠ I`, with a [`awsad_attack::PerSensor`] attack falsifying a
    /// *minority* of the individual sensors; estimates come from a
    /// Luenberger observer, and the spec carries the output map, so
    /// these run every path, wire included.
    Sensor,
    /// Like [`Family::Sensor`] but with **fewer than half** of the
    /// sensors trustworthy — a strict majority of the output channels
    /// is falsified, the secure-state-estimation worst case.
    Severe,
    /// A Table 1 model whose true plant drifts mid-stream, with a
    /// precomputed recalibration plan — runs every path, wire
    /// included, through the `Recalibrate` op.
    Drift,
}

impl Family {
    fn tag(self) -> &'static str {
        match self {
            Family::Registry => "registry",
            Family::RandomLti => "lti",
            Family::Sensor => "sensor",
            Family::Severe => "severe",
            Family::Drift => "drift",
        }
    }
}

/// The replayable identity of a scenario: family + 64-bit seed +
/// optional trace-length cap. Parses from and prints as the one-line
/// seed string (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSpec {
    /// Generator family.
    pub family: Family,
    /// The RNG seed every random choice derives from.
    pub seed: u64,
    /// Trace-length override (`None` = the generator's own draw).
    /// The shrinker lowers this to minimize failing episodes.
    pub len: Option<usize>,
}

impl SeedSpec {
    /// A registry-family seed with no length override.
    pub fn registry(seed: u64) -> SeedSpec {
        SeedSpec {
            family: Family::Registry,
            seed,
            len: None,
        }
    }

    /// A random-LTI-family seed with no length override.
    pub fn random_lti(seed: u64) -> SeedSpec {
        SeedSpec {
            family: Family::RandomLti,
            seed,
            len: None,
        }
    }

    /// A sensor-family (per-sensor attack, `C ≠ I`) seed with no
    /// length override.
    pub fn sensor(seed: u64) -> SeedSpec {
        SeedSpec {
            family: Family::Sensor,
            seed,
            len: None,
        }
    }

    /// A severe-family (majority of sensors lying) seed with no
    /// length override.
    pub fn severe(seed: u64) -> SeedSpec {
        SeedSpec {
            family: Family::Severe,
            seed,
            len: None,
        }
    }

    /// A drift-family (mid-stream plant drift + recalibration plan)
    /// seed with no length override.
    pub fn drift(seed: u64) -> SeedSpec {
        SeedSpec {
            family: Family::Drift,
            seed,
            len: None,
        }
    }

    /// The same seed with the trace capped at `len` ticks.
    pub fn with_len(self, len: usize) -> SeedSpec {
        SeedSpec {
            len: Some(len),
            ..self
        }
    }

    /// The `cargo run` invocation that replays this exact scenario.
    pub fn repro_command(&self) -> String {
        format!("cargo run --release -p awsad-testkit --bin fuzz -- --repro {self}")
    }
}

impl fmt::Display for SeedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "awsad1:{}:{:016x}", self.family.tag(), self.seed)?;
        if let Some(len) = self.len {
            write!(f, ":len={len}")?;
        }
        Ok(())
    }
}

impl FromStr for SeedSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<SeedSpec, String> {
        let mut parts = s.split(':');
        match parts.next() {
            Some("awsad1") => {}
            other => {
                return Err(format!(
                    "seed string must start with \"awsad1:\", got {other:?}"
                ))
            }
        }
        let family = match parts.next() {
            Some("registry") => Family::Registry,
            Some("lti") => Family::RandomLti,
            Some("sensor") => Family::Sensor,
            Some("severe") => Family::Severe,
            Some("drift") => Family::Drift,
            other => {
                return Err(format!(
                    "unknown scenario family {other:?} (expected \"registry\", \"lti\", \
                     \"sensor\", \"severe\", or \"drift\")"
                ))
            }
        };
        let seed = match parts.next() {
            Some(hex) => {
                u64::from_str_radix(hex, 16).map_err(|e| format!("bad seed hex {hex:?}: {e}"))?
            }
            None => return Err("seed string is missing the seed field".into()),
        };
        let mut len = None;
        for extra in parts {
            if let Some(n) = extra.strip_prefix("len=") {
                len = Some(
                    n.parse::<usize>()
                        .map_err(|e| format!("bad len {n:?}: {e}"))?,
                );
            } else {
                return Err(format!("unknown seed-string field {extra:?}"));
            }
        }
        Ok(SeedSpec { family, seed, len })
    }
}

/// The drift family's precomputed model swap: at tick index `at` the
/// session recalibrates to the drifted plant `(a, b)`. Every oracle
/// path applies the swap at exactly this boundary — ticks `0..at` run
/// under the session's original model, ticks `at..` under the drifted
/// one — so the post-recalibration streams must stay bit-identical.
#[derive(Debug, Clone)]
pub struct ScenarioRecalibration {
    /// Tick index the swap happens before (clamped to the trace
    /// length under a `len=` override).
    pub at: usize,
    /// The drifted state matrix the session swaps to.
    pub a: Matrix,
    /// The drifted input matrix the session swaps to.
    pub b: Matrix,
}

/// A fully materialized scenario: the plant, the detector knobs, and
/// the attack-carrying closed-loop trace every path consumes.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario replays from.
    pub seed: SeedSpec,
    /// Human-readable description (plant + attack schedule).
    pub label: String,
    /// The wire spec — `Some` exactly for [`Family::Registry`]
    /// scenarios, which are the ones the serve paths can run.
    pub spec: Option<SessionSpec>,
    /// The plant.
    pub system: LtiSystem,
    /// Per-dimension residual threshold `τ`.
    pub threshold: Vector,
    /// Maximum window `w_m`.
    pub max_window: usize,
    /// Minimum window.
    pub min_window: usize,
    /// Exact deadline-cache capacity (0 = no cache).
    pub cache_capacity: usize,
    /// Initial-state radius for deadline queries.
    pub initial_radius: f64,
    /// Deadline re-estimation period.
    pub reestimation_period: usize,
    /// Whether complementary detection runs on window shrink.
    pub complementary: bool,
    /// Process-noise bound `ε` the reachability analysis assumes.
    pub epsilon: f64,
    /// Actuator saturation box `U`.
    pub control_limits: BoxSet,
    /// Safe set `S`.
    pub safe_set: BoxSet,
    /// The `(estimate, input)` stream, attack already applied.
    pub trace: Vec<WireTick>,
    /// The tampered sensor readings `y_t` the observer consumed —
    /// populated only for the output-feedback families
    /// ([`Family::Sensor`] / [`Family::Severe`]), empty otherwise.
    /// The lying-sensor localizer benchmarks consume these.
    pub measurements: Vec<Vec<f64>>,
    /// The step the attack schedule activates at (`None` = benign).
    pub attack_onset: Option<usize>,
    /// The mid-stream model swap — `Some` exactly for
    /// [`Family::Drift`] scenarios, which the ninth oracle path runs.
    pub recalibration: Option<ScenarioRecalibration>,
}

impl Scenario {
    /// Materializes the scenario a seed describes. Identical seeds
    /// produce identical scenarios, bit for bit.
    pub fn from_seed(seed: &SeedSpec) -> Scenario {
        match seed.family {
            Family::Registry => registry_scenario(seed),
            Family::RandomLti => random_lti_scenario(seed),
            Family::Sensor => output_feedback_scenario(seed, false),
            Family::Severe => output_feedback_scenario(seed, true),
            Family::Drift => drift_scenario(seed),
        }
    }

    /// Builds the `(logger, detector)` pair for the local reference
    /// run. For registry scenarios this delegates to the **server's
    /// own** construction ([`session_parts_for_spec`]) so the local
    /// reference cannot drift from what the wire path builds.
    pub fn parts(&self) -> (DataLogger, AdaptiveDetector) {
        match &self.spec {
            Some(spec) => {
                let (logger, detector, _, _) =
                    session_parts_for_spec(spec).expect("generated spec must be buildable");
                (logger, detector)
            }
            None => {
                let det_cfg = DetectorConfig::with_min_window(
                    self.threshold.clone(),
                    self.min_window,
                    self.max_window,
                )
                .expect("generated detector config must be valid");
                let mut detector = AdaptiveDetector::new(det_cfg, self.estimator())
                    .expect("generated detector must be valid");
                if self.cache_capacity > 0 {
                    detector.set_deadline_cache(DeadlineCache::new(CacheConfig::exact(
                        self.cache_capacity,
                    )));
                }
                detector.set_initial_radius(self.initial_radius);
                detector.set_reestimation_period(self.reestimation_period);
                detector.set_complementary_enabled(self.complementary);
                let logger = DataLogger::new(self.system.clone(), self.max_window);
                (logger, detector)
            }
        }
    }

    /// Builds a fresh deadline estimator for this scenario's plant.
    pub fn estimator(&self) -> DeadlineEstimator {
        let config = ReachConfig::new(
            self.control_limits.clone(),
            self.epsilon,
            self.safe_set.clone(),
            self.max_window,
        )
        .expect("generated reach config must be valid");
        DeadlineEstimator::new(self.system.a(), self.system.b(), config)
            .expect("generated estimator must be valid")
    }
}

/// Draws the attack schedule for a trace of `len` steps and returns
/// the attack plus its description.
fn draw_attack(
    rng: &mut StdRng,
    len: usize,
    dim: usize,
    target_dim: usize,
    magnitude: f64,
) -> (Box<dyn SensorAttack + Send>, String) {
    let onset = rng.random_range(len / 3..=(2 * len) / 3);
    let duration = if rng.random_bool(0.5) {
        Some(rng.random_range(4..=len / 2 + 4))
    } else {
        None
    };
    let window = AttackWindow::new(onset, duration);
    let dur_desc = match duration {
        Some(d) => format!("for {d}"),
        None => "onward".into(),
    };
    match rng.random_range(0..4u32) {
        0 => (Box::new(NoAttack), "benign".into()),
        1 => {
            let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            let mut bias = Vector::zeros(dim);
            bias[target_dim] = sign * magnitude;
            (
                Box::new(BiasAttack::new(window, bias)),
                format!(
                    "bias {:+.4} on dim {target_dim} at {onset} {dur_desc}",
                    sign * magnitude
                ),
            )
        }
        2 => {
            let delay = rng.random_range(1..=4usize);
            (
                Box::new(DelayAttack::new(window, delay)),
                format!("delay {delay} at {onset} {dur_desc}"),
            )
        }
        _ => {
            let record_len = rng.random_range(3..=8usize).min(onset.max(1));
            let record_start = onset.saturating_sub(record_len);
            (
                Box::new(ReplayAttack::new(window, record_start, record_len)),
                format!("replay [{record_start}, +{record_len}) at {onset} {dur_desc}"),
            )
        }
    }
}

/// Uniform draw from `[-bound, bound]`, tolerating a zero bound.
fn jitter(rng: &mut StdRng, bound: f64) -> f64 {
    if bound > 0.0 {
        rng.random_range(-bound..=bound)
    } else {
        0.0
    }
}

/// Runs the closed loop: measure (+noise), tamper, control, record,
/// step (+process noise). Returns the tick stream the detectors see.
#[allow(clippy::too_many_arguments)]
fn closed_loop_trace(
    rng: &mut StdRng,
    system: &LtiSystem,
    x0: &Vector,
    controller: &mut dyn Controller,
    attack: &mut dyn SensorAttack,
    sensor_noise: f64,
    process_noise: f64,
    len: usize,
) -> Vec<WireTick> {
    let n = system.state_dim();
    let mut x = x0.clone();
    let mut trace = Vec::with_capacity(len);
    for t in 0..len {
        let measured = Vector::from_fn(n, |i| x[i] + jitter(rng, sensor_noise));
        let estimate = attack.tamper(t, &measured);
        let u = controller.control(t, &estimate);
        trace.push(WireTick {
            estimate: estimate.as_slice().to_vec(),
            input: u.as_slice().to_vec(),
        });
        let stepped = system.step(&x, &u);
        x = Vector::from_fn(n, |i| stepped[i] + jitter(rng, process_noise));
    }
    trace
}

/// Generates a [`Family::Registry`] scenario: a random Table 1 row
/// under randomized spec knobs and attack schedule. Detector knobs
/// the wire cannot express stay at the server's defaults (radius 0,
/// period 1, complementary on) so every path builds the same state.
fn registry_scenario(seed: &SeedSpec) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed.seed);
    let sim = Simulator::all()[rng.random_range(0..5usize)];
    let model = sim.build();
    let n = model.state_dim();

    let max_window = rng.random_range(4..=12usize);
    let min_window = if rng.random_bool(0.3) {
        rng.random_range(1..=2usize).min(max_window)
    } else {
        0
    };
    // Half the scenarios keep the model's profiled τ (spec leaves it
    // empty — exercising the server-side defaulting), half scale it.
    let threshold_field = if rng.random_bool(0.5) {
        Vec::new()
    } else {
        let factor = rng.random_range(0.5..=2.0);
        model
            .threshold
            .iter()
            .map(|&tau| tau * factor)
            .collect::<Vec<f64>>()
    };
    let cache_capacity = [0usize, 64, 1024][rng.random_range(0..3usize)];

    // The natural length is always drawn, even under a len override,
    // so shrinking (which only lowers `len`) perturbs the rest of the
    // random stream as little as possible.
    let drawn_len = rng.random_range(40..=72usize);
    let len = seed.len.unwrap_or(drawn_len);
    let profile = &model.attack_profile;
    let magnitude = rng.random_range(profile.bias_range.0..=profile.bias_range.1);
    let (mut attack, attack_desc) =
        draw_attack(&mut rng, len.max(6), n, profile.target_dim, magnitude);

    let mut pid = model.controller().expect("registry model validated");
    let attack_onset = attack.onset();
    let trace = closed_loop_trace(
        &mut rng,
        &model.system,
        &model.x0,
        &mut pid,
        attack.as_mut(),
        model.sensor_noise,
        0.5 * model.epsilon,
        len,
    );

    let spec = SessionSpec {
        model: sim.table1_row() as u8,
        max_window: max_window as u32,
        min_window: min_window as u32,
        threshold: threshold_field,
        cache_capacity: cache_capacity as u32,
        output_rows: 0,
        output_map: Vec::new(),
    };
    let threshold = if spec.threshold.is_empty() {
        model.threshold.clone()
    } else {
        Vector::from_slice(&spec.threshold)
    };
    Scenario {
        seed: *seed,
        label: format!(
            "{} w_m={max_window} cache={cache_capacity} {attack_desc}",
            model.name
        ),
        spec: Some(spec),
        system: model.system.clone(),
        threshold,
        max_window,
        min_window,
        cache_capacity,
        initial_radius: 0.0,
        reestimation_period: 1,
        complementary: true,
        epsilon: model.epsilon,
        control_limits: model.control_limits.clone(),
        safe_set: model.safe_set.clone(),
        trace,
        measurements: Vec::new(),
        attack_onset,
        recalibration: None,
    }
}

/// Generates a [`Family::RandomLti`] scenario: a synthesized plant
/// whose spectral radius is dialed in by rescaling a random matrix,
/// random PID gains, and detector knobs beyond the wire protocol.
fn random_lti_scenario(seed: &SeedSpec) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed.seed);
    let n = rng.random_range(2..=4usize);
    let m = rng.random_range(1..=2usize);

    // Controlled spectral radius: draw a raw matrix, measure ρ, and
    // rescale to the target — stable (< 1) or marginal (≈ 1).
    let target_rho = if rng.random_bool(0.2) {
        rng.random_range(0.98..=1.0)
    } else {
        rng.random_range(0.5..=0.95)
    };
    let raw = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..=1.0));
    let rho = spectral_radius(&raw).unwrap_or(0.0);
    let a = if rho > 1e-9 {
        raw.scale(target_rho / rho)
    } else {
        Matrix::diagonal(&vec![target_rho; n])
    };
    let b = Matrix::from_fn(n, m, |_, _| rng.random_range(-1.0..=1.0));
    let dt = if rng.random_bool(0.5) { 0.01 } else { 0.02 };
    let system = LtiSystem::new_discrete_fully_observable(a, b, dt)
        .expect("synthesized matrices are finite and well-shaped");

    let sensor_noise = rng.random_range(0.001..=0.01);
    let epsilon = rng.random_range(0.002..=0.02);
    let u_max = rng.random_range(0.5..=2.0);
    let control_limits = BoxSet::symmetric(m, u_max).expect("positive bound");
    let safe_bound = rng.random_range(1.5..=4.0);
    let safe_set = BoxSet::symmetric(n, safe_bound).expect("positive bound");
    let threshold = Vector::from_fn(n, |_| sensor_noise * rng.random_range(2.0..=6.0));

    let max_window = rng.random_range(4..=10usize);
    let min_window = if rng.random_bool(0.3) {
        rng.random_range(1..=2usize).min(max_window)
    } else {
        0
    };
    let cache_capacity = [0usize, 64, 1024][rng.random_range(0..3usize)];
    let initial_radius = if rng.random_bool(0.5) {
        sensor_noise
    } else {
        0.0
    };
    let reestimation_period = rng.random_range(1..=3usize);
    let complementary = rng.random_bool(0.8);

    // Random PID gains, one channel per input driven by a random
    // state dimension, regulating to zero.
    let channels = (0..m)
        .map(|j| {
            PidChannel::new(
                rng.random_range(0..n),
                j,
                PidGains::new(
                    rng.random_range(0.1..=2.0),
                    rng.random_range(0.0..=0.5),
                    rng.random_range(0.0..=0.1),
                ),
                Reference::constant(0.0),
            )
        })
        .collect::<Vec<_>>();
    let mut pid = PidController::new(channels, control_limits.clone(), dt)
        .expect("synthesized PID channels are in range");

    let x0 = Vector::from_fn(n, |_| rng.random_range(-0.1..=0.1));
    let drawn_len = rng.random_range(40..=72usize);
    let len = seed.len.unwrap_or(drawn_len);
    let target_dim = rng.random_range(0..n);
    let magnitude = threshold[target_dim] * rng.random_range(1.5..=8.0);
    let (mut attack, attack_desc) = draw_attack(&mut rng, len.max(6), n, target_dim, magnitude);
    let attack_onset = attack.onset();

    let trace = closed_loop_trace(
        &mut rng,
        &system,
        &x0,
        &mut pid,
        attack.as_mut(),
        sensor_noise,
        0.5 * epsilon,
        len,
    );

    Scenario {
        seed: *seed,
        label: format!(
            "lti n={n} m={m} ρ={target_rho:.2} w_m={max_window} cache={cache_capacity} {attack_desc}"
        ),
        spec: None,
        system,
        threshold,
        max_window,
        min_window,
        cache_capacity,
        initial_radius,
        reestimation_period,
        complementary,
        epsilon,
        control_limits,
        safe_set,
        trace,
        measurements: Vec::new(),
        attack_onset,
        recalibration: None,
    }
}

/// Draws a `k`-sensor subset of `0..p` and a [`PerSensor`] attack on
/// it: per-channel bias, delay, or replay, dimensioned for the subset.
fn draw_per_sensor_attack(
    rng: &mut StdRng,
    len: usize,
    lying: Vec<usize>,
    magnitude: f64,
) -> (Box<dyn SensorAttack + Send>, String) {
    let k = lying.len();
    let onset = rng.random_range(len / 3..=(2 * len) / 3);
    let duration = if rng.random_bool(0.5) {
        Some(rng.random_range(4..=len / 2 + 4))
    } else {
        None
    };
    let window = AttackWindow::new(onset, duration);
    let dur_desc = match duration {
        Some(d) => format!("for {d}"),
        None => "onward".into(),
    };
    match rng.random_range(0..3u32) {
        0 => {
            let bias = Vector::from_fn(k, |_| {
                let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
                sign * magnitude * rng.random_range(0.5..=1.0)
            });
            (
                Box::new(
                    PerSensor::new(lying.clone(), BiasAttack::new(window, bias))
                        .expect("lying-sensor indices are distinct and non-empty by construction"),
                ),
                format!("bias ~{magnitude:.4} on sensors {lying:?} at {onset} {dur_desc}"),
            )
        }
        1 => {
            let delay = rng.random_range(1..=4usize);
            (
                Box::new(
                    PerSensor::new(lying.clone(), DelayAttack::new(window, delay))
                        .expect("lying-sensor indices are distinct and non-empty by construction"),
                ),
                format!("delay {delay} on sensors {lying:?} at {onset} {dur_desc}"),
            )
        }
        _ => {
            let record_len = rng.random_range(3..=8usize).min(onset.max(1));
            let record_start = onset.saturating_sub(record_len);
            (
                Box::new(
                    PerSensor::new(
                        lying.clone(),
                        ReplayAttack::new(window, record_start, record_len),
                    )
                    .expect("lying-sensor indices are distinct and non-empty by construction"),
                ),
                format!(
                    "replay [{record_start}, +{record_len}) on sensors {lying:?} at {onset} \
                     {dur_desc}"
                ),
            )
        }
    }
}

/// Runs the output-feedback closed loop: measure through `C` (+
/// noise), tamper per sensor, reconstruct `x̂_t` with the observer,
/// control on the estimate, step the plant (+ process noise). The
/// detectors see `(x̂_t, u_t)` — corruption reaches them only through
/// the observer's innovation. Also returns the tampered measurement
/// stream for the lying-sensor localizer benchmarks.
#[allow(clippy::too_many_arguments)]
fn output_feedback_trace(
    rng: &mut StdRng,
    plant: &LtiSystem,
    observer: &mut Observer,
    x0: &Vector,
    controller: &mut dyn Controller,
    attack: &mut dyn SensorAttack,
    sensor_noise: f64,
    process_noise: f64,
    len: usize,
) -> (Vec<WireTick>, Vec<Vec<f64>>) {
    let n = plant.state_dim();
    let p = observer.system().output_dim();
    let mut x = x0.clone();
    let mut prev_u = Vector::zeros(plant.input_dim());
    let mut trace = Vec::with_capacity(len);
    let mut measurements = Vec::with_capacity(len);
    for t in 0..len {
        let y = observer.system().measure(&x);
        let noisy = Vector::from_fn(p, |i| y[i] + jitter(rng, sensor_noise));
        let tampered = attack.tamper(t, &noisy);
        let estimate = observer.update(&prev_u, &tampered).clone();
        let u = controller.control(t, &estimate);
        trace.push(WireTick {
            estimate: estimate.as_slice().to_vec(),
            input: u.as_slice().to_vec(),
        });
        measurements.push(tampered.as_slice().to_vec());
        let stepped = plant.step(&x, &u);
        x = Vector::from_fn(n, |i| stepped[i] + jitter(rng, process_noise));
        prev_u = u;
    }
    (trace, measurements)
}

/// Generates a [`Family::Sensor`] (`severe == false`) or
/// [`Family::Severe`] (`severe == true`) scenario: a Table 1 model
/// sensed through a randomized output map `C ≠ I` with a
/// [`PerSensor`] attack falsifying individual sensors, estimates
/// reconstructed by a steady-state Kalman observer. The spec carries
/// the output map, so these run every path, wire included; the
/// detector stack itself is identical to the registry family (the map
/// is scenario metadata — see `SessionSpec`).
fn output_feedback_scenario(seed: &SeedSpec, severe: bool) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed.seed);
    let sim = Simulator::all()[rng.random_range(0..5usize)];
    let model = sim.build();
    let n = model.state_dim();

    // Severe needs p ≥ 3 so a strict majority of sensors can lie
    // while at least one stays honest; sensor needs p ≥ 2 so there is
    // an honest channel left. Redundant rows (p > n) mirror the
    // secure-state-estimation setting.
    let p = if severe {
        (n + 1).max(3) + rng.random_range(0..=1usize)
    } else {
        (n + rng.random_range(0..=1usize)).max(2)
    };

    let process_noise = 0.5 * model.epsilon;
    // Uniform jitter of radius r has per-dimension std r/√3.
    let process_std = process_noise / 3f64.sqrt();
    let measurement_std = model.sensor_noise / 3f64.sqrt();

    // Redraw the output map until the observer design succeeds: a
    // random row mix is almost surely detectable thanks to the
    // identity-ish diagonal bump, but the Riccati iteration gets the
    // final word.
    let mut attempts = 0;
    let (observed, gain) = loop {
        let c = Matrix::from_fn(p, n, |i, j| {
            let bump = if j == i % n { 1.0 } else { 0.0 };
            bump + rng.random_range(-0.5..=0.5)
        });
        let candidate = LtiSystem::new_discrete(
            model.system.a().clone(),
            model.system.b().clone(),
            c,
            model.dt(),
        )
        .expect("registry matrices are finite and well-shaped");
        if let Ok(gain) = design_output_observer(&candidate, process_std, measurement_std) {
            let probe = Observer::new(candidate.clone(), gain.clone(), model.x0.clone())
                .expect("gain shape follows from the design");
            if probe.is_convergent() {
                break (candidate, gain);
            }
        }
        attempts += 1;
        assert!(
            attempts < 64,
            "observer design kept failing for {} (seed {seed})",
            model.name
        );
    };

    // Lying-sensor subset: a minority (or exactly half) for `sensor`,
    // a strict majority for `severe` ("fewer than half trustworthy").
    let lying_count = if severe {
        let honest = rng.random_range(1..=(p - 1) / 2);
        p - honest
    } else {
        rng.random_range(1..=(p / 2).max(1))
    };
    let mut lying = Vec::with_capacity(lying_count);
    while lying.len() < lying_count {
        let s = rng.random_range(0..p);
        if !lying.contains(&s) {
            lying.push(s);
        }
    }
    lying.sort_unstable();

    let max_window = rng.random_range(4..=12usize);
    let min_window = if rng.random_bool(0.3) {
        rng.random_range(1..=2usize).min(max_window)
    } else {
        0
    };
    let threshold_field = if rng.random_bool(0.5) {
        Vec::new()
    } else {
        let factor = rng.random_range(0.5..=2.0);
        model
            .threshold
            .iter()
            .map(|&tau| tau * factor)
            .collect::<Vec<f64>>()
    };
    let cache_capacity = [0usize, 64, 1024][rng.random_range(0..3usize)];

    let drawn_len = rng.random_range(40..=72usize);
    let len = seed.len.unwrap_or(drawn_len);
    let profile = &model.attack_profile;
    let magnitude = rng.random_range(profile.bias_range.0..=profile.bias_range.1);
    // The severe family is about majority corruption, so it never
    // draws benign; the sensor family keeps a benign slice for
    // false-positive measurement.
    let (mut attack, attack_desc): (Box<dyn SensorAttack + Send>, String) =
        if !severe && rng.random_bool(0.25) {
            (Box::new(NoAttack), "benign".into())
        } else {
            draw_per_sensor_attack(&mut rng, len.max(6), lying, magnitude)
        };

    let mut pid = model.controller().expect("registry model validated");
    let mut observer = Observer::new(observed.clone(), gain, model.x0.clone())
        .expect("gain shape follows from the design");
    let attack_onset = attack.onset();
    let (trace, measurements) = output_feedback_trace(
        &mut rng,
        &model.system,
        &mut observer,
        &model.x0,
        &mut pid,
        attack.as_mut(),
        model.sensor_noise,
        process_noise,
        len,
    );

    let c = observed.c();
    let output_map = (0..p)
        .flat_map(|i| (0..n).map(move |j| c[(i, j)]))
        .collect::<Vec<f64>>();
    let spec = SessionSpec {
        model: sim.table1_row() as u8,
        max_window: max_window as u32,
        min_window: min_window as u32,
        threshold: threshold_field,
        cache_capacity: cache_capacity as u32,
        output_rows: 0,
        output_map: Vec::new(),
    }
    .with_output_map(p as u32, output_map);
    let threshold = if spec.threshold.is_empty() {
        model.threshold.clone()
    } else {
        Vector::from_slice(&spec.threshold)
    };
    Scenario {
        seed: *seed,
        label: format!(
            "{} {} p={p} w_m={max_window} cache={cache_capacity} {attack_desc}",
            if severe { "severe" } else { "sensor" },
            model.name
        ),
        spec: Some(spec),
        system: model.system.clone(),
        threshold,
        max_window,
        min_window,
        cache_capacity,
        initial_radius: 0.0,
        reestimation_period: 1,
        complementary: true,
        epsilon: model.epsilon,
        control_limits: model.control_limits.clone(),
        safe_set: model.safe_set.clone(),
        trace,
        measurements,
        attack_onset,
        recalibration: None,
    }
}

/// Generates a [`Family::Drift`] scenario: a Table 1 model whose true
/// plant drifts mid-stream — a step or ramp blending `A` and/or `B`
/// toward scaled variants — with an optional concurrent sensor attack.
/// The loop runs **noise-free**, so outside the attack window the
/// `(estimate, input)` stream is an exact trajectory of whichever
/// plant is live: pre-drift windows are nominal-consistent and
/// post-drift windows are exactly identifiable as the drifted model,
/// which is what lets the drift-vs-attack rule (and the property
/// tests over this family) draw a hard line between the two alarm
/// kinds. The precomputed [`ScenarioRecalibration`] lands right after
/// the drift completes; detector knobs stay at the wire defaults so
/// every path, serve included, builds identical state.
fn drift_scenario(seed: &SeedSpec) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed.seed);
    let sim = Simulator::all()[rng.random_range(0..5usize)];
    let model = sim.build();
    let n = model.state_dim();

    let max_window = rng.random_range(4..=12usize);
    let min_window = if rng.random_bool(0.3) {
        rng.random_range(1..=2usize).min(max_window)
    } else {
        0
    };
    let threshold_field = if rng.random_bool(0.5) {
        Vec::new()
    } else {
        let factor = rng.random_range(0.5..=2.0);
        model
            .threshold
            .iter()
            .map(|&tau| tau * factor)
            .collect::<Vec<f64>>()
    };
    let cache_capacity = [0usize, 64, 1024][rng.random_range(0..3usize)];

    let drawn_len = rng.random_range(48..=72usize);
    let len = seed.len.unwrap_or(drawn_len);

    // The drift plan: which matrices move, how far, and how fast.
    // Scaling A toward the origin keeps every drifted plant at least
    // as stable as the Table 1 original, so the reachability config
    // stays valid after the swap; B scaling is unconstrained.
    let drift_a = rng.random_bool(0.7);
    let drift_b = if drift_a { rng.random_bool(0.4) } else { true };
    let factor_a = if drift_a {
        rng.random_range(0.70..=0.92)
    } else {
        1.0
    };
    let factor_b = if drift_b {
        rng.random_range(0.6..=1.4)
    } else {
        1.0
    };
    let ramp = if rng.random_bool(0.5) {
        0 // step change
    } else {
        rng.random_range(3..=8usize)
    };
    // Onset and recalibration point are drawn from the *natural*
    // length so a `len=` override perturbs nothing else; `at` is
    // clamped into the actual trace by the oracles.
    let onset = rng.random_range(drawn_len / 4..=drawn_len / 2);
    let at = (onset + ramp + 1).min(len);

    let a0 = model.system.a().clone();
    let b0 = model.system.b().clone();
    let a1 = a0.scale(factor_a);
    let b1 = b0.scale(factor_b);

    let profile = &model.attack_profile;
    let magnitude = rng.random_range(profile.bias_range.0..=profile.bias_range.1);
    let (mut attack, attack_desc) =
        draw_attack(&mut rng, len.max(6), n, profile.target_dim, magnitude);
    let attack_onset = attack.onset();

    // Noise-free closed loop over the time-varying truth: the live
    // plant blends from (A₀, B₀) to (A₁, B₁) across the ramp.
    let blend = |t: usize| -> f64 {
        if t < onset {
            0.0
        } else if ramp == 0 || t >= onset + ramp {
            1.0
        } else {
            (t - onset + 1) as f64 / ramp as f64
        }
    };
    let mut pid = model.controller().expect("registry model validated");
    let mut x = model.x0.clone();
    let mut trace = Vec::with_capacity(len);
    for t in 0..len {
        let estimate = attack.tamper(t, &x);
        let u = pid.control(t, &estimate);
        trace.push(WireTick {
            estimate: estimate.as_slice().to_vec(),
            input: u.as_slice().to_vec(),
        });
        let alpha = blend(t);
        let a_t = Matrix::from_fn(n, n, |i, j| a0[(i, j)] + alpha * (a1[(i, j)] - a0[(i, j)]));
        let b_t = Matrix::from_fn(n, b0.cols(), |i, j| {
            b0[(i, j)] + alpha * (b1[(i, j)] - b0[(i, j)])
        });
        let ax = a_t.checked_mul_vec(&x).expect("square A times state");
        let bu = b_t.checked_mul_vec(&u).expect("B times input");
        x = Vector::from_fn(n, |i| ax[i] + bu[i]);
    }

    let spec = SessionSpec {
        model: sim.table1_row() as u8,
        max_window: max_window as u32,
        min_window: min_window as u32,
        threshold: threshold_field,
        cache_capacity: cache_capacity as u32,
        output_rows: 0,
        output_map: Vec::new(),
    };
    let threshold = if spec.threshold.is_empty() {
        model.threshold.clone()
    } else {
        Vector::from_slice(&spec.threshold)
    };
    let shape = if ramp == 0 {
        "step".to_string()
    } else {
        format!("ramp{ramp}")
    };
    Scenario {
        seed: *seed,
        label: format!(
            "drift {} {shape} A×{factor_a:.2} B×{factor_b:.2} at {onset} recal@{at} \
             w_m={max_window} cache={cache_capacity} {attack_desc}",
            model.name
        ),
        spec: Some(spec),
        system: model.system.clone(),
        threshold,
        max_window,
        min_window,
        cache_capacity,
        initial_radius: 0.0,
        reestimation_period: 1,
        complementary: true,
        epsilon: model.epsilon,
        control_limits: model.control_limits.clone(),
        safe_set: model.safe_set.clone(),
        trace,
        measurements: Vec::new(),
        attack_onset,
        recalibration: Some(ScenarioRecalibration { at, a: a1, b: b1 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_string_round_trips() {
        for spec in [
            SeedSpec::registry(0),
            SeedSpec::registry(u64::MAX),
            SeedSpec::random_lti(0xdead_beef),
            SeedSpec::sensor(0xfeed),
            SeedSpec::severe(0xface).with_len(12),
            SeedSpec::drift(0xd1f7),
            SeedSpec::registry(42).with_len(17),
        ] {
            let s = spec.to_string();
            assert_eq!(s.parse::<SeedSpec>().unwrap(), spec, "via {s}");
        }
    }

    #[test]
    fn seed_string_rejects_garbage() {
        for bad in [
            "",
            "awsad1",
            "awsad2:registry:00",
            "awsad1:nope:00",
            "awsad1:registry:xyz",
            "awsad1:registry:00:len=q",
            "awsad1:registry:00:frobnicate=1",
        ] {
            assert!(bad.parse::<SeedSpec>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn same_seed_same_scenario() {
        for seed in [
            SeedSpec::registry(7),
            SeedSpec::random_lti(7),
            SeedSpec::sensor(7),
            SeedSpec::severe(7),
            SeedSpec::drift(7),
        ] {
            let a = Scenario::from_seed(&seed);
            let b = Scenario::from_seed(&seed);
            assert_eq!(a.label, b.label);
            assert_eq!(a.trace.len(), b.trace.len());
            for (ta, tb) in a.trace.iter().zip(&b.trace) {
                assert_eq!(ta.estimate, tb.estimate);
                assert_eq!(ta.input, tb.input);
            }
        }
    }

    #[test]
    fn len_override_caps_trace() {
        let seed = SeedSpec::registry(3).with_len(9);
        assert_eq!(Scenario::from_seed(&seed).trace.len(), 9);
    }

    #[test]
    fn registry_scenarios_build_via_server_construction() {
        for s in 0..8u64 {
            let scenario = Scenario::from_seed(&SeedSpec::registry(s));
            let (logger, detector) = scenario.parts();
            assert_eq!(logger.system().state_dim(), scenario.system.state_dim());
            assert_eq!(detector.config().max_window(), scenario.max_window);
            assert_eq!(detector.has_deadline_cache(), scenario.cache_capacity > 0);
        }
    }

    #[test]
    fn sensor_scenarios_carry_consistent_output_maps() {
        for s in 0..12u64 {
            for seed in [SeedSpec::sensor(s), SeedSpec::severe(s)] {
                let scenario = Scenario::from_seed(&seed);
                let spec = scenario
                    .spec
                    .as_ref()
                    .expect("sensor families are wire-capable");
                let n = scenario.system.state_dim();
                let p = spec.output_rows as usize;
                assert!(p >= 2, "need at least two sensors, got {p}");
                assert_eq!(spec.output_map.len(), p * n, "map must be p × n row-major");
                assert!(spec.output_map.iter().all(|v| v.is_finite()));
                // The server's own construction must accept the spec.
                let (logger, detector) = scenario.parts();
                assert_eq!(logger.system().state_dim(), n);
                assert_eq!(detector.config().max_window(), scenario.max_window);
            }
        }
    }

    #[test]
    fn severe_scenarios_have_a_lying_majority() {
        // The label records the lying-sensor subset; parse it back out
        // and check the trustworthy minority invariant.
        for s in 0..12u64 {
            let scenario = Scenario::from_seed(&SeedSpec::severe(s));
            let spec = scenario.spec.as_ref().unwrap();
            let p = spec.output_rows as usize;
            let lying = scenario
                .label
                .split("sensors [")
                .nth(1)
                .expect("severe labels list the lying sensors")
                .split(']')
                .next()
                .unwrap()
                .split(',')
                .count();
            assert!(
                2 * (p - lying) < p,
                "severe scenario must leave fewer than half trustworthy \
                 (p = {p}, lying = {lying}): {}",
                scenario.label
            );
            assert!(lying < p, "at least one sensor stays honest");
        }
    }

    #[test]
    fn drift_scenarios_carry_an_applicable_recalibration_plan() {
        for s in 0..12u64 {
            let scenario = Scenario::from_seed(&SeedSpec::drift(s));
            let spec = scenario
                .spec
                .as_ref()
                .expect("drift scenarios are wire-capable");
            let recal = scenario
                .recalibration
                .as_ref()
                .expect("drift scenarios carry a recalibration plan");
            let n = scenario.system.state_dim();
            let m = scenario.system.input_dim();
            assert_eq!(recal.a.shape(), (n, n));
            assert_eq!(recal.b.shape(), (n, m));
            assert!(recal.at <= scenario.trace.len());
            assert_eq!(spec.output_rows, 0, "drift uses full state feedback");
            // The swap must be accepted by the detector the server
            // itself would build for this spec.
            let (mut logger, mut detector) = scenario.parts();
            let count = detector
                .recalibrate(&mut logger, &recal.a, &recal.b)
                .expect("precomputed recalibration must be valid");
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn drift_len_override_only_caps_the_trace() {
        // Shrinking must not re-roll the drift plan: the same seed
        // with a shorter len keeps the same drifted matrices and the
        // recalibration point is merely clamped.
        let full = Scenario::from_seed(&SeedSpec::drift(11));
        let cut = Scenario::from_seed(&SeedSpec::drift(11).with_len(10));
        let (rf, rc) = (
            full.recalibration.as_ref().unwrap(),
            cut.recalibration.as_ref().unwrap(),
        );
        assert_eq!(cut.trace.len(), 10);
        assert!(rf.a.approx_eq(&rc.a) && rf.b.approx_eq(&rc.b));
        assert!(rc.at <= 10);
    }

    #[test]
    fn random_lti_scenarios_build() {
        for s in 0..8u64 {
            let scenario = Scenario::from_seed(&SeedSpec::random_lti(s));
            let (logger, detector) = scenario.parts();
            assert_eq!(logger.system().state_dim(), scenario.system.state_dim());
            assert_eq!(detector.initial_radius(), scenario.initial_radius);
        }
    }
}
