//! A frame-aware fault-injection TCP proxy, shared by the serve chaos
//! tests and the fuzzer's resume path.
//!
//! The proxy sits between a real client and a real server and injects
//! transport faults deterministically: each accepted connection
//! consumes the next [`FaultPlan`], whose entries apply to
//! server→client reply frames *in order* (the proxy parses the
//! protocol's length prefix, so a fault hits an exact frame, not a
//! random byte offset). Plans exhausted — and connections beyond the
//! planned ones — forward everything untouched.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// What to do with one server→client reply frame.
#[derive(Debug, Clone)]
pub enum ReplyFault {
    /// Pass the frame through untouched.
    Forward,
    /// Hold the frame for the given duration, then deliver it — the
    /// late-reply scenario behind the timeout-desync bug.
    Delay(Duration),
    /// Deliver only the first `n` bytes of the framed reply (length
    /// prefix included), then sever the connection mid-frame.
    Truncate(usize),
    /// Swallow the reply entirely and sever the connection.
    Drop,
}

/// Reply faults for one proxied connection, applied in frame order;
/// replies past the end of the list are forwarded.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Per-reply faults, in server-reply order.
    pub replies: Vec<ReplyFault>,
}

impl FaultPlan {
    /// Forwards `clean` replies, then applies `fault`.
    pub fn after(clean: usize, fault: ReplyFault) -> FaultPlan {
        let mut replies = vec![ReplyFault::Forward; clean];
        replies.push(fault);
        FaultPlan { replies }
    }
}

/// A running fault-injection proxy; dropping it stops the accept
/// loop (live pipes die when their sockets close).
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `upstream`. The `i`-th accepted connection runs `plans[i]`.
    pub fn start(upstream: SocketAddr, plans: Vec<FaultPlan>) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let plans = Mutex::new(VecDeque::from(plans));
        let accept = thread::spawn(move || loop {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((client, _)) => {
                    if client.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let plan = plans
                        .lock()
                        .expect("plans lock")
                        .pop_front()
                        .unwrap_or_default();
                    let Ok(up) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    spawn_pipes(client, up, plan);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        });
        FaultProxy {
            addr,
            shutdown,
            accept: Some(accept),
        }
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn spawn_pipes(client: TcpStream, upstream: TcpStream, plan: FaultPlan) {
    // Client → server: a dumb byte pipe; faults only target replies.
    {
        let (mut from, to) = (
            client.try_clone().expect("clone client"),
            upstream.try_clone().expect("clone upstream"),
        );
        thread::spawn(move || {
            let mut to_w = to.try_clone().expect("clone upstream");
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => {
                        sever(&from, &to);
                        return;
                    }
                    Ok(n) => {
                        if to_w.write_all(&buf[..n]).is_err() {
                            sever(&from, &to);
                            return;
                        }
                    }
                }
            }
        });
    }
    // Server → client: frame-aware, applying the plan reply by reply.
    thread::spawn(move || {
        let mut up_r = upstream.try_clone().expect("clone upstream");
        let mut client_w = client.try_clone().expect("clone client");
        let mut reply_index = 0usize;
        loop {
            // One protocol frame: u32-BE length prefix + payload.
            let mut prefix = [0u8; 4];
            if up_r.read_exact(&mut prefix).is_err() {
                sever(&client, &upstream);
                return;
            }
            let len = u32::from_be_bytes(prefix) as usize;
            let mut framed = Vec::with_capacity(4 + len);
            framed.extend_from_slice(&prefix);
            framed.resize(4 + len, 0);
            if up_r.read_exact(&mut framed[4..]).is_err() {
                sever(&client, &upstream);
                return;
            }
            let fault = plan
                .replies
                .get(reply_index)
                .cloned()
                .unwrap_or(ReplyFault::Forward);
            reply_index += 1;
            match fault {
                ReplyFault::Forward => {
                    if client_w.write_all(&framed).is_err() {
                        sever(&client, &upstream);
                        return;
                    }
                }
                ReplyFault::Delay(d) => {
                    thread::sleep(d);
                    if client_w.write_all(&framed).is_err() {
                        sever(&client, &upstream);
                        return;
                    }
                }
                ReplyFault::Truncate(n) => {
                    let cut = n.min(framed.len());
                    let _ = client_w.write_all(&framed[..cut]);
                    let _ = client_w.flush();
                    sever(&client, &upstream);
                    return;
                }
                ReplyFault::Drop => {
                    sever(&client, &upstream);
                    return;
                }
            }
        }
    });
}
