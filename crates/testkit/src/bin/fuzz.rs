//! The awsad fuzz driver: time-boxed smoke runs, exact repro, and a
//! built-in shrinker.
//!
//! ```text
//! fuzz --seconds 30 --seed 5      # CI smoke: scenarios + wire fuzz
//! fuzz --repro <seed-string>      # replay one scenario exactly
//! fuzz --wire <n>                 # replay one wire-fuzz iteration
//! fuzz --torn <n>                 # replay one torn-frame probe
//! ```
//!
//! The smoke loop interleaves four activities, all derived from the
//! master seed:
//!
//! * **scenario oracles** — generate a scenario, run the differential
//!   oracles (all six paths for registry scenarios — including the
//!   readiness `awsad-net` server — local paths for random-LTI ones,
//!   and the recalibration path for drift scenarios) plus the
//!   estimator self-checks;
//! * **wire fuzz** — batches of structure-aware frame mutations plus
//!   the allocation-guard checks;
//! * **poisoning probes** — periodically prove hostile bytes on one
//!   connection cannot perturb another connection's stream, on both
//!   server implementations;
//! * **torn-frame probes** — requests split into 1–7 byte chunks and
//!   interleaved across connections sharing one event-loop shard,
//!   proving the incremental decoder never leaks partial-frame state
//!   between connections.
//!
//! On a scenario failure the shrinker minimizes the trace length via
//! the seed string's `len=` field (re-verifying each candidate) and
//! prints a two-line repro: the minimized seed string and the command
//! that replays it. Exit code 1 signals any failure.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use awsad_net::{NetServer, NetServerConfig};
use awsad_serve::server::{Server, ServerConfig};
use awsad_testkit::scenario::{Scenario, SeedSpec};
use awsad_testkit::wirefuzz;
use awsad_testkit::{check_estimator, check_local_paths, check_recalibrate_path, check_six_paths};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

struct Args {
    seconds: u64,
    seed: u64,
    repro: Option<String>,
    wire: Option<u64>,
    torn: Option<u64>,
}

/// One event-loop shard, so torn-frame interleaving is guaranteed to
/// land every fuzzed connection on the same incremental decoder.
fn one_shard() -> NetServerConfig {
    NetServerConfig {
        shards: 1,
        ..NetServerConfig::default()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seconds: 30,
        seed: 1,
        repro: None,
        wire: None,
        torn: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--seconds" => {
                args.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--repro" => args.repro = Some(value("--repro")?),
            "--wire" => {
                args.wire = Some(
                    value("--wire")?
                        .parse()
                        .map_err(|e| format!("--wire: {e}"))?,
                );
            }
            "--torn" => {
                args.torn = Some(
                    value("--torn")?
                        .parse()
                        .map_err(|e| format!("--torn: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--seconds N] [--seed S] [--repro SEEDSTRING] [--wire N] [--torn N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Runs every oracle that applies to the scenario; returns the first
/// failure rendered as a string.
fn check_scenario(
    seed: &SeedSpec,
    serve_addr: SocketAddr,
    net_addr: SocketAddr,
) -> Result<(), String> {
    let scenario = Scenario::from_seed(seed);
    check_estimator(&scenario).map_err(|e| e.to_string())?;
    if scenario.spec.is_some() {
        check_six_paths(&scenario, serve_addr, net_addr).map_err(|e| e.to_string())?;
    } else {
        check_local_paths(&scenario).map_err(|e| e.to_string())?;
    }
    if scenario.recalibration.is_some() {
        check_recalibrate_path(&scenario, serve_addr, net_addr).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Minimizes a failing seed by lowering its `len=` override, greedily
/// then by binary search, re-verifying every candidate. Returns the
/// smallest still-failing seed and its failure message.
fn shrink(
    failing: &SeedSpec,
    failure: String,
    check: impl Fn(&SeedSpec) -> Result<(), String>,
) -> (SeedSpec, String) {
    let full_len = Scenario::from_seed(failing).trace.len();
    let mut best = failing.with_len(full_len);
    let mut best_failure = failure;
    let (mut lo, mut hi) = (1usize, full_len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = failing.with_len(mid);
        match check(&candidate) {
            Err(msg) => {
                best = candidate;
                best_failure = msg;
                hi = mid;
            }
            Ok(()) => lo = mid + 1,
        }
    }
    (best, best_failure)
}

fn report_scenario_failure(
    seed: &SeedSpec,
    failure: String,
    check: impl Fn(&SeedSpec) -> Result<(), String>,
) {
    eprintln!("FAIL {seed}: {failure}");
    let (min, min_failure) = shrink(seed, failure, check);
    eprintln!("shrunk: {min_failure}");
    eprintln!("minimized failing scenario: {min}");
    eprintln!("{}", min.repro_command());
}

fn smoke(seconds: u64, master_seed: u64) -> ExitCode {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind fuzz server");
    let addr = server.local_addr();
    let net_server = NetServer::bind("127.0.0.1:0", one_shard()).expect("bind fuzz net server");
    let net_addr = net_server.local_addr();
    let check = |seed: &SeedSpec| check_scenario(seed, addr, net_addr);

    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut rng = StdRng::seed_from_u64(master_seed);
    let mut scenarios = 0u64;
    let mut wire_iters = 0u64;
    let mut probes = 0u64;
    let mut torn_probes = 0u64;
    let mut failed = false;

    while Instant::now() < deadline && !failed {
        // Wire fuzz: a batch per lap, each iteration independently
        // seeded so `--wire <n>` replays it exactly.
        for _ in 0..64 {
            let wire_seed = rng.random_range(0..=u64::MAX);
            let mut wire_rng = StdRng::seed_from_u64(wire_seed);
            if let Err(v) = wirefuzz::fuzz_frame_once(&mut wire_rng) {
                eprintln!("FAIL wire iteration {wire_seed}: {v}");
                eprintln!("cargo run --release -p awsad-testkit --bin fuzz -- --wire {wire_seed}");
                failed = true;
                break;
            }
            wire_iters += 1;
        }
        if failed {
            break;
        }
        {
            let guard_seed = rng.random_range(0..=u64::MAX);
            let mut guard_rng = StdRng::seed_from_u64(guard_seed);
            if let Err(v) = wirefuzz::check_allocation_guards(&mut guard_rng) {
                eprintln!("FAIL allocation guard (seed {guard_seed}): {v}");
                failed = true;
                break;
            }
        }

        // One scenario per lap, cycling through all five families.
        let scenario_seed = rng.random_range(0..=u64::MAX);
        let seed = match scenarios % 5 {
            0 => SeedSpec::registry(scenario_seed),
            1 => SeedSpec::random_lti(scenario_seed),
            2 => SeedSpec::sensor(scenario_seed),
            3 => SeedSpec::severe(scenario_seed),
            _ => SeedSpec::drift(scenario_seed),
        };
        if let Err(failure) = check(&seed) {
            report_scenario_failure(&seed, failure, check);
            failed = true;
            break;
        }
        scenarios += 1;

        // Poisoning probe every 8th lap: hostile bytes from the frame
        // mutator against a live connection pair, on both servers.
        if scenarios.is_multiple_of(8) {
            let probe_seed = SeedSpec::registry(rng.random_range(0..=u64::MAX)).with_len(24);
            let scenario = Scenario::from_seed(&probe_seed);
            let mut garbage = wirefuzz::arbitrary_frame(&mut rng).encode();
            wirefuzz::mutate(&mut rng, &mut garbage);
            for (which, target) in [("serve", addr), ("net", net_addr)] {
                if let Err(v) =
                    wirefuzz::check_no_cross_connection_poisoning(&scenario, target, &garbage)
                {
                    eprintln!("FAIL poisoning probe ({which}) on {probe_seed}: {v}");
                    failed = true;
                }
            }
            if failed {
                break;
            }
            probes += 1;
        }

        // Torn-frame probe every 8th lap (offset from the poisoning
        // probes): interleaved 1–7 byte chunks across connections on
        // the net server's single shard.
        if scenarios % 8 == 4 {
            let torn_seed = rng.random_range(0..=u64::MAX);
            if let Err(v) = run_torn_probe(torn_seed, net_addr) {
                eprintln!("FAIL torn-frame probe {torn_seed}: {v}");
                eprintln!("cargo run --release -p awsad-testkit --bin fuzz -- --torn {torn_seed}");
                failed = true;
                break;
            }
            torn_probes += 1;
        }
    }

    net_server.shutdown();
    server.shutdown();
    println!(
        "fuzz smoke: {scenarios} scenarios, {wire_iters} wire iterations, {probes} poisoning probes, {torn_probes} torn-frame probes ({})",
        if failed { "FAILED" } else { "all green" }
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One torn-frame probe, fully determined by its seed: the scenario,
/// the chunk sizes, and the garbage bytes all derive from it.
fn run_torn_probe(torn_seed: u64, net_addr: SocketAddr) -> Result<(), String> {
    let mut torn_rng = StdRng::seed_from_u64(torn_seed);
    let probe_seed = SeedSpec::registry(torn_rng.random_range(0..=u64::MAX)).with_len(48);
    let scenario = Scenario::from_seed(&probe_seed);
    wirefuzz::check_torn_frame_interleaving(&scenario, net_addr, &mut torn_rng)
        .map_err(|v| format!("{probe_seed}: {v}"))
}

fn repro(seed_string: &str) -> ExitCode {
    let seed: SeedSpec = match seed_string.parse() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad seed string: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind fuzz server");
    let addr = server.local_addr();
    let net_server = NetServer::bind("127.0.0.1:0", one_shard()).expect("bind fuzz net server");
    let net_addr = net_server.local_addr();
    let scenario = Scenario::from_seed(&seed);
    println!("replaying {seed}: {}", scenario.label);
    let result = check_scenario(&seed, addr, net_addr);
    net_server.shutdown();
    server.shutdown();
    match result {
        Ok(()) => {
            println!("scenario passes every oracle");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("FAIL {seed}: {failure}");
            ExitCode::FAILURE
        }
    }
}

fn wire_repro(wire_seed: u64) -> ExitCode {
    let mut wire_rng = StdRng::seed_from_u64(wire_seed);
    match wirefuzz::fuzz_frame_once(&mut wire_rng) {
        Ok(()) => {
            println!("wire iteration {wire_seed} passes");
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("FAIL wire iteration {wire_seed}: {v}");
            ExitCode::FAILURE
        }
    }
}

fn torn_repro(torn_seed: u64) -> ExitCode {
    let net_server = NetServer::bind("127.0.0.1:0", one_shard()).expect("bind fuzz net server");
    let result = run_torn_probe(torn_seed, net_server.local_addr());
    net_server.shutdown();
    match result {
        Ok(()) => {
            println!("torn-frame probe {torn_seed} passes");
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("FAIL torn-frame probe {torn_seed}: {v}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed_string) = &args.repro {
        return repro(seed_string);
    }
    if let Some(wire_seed) = args.wire {
        return wire_repro(wire_seed);
    }
    if let Some(torn_seed) = args.torn {
        return torn_repro(torn_seed);
    }
    smoke(args.seconds, args.seed)
}
