//! Differential oracles: every detection path must produce the same
//! bits.
//!
//! The stack grew nine independent ways to compute one
//! [`AdaptiveStep`] stream — direct [`AdaptiveDetector`] stepping, the
//! runtime engine, the serve wire path, [`ReconnectingClient`] resume
//! through transport failure, snapshot/restore into a fresh engine,
//! the readiness-based `awsad-net` server with its sharded
//! engines and incremental decoder, the `awsad-cluster` router
//! streaming across a 3-shard consistent-hash ring with its primary
//! killed mid-stream, the cross-session SoA batch path that
//! gathers co-pending ticks from *many* sessions and steps them as
//! vectorized lane groups, and the **recalibration** path
//! ([`check_recalibrate_path`]) that swaps a drift scenario's plant
//! model mid-stream — in place, over the wire, across
//! snapshot/restore, and through cluster failover — and demands the
//! post-swap stream stay bit-identical. Floats travel the wire as their
//! IEEE-754 bit patterns and every state copy is bit-exact, so the
//! streams must be **equal**, not approximately equal. The oracles
//! here run one generated [`Scenario`] through each path and diff the
//! streams; any mismatch is reported with the scenario's seed string
//! so the exact episode replays from one line. The six-path check
//! additionally re-encodes both servers' outcome streams and demands
//! the wire images themselves be bit-identical.
//!
//! Alongside the stream oracles sit the estimator self-checks: the
//! precomputed-box deadline walk against the seed-formula
//! [`DeadlineEstimator::reference_deadline`], exact-cache
//! transparency, and quantized-cache conservatism (a quantized answer
//! may be *earlier* than the exact deadline, never later).

use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

use awsad_cluster::LocalCluster;
use awsad_core::{AdaptiveDetector, AdaptiveStep, DataLogger};
use awsad_linalg::Vector;
use awsad_reach::{CacheConfig, Deadline, DeadlineCache, DeadlineEstimator};
use awsad_runtime::{DetectionEngine, EngineConfig, RuntimeMetrics, Tick, TickOutcome};
use awsad_serve::client::Client;
use awsad_serve::reconnect::{ReconnectingClient, RetryPolicy};
use awsad_serve::server::ServerConfig;
use awsad_serve::wire::{Frame, WireOutcome, WireTick};

use crate::proxy::{FaultPlan, FaultProxy, ReplyFault};
use crate::scenario::Scenario;

/// A differential-oracle violation: which path disagreed, on what,
/// and the seed string that replays the episode.
#[derive(Debug, Clone)]
pub struct OracleError {
    /// Seed string of the failing scenario.
    pub seed: String,
    /// The path or check that diverged.
    pub path: &'static str,
    /// What exactly disagreed.
    pub detail: String,
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "oracle violation [{}] on {}: {}",
            self.path, self.seed, self.detail
        )
    }
}

impl std::error::Error for OracleError {}

impl OracleError {
    fn new(scenario: &Scenario, path: &'static str, detail: impl Into<String>) -> OracleError {
        OracleError {
            seed: scenario.seed.to_string(),
            path,
            detail: detail.into(),
        }
    }
}

fn tick_of(wire: &WireTick) -> Tick {
    Tick {
        estimate: Vector::from_slice(&wire.estimate),
        input: Vector::from_slice(&wire.input),
    }
}

/// Path 1 — direct stepping: record each tick, step the detector.
/// With a non-empty `degraded` set, those ticks take
/// [`AdaptiveDetector::step_degraded`] — the reference the engine's
/// degrade path must reproduce.
pub fn direct_steps_with(
    scenario: &Scenario,
    is_degraded: impl FnMut(usize) -> bool,
) -> Vec<AdaptiveStep> {
    let (logger, detector) = scenario.parts();
    direct_steps_from(scenario, logger, detector, is_degraded)
}

/// Path 1 over caller-supplied parts: the same record/step walk, but
/// on a logger/detector pair the caller may have modified (the batch
/// oracle swaps in a quantized deadline cache to force the engine's
/// scalar fallback — the reference must run the *same* detector).
pub fn direct_steps_from(
    scenario: &Scenario,
    mut logger: DataLogger,
    mut detector: AdaptiveDetector,
    mut is_degraded: impl FnMut(usize) -> bool,
) -> Vec<AdaptiveStep> {
    scenario
        .trace
        .iter()
        .enumerate()
        .map(|(i, wire)| {
            logger.record(
                Vector::from_slice(&wire.estimate),
                Vector::from_slice(&wire.input),
            );
            if is_degraded(i) {
                detector.step_degraded(&logger)
            } else {
                detector.step(&logger)
            }
        })
        .collect()
}

/// Path 1 with no degraded ticks — the canonical reference stream.
pub fn direct_steps(scenario: &Scenario) -> Vec<AdaptiveStep> {
    direct_steps_with(scenario, |_| false)
}

fn collect_outcomes(
    scenario: &Scenario,
    path: &'static str,
    outcomes: &std::sync::mpsc::Receiver<TickOutcome>,
    expect_degraded: Option<&mut dyn FnMut(usize) -> bool>,
) -> Result<Vec<AdaptiveStep>, OracleError> {
    let mut steps = Vec::new();
    let mut degraded_of = expect_degraded;
    for (i, outcome) in outcomes.try_iter().enumerate() {
        if outcome.seq != i as u64 {
            return Err(OracleError::new(
                scenario,
                path,
                format!("seq discontinuity at {i}: got {}", outcome.seq),
            ));
        }
        let want_degraded = degraded_of.as_mut().is_some_and(|f| f(i));
        if outcome.degraded != want_degraded {
            return Err(OracleError::new(
                scenario,
                path,
                format!(
                    "tick {i}: degraded flag {} (expected {})",
                    outcome.degraded, want_degraded
                ),
            ));
        }
        steps.push(outcome.step);
    }
    Ok(steps)
}

/// Path 2 — the runtime engine. Ticks for which `is_degraded` holds
/// are injected via `submit_degraded` so the overload pattern is
/// deterministic.
pub fn engine_steps_with(
    scenario: &Scenario,
    config: EngineConfig,
    mut is_degraded: impl FnMut(usize) -> bool,
) -> Result<Vec<AdaptiveStep>, OracleError> {
    let (logger, detector) = scenario.parts();
    let engine = DetectionEngine::new(config);
    let (session, outcomes) = engine.add_session(logger, detector);
    for (i, wire) in scenario.trace.iter().enumerate() {
        let result = if is_degraded(i) {
            session.submit_degraded(tick_of(wire))
        } else {
            session.submit(tick_of(wire))
        };
        result.map_err(|e| OracleError::new(scenario, "engine", format!("submit: {e:?}")))?;
    }
    engine.drain();
    collect_outcomes(scenario, "engine", &outcomes, Some(&mut is_degraded))
}

/// Path 2 with default engine configuration and no degraded ticks.
pub fn engine_steps(scenario: &Scenario) -> Result<Vec<AdaptiveStep>, OracleError> {
    engine_steps_with(scenario, EngineConfig::default(), |_| false)
}

/// Path 5 — snapshot/restore: run to `cut`, snapshot, restore into a
/// **fresh** engine, continue; returns the stitched stream.
pub fn snapshot_restore_steps(
    scenario: &Scenario,
    cut: usize,
) -> Result<Vec<AdaptiveStep>, OracleError> {
    let cut = cut.min(scenario.trace.len());
    let (logger, detector) = scenario.parts();
    let engine_a = DetectionEngine::new(EngineConfig::default());
    let (session_a, outcomes_a) = engine_a.add_session(logger, detector);
    for wire in &scenario.trace[..cut] {
        session_a
            .submit(tick_of(wire))
            .map_err(|e| OracleError::new(scenario, "snapshot", format!("submit: {e:?}")))?;
    }
    // snapshot() waits for the queue to drain, so it is the clean cut.
    let snap = session_a.snapshot();
    let mut steps = collect_outcomes(scenario, "snapshot", &outcomes_a, None)?;

    let (logger, detector) = scenario.parts();
    let engine_b = DetectionEngine::new(EngineConfig::default());
    let (session_b, outcomes_b) = engine_b
        .restore_session(logger, detector, &snap)
        .map_err(|e| OracleError::new(scenario, "snapshot", format!("restore: {e}")))?;
    for wire in &scenario.trace[cut..] {
        session_b
            .submit(tick_of(wire))
            .map_err(|e| OracleError::new(scenario, "snapshot", format!("submit: {e:?}")))?;
    }
    engine_b.drain();
    let mut tail = Vec::new();
    for (i, outcome) in outcomes_b.try_iter().enumerate() {
        let seq = (cut + i) as u64;
        if outcome.seq != seq {
            return Err(OracleError::new(
                scenario,
                "snapshot",
                format!("resumed seq discontinuity: got {}, want {seq}", outcome.seq),
            ));
        }
        tail.push(outcome.step);
    }
    steps.append(&mut tail);
    Ok(steps)
}

fn wire_steps(
    scenario: &Scenario,
    path: &'static str,
    outcomes: &[WireOutcome],
) -> Result<Vec<AdaptiveStep>, OracleError> {
    let mut steps = Vec::new();
    for (i, o) in outcomes.iter().enumerate() {
        if o.seq != i as u64 {
            return Err(OracleError::new(
                scenario,
                path,
                format!("seq discontinuity at {i}: got {}", o.seq),
            ));
        }
        if o.degraded {
            return Err(OracleError::new(
                scenario,
                path,
                format!("tick {i} unexpectedly degraded"),
            ));
        }
        steps.push(o.to_step());
    }
    Ok(steps)
}

/// Streams the scenario through a live server with the stock blocking
/// [`Client`] and returns the raw wire outcomes. The transport cannot
/// tell which server implementation answers, which is the point: this
/// is the shared body of the serve (path 3) and net (path 6) oracles.
fn remote_outcomes(
    scenario: &Scenario,
    addr: SocketAddr,
    path: &'static str,
) -> Result<Vec<WireOutcome>, OracleError> {
    let spec = scenario
        .spec
        .as_ref()
        .expect("remote paths need a registry scenario");
    let fail = |detail: String| OracleError::new(scenario, path, detail);
    let mut client = Client::connect(addr).map_err(|e| fail(format!("connect: {e}")))?;
    let session = client
        .open_session(spec)
        .map_err(|e| fail(format!("open: {e}")))?;
    let mut outcomes = Vec::new();
    for chunk in scenario.trace.chunks(16) {
        outcomes.extend(
            client
                .tick_batch(session.id, chunk)
                .map_err(|e| fail(format!("tick_batch: {e}")))?,
        );
    }
    client
        .close_session(session.id)
        .map_err(|e| fail(format!("close: {e}")))?;
    Ok(outcomes)
}

/// Path 3 — the serve wire path: open a session on a live server,
/// stream the trace in batches, close. `addr` is a running
/// [`awsad_serve::server::Server`]'s address.
pub fn serve_steps(
    scenario: &Scenario,
    addr: SocketAddr,
) -> Result<Vec<AdaptiveStep>, OracleError> {
    let outcomes = remote_outcomes(scenario, addr, "serve")?;
    wire_steps(scenario, "serve", &outcomes)
}

/// Path 6 — the readiness server: the identical client code against a
/// running `awsad_net::NetServer`'s address. The stream crosses the
/// event loop's incremental decoder and a shard-owned engine instead
/// of a connection thread and the shared engine; the bits must not
/// care.
pub fn net_steps(scenario: &Scenario, addr: SocketAddr) -> Result<Vec<AdaptiveStep>, OracleError> {
    let outcomes = remote_outcomes(scenario, addr, "net")?;
    wire_steps(scenario, "net", &outcomes)
}

/// Path 4 — reconnect/resume: stream through a fault-injection proxy
/// that swallows one mid-stream reply and severs the connection; the
/// [`ReconnectingClient`] must checkpoint, reconnect, restore, and
/// replay so the caller-visible stream is identical anyway.
pub fn resume_steps(
    scenario: &Scenario,
    addr: SocketAddr,
) -> Result<Vec<AdaptiveStep>, OracleError> {
    let spec = scenario
        .spec
        .as_ref()
        .expect("resume path needs a registry scenario");
    let fail = |detail: String| OracleError::new(scenario, "resume", detail);
    // Reply order on connection 1: hello(0), open(1), batch 1(2),
    // checkpoint(3), batch 2(4) — swallow batch 2's reply, forcing a
    // restore-and-replay on connection 2 (unplanned → clean).
    let proxy = FaultProxy::start(addr, vec![FaultPlan::after(4, ReplyFault::Drop)]);
    let policy = RetryPolicy {
        max_retries: 20,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        seed: scenario.seed.seed | 1,
    };
    let mut rc = ReconnectingClient::connect(proxy.addr(), policy)
        .map_err(|e| fail(format!("connect: {e}")))?;
    let session = rc
        .open_session(spec)
        .map_err(|e| fail(format!("open: {e}")))?;
    let chunk = (scenario.trace.len() / 4).max(1);
    let mut outcomes = Vec::new();
    for batch in scenario.trace.chunks(chunk) {
        outcomes.extend(
            rc.tick_batch(session.id, batch)
                .map_err(|e| fail(format!("tick_batch: {e}")))?,
        );
    }
    rc.close_session(session.id)
        .map_err(|e| fail(format!("close: {e}")))?;
    if scenario.trace.len() >= 2 * chunk && rc.reconnects() == 0 {
        return Err(fail("fault plan never forced a reconnect".into()));
    }
    wire_steps(scenario, "resume", &outcomes)
}

fn diff_streams(
    scenario: &Scenario,
    path: &'static str,
    got: &[AdaptiveStep],
    want: &[AdaptiveStep],
) -> Result<(), OracleError> {
    if got.len() != want.len() {
        return Err(OracleError::new(
            scenario,
            path,
            format!("stream length {} != reference {}", got.len(), want.len()),
        ));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(OracleError::new(
                scenario,
                path,
                format!("tick {i} diverged: got {g:?}, reference {w:?}"),
            ));
        }
    }
    Ok(())
}

/// Runs the local paths — direct, engine (Block), engine without the
/// scenario's deadline cache, snapshot/restore at a seed-derived cut —
/// and asserts all streams bit-identical.
pub fn check_local_paths(scenario: &Scenario) -> Result<(), OracleError> {
    let reference = direct_steps(scenario);
    diff_streams(scenario, "engine", &engine_steps(scenario)?, &reference)?;
    // The exact deadline cache must be decision-transparent: stripping
    // it from the detector may not change a single output bit.
    if scenario.cache_capacity > 0 {
        let stripped = {
            let (logger, mut detector) = scenario.parts();
            detector.take_deadline_cache();
            let engine = DetectionEngine::new(EngineConfig::default());
            let (session, outcomes) = engine.add_session(logger, detector);
            for wire in &scenario.trace {
                session.submit(tick_of(wire)).map_err(|e| {
                    OracleError::new(scenario, "engine-nocache", format!("submit: {e:?}"))
                })?;
            }
            engine.drain();
            collect_outcomes(scenario, "engine-nocache", &outcomes, None)?
        };
        diff_streams(scenario, "engine-nocache", &stripped, &reference)?;
    }
    let cut = if scenario.trace.is_empty() {
        0
    } else {
        (scenario.seed.seed as usize) % scenario.trace.len()
    };
    diff_streams(
        scenario,
        "snapshot",
        &snapshot_restore_steps(scenario, cut)?,
        &reference,
    )?;
    Ok(())
}

/// Runs **all five** paths against one registry scenario and asserts
/// every stream bit-identical to direct stepping. `addr` is a running
/// server (shared across scenarios — each check opens and closes its
/// own sessions).
pub fn check_five_paths(scenario: &Scenario, addr: SocketAddr) -> Result<(), OracleError> {
    check_local_paths(scenario)?;
    let reference = direct_steps(scenario);
    diff_streams(scenario, "serve", &serve_steps(scenario, addr)?, &reference)?;
    diff_streams(
        scenario,
        "resume",
        &resume_steps(scenario, addr)?,
        &reference,
    )?;
    Ok(())
}

/// Runs **all six** paths: the five of [`check_five_paths`] against
/// `serve_addr` (a blocking server), plus the readiness server at
/// `net_addr`. Beyond stream equality, the serve and net outcome
/// streams are re-encoded as `TickOutcomes` wire frames which must be
/// **bit-identical** — the two servers may not differ even in float
/// bit patterns or field ordering on the wire.
pub fn check_six_paths(
    scenario: &Scenario,
    serve_addr: SocketAddr,
    net_addr: SocketAddr,
) -> Result<(), OracleError> {
    check_local_paths(scenario)?;
    let reference = direct_steps(scenario);
    let serve_outcomes = remote_outcomes(scenario, serve_addr, "serve")?;
    diff_streams(
        scenario,
        "serve",
        &wire_steps(scenario, "serve", &serve_outcomes)?,
        &reference,
    )?;
    diff_streams(
        scenario,
        "resume",
        &resume_steps(scenario, serve_addr)?,
        &reference,
    )?;
    let net_outcomes = remote_outcomes(scenario, net_addr, "net")?;
    diff_streams(
        scenario,
        "net",
        &wire_steps(scenario, "net", &net_outcomes)?,
        &reference,
    )?;
    // Wire-image bit-exactness: session ids differ between servers
    // (shard-striped vs engine-assigned), so compare the re-encoded
    // outcome payloads under a fixed session id.
    let serve_image = Frame::TickOutcomes {
        session: 0,
        outcomes: serve_outcomes,
    }
    .encode();
    let net_image = Frame::TickOutcomes {
        session: 0,
        outcomes: net_outcomes,
    }
    .encode();
    if serve_image != net_image {
        let at = serve_image
            .iter()
            .zip(&net_image)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| serve_image.len().min(net_image.len()));
        return Err(OracleError::new(
            scenario,
            "net",
            format!(
                "re-encoded wire images differ between servers: {} vs {} bytes, first divergence at byte {at}",
                serve_image.len(),
                net_image.len()
            ),
        ));
    }
    Ok(())
}

/// Path 7 — the cluster router: the scenario streams through a fresh
/// 3-shard [`LocalCluster`] and the session's primary is killed with
/// no warning halfway through. The router's failover (promote the
/// ring successor's replica, or restore the client checkpoint, then
/// replay the interrupted batch) must leave the caller-visible stream
/// bit-identical to direct stepping.
pub fn cluster_steps(scenario: &Scenario) -> Result<Vec<AdaptiveStep>, OracleError> {
    let spec = scenario
        .spec
        .as_ref()
        .expect("cluster path needs a registry scenario");
    let fail = |detail: String| OracleError::new(scenario, "cluster", detail);
    let mut cluster = LocalCluster::launch(3, ServerConfig::default())
        .map_err(|e| fail(format!("launch: {e}")))?;
    let mut client = cluster.client();
    let session = client
        .open_session(spec)
        .map_err(|e| fail(format!("open: {e}")))?;
    let chunk = (scenario.trace.len() / 4).max(1);
    let mut outcomes = Vec::new();
    let mut killed = false;
    for (i, batch) in scenario.trace.chunks(chunk).enumerate() {
        // Kill the primary after the second batch; a seed-derived
        // coin decides whether in-flight replicas get to land first,
        // so both recovery paths (promote the replica / restore the
        // checkpoint) stay exercised across the scenario corpus.
        if i == 2 && !killed {
            killed = true;
            let primary = client
                .primary_of(session.key)
                .ok_or_else(|| fail("session lost its route".into()))?;
            if scenario.seed.seed & 1 == 0 {
                if let Some(shard) = cluster.shard(primary) {
                    shard.replicator.flush(Duration::from_secs(5));
                }
            }
            cluster.kill(primary);
        }
        outcomes.extend(
            client
                .tick_batch(session.key, batch)
                .map_err(|e| fail(format!("tick_batch: {e}")))?,
        );
    }
    if killed && client.failovers() == 0 {
        return Err(fail("the kill never forced a failover".into()));
    }
    client
        .close_session(session.key)
        .map_err(|e| fail(format!("close: {e}")))?;
    cluster.shutdown();
    wire_steps(scenario, "cluster", &outcomes)
}

/// Runs **all seven** paths: the six of [`check_six_paths`], plus the
/// cluster router with a mid-stream shard kill. The cluster launches
/// its own 3-shard ring per scenario — the kill is destructive, so
/// the servers cannot be shared the way `serve_addr`/`net_addr` are.
pub fn check_seven_paths(
    scenario: &Scenario,
    serve_addr: SocketAddr,
    net_addr: SocketAddr,
) -> Result<(), OracleError> {
    check_six_paths(scenario, serve_addr, net_addr)?;
    diff_streams(
        scenario,
        "cluster",
        &cluster_steps(scenario)?,
        &direct_steps(scenario),
    )?;
    Ok(())
}

/// Seed-derived degraded pattern for the batch-path oracle: which
/// ticks of a scenario enter via `submit_degraded`. Deterministic in
/// the scenario seed so the direct reference replays it exactly.
pub fn batch_degraded(scenario: &Scenario, i: usize) -> bool {
    (i as u64)
        .wrapping_add(scenario.seed.seed)
        .is_multiple_of(7)
}

/// Which chunk members the batch oracle rebuilds with a *quantized*
/// deadline cache. Quantized caches are decision-relevant (their
/// deadlines may be earlier than exact), so the engine refuses to
/// batch them — these sessions must take the scalar fallback inside
/// the mega-drain, and their reference stream is recomputed with the
/// identical quantized detector.
pub fn batch_forces_fallback(index: usize) -> bool {
    index % 4 == 3
}

fn batch_parts(scenario: &Scenario, index: usize) -> (DataLogger, AdaptiveDetector) {
    let (logger, mut detector) = scenario.parts();
    if batch_forces_fallback(index) {
        detector.set_deadline_cache(DeadlineCache::new(CacheConfig::quantized(0.5, 64)));
    }
    (logger, detector)
}

/// Path 8 — cross-session SoA batch stepping: the whole *chunk* of
/// scenarios shares one engine running with `cross_session_batch`
/// enabled, one session per scenario. Ticks are submitted
/// round-robin (position `p` of every scenario before position `p+1`
/// of any), so the mega-drain's gather keeps finding co-pending ticks
/// across sessions and steps same-geometry sessions as vectorized
/// lane groups. Sessions at [`batch_forces_fallback`] indices carry a
/// quantized deadline cache and must route through the scalar
/// fallback instead. Returns one step stream per scenario plus the
/// engine's final metrics so callers can assert both paths actually
/// ran.
pub fn batch_engine_steps(
    scenarios: &[Scenario],
) -> Result<(Vec<Vec<AdaptiveStep>>, RuntimeMetrics), OracleError> {
    let engine = DetectionEngine::new(EngineConfig {
        workers: 1,
        cross_session_batch: true,
        drain_batch: 8,
        ..EngineConfig::default()
    });
    let sessions: Vec<_> = scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let (logger, detector) = batch_parts(s, i);
            engine.add_session(logger, detector)
        })
        .collect();
    let longest = scenarios.iter().map(|s| s.trace.len()).max().unwrap_or(0);
    for p in 0..longest {
        for (scenario, (session, _)) in scenarios.iter().zip(&sessions) {
            let Some(wire) = scenario.trace.get(p) else {
                continue;
            };
            let result = if batch_degraded(scenario, p) {
                session.submit_degraded(tick_of(wire))
            } else {
                session.submit(tick_of(wire))
            };
            result.map_err(|e| OracleError::new(scenario, "batch", format!("submit: {e:?}")))?;
        }
    }
    engine.drain();
    let mut streams = Vec::with_capacity(scenarios.len());
    for (scenario, (_, outcomes)) in scenarios.iter().zip(&sessions) {
        let mut expected = |i: usize| batch_degraded(scenario, i);
        streams.push(collect_outcomes(
            scenario,
            "batch",
            outcomes,
            Some(&mut expected),
        )?);
    }
    Ok((streams, engine.metrics()))
}

/// Runs path 8 over a chunk of scenarios and asserts every session's
/// stream bit-identical to direct stepping of the *same* detector
/// (quantized-cache members included), and — via the engine's own
/// counters — that the vectorized path and, when the chunk is large
/// enough to contain a fallback member, the scalar fallback both
/// actually executed.
pub fn check_batch_path(scenarios: &[Scenario]) -> Result<(), OracleError> {
    if scenarios.is_empty() {
        return Ok(());
    }
    let (streams, metrics) = batch_engine_steps(scenarios)?;
    for (i, (scenario, got)) in scenarios.iter().zip(&streams).enumerate() {
        let (logger, detector) = batch_parts(scenario, i);
        let reference =
            direct_steps_from(scenario, logger, detector, |p| batch_degraded(scenario, p));
        diff_streams(scenario, "batch", got, &reference)?;
    }
    let first = &scenarios[0];
    let any_batched = scenarios
        .iter()
        .enumerate()
        .any(|(i, s)| !batch_forces_fallback(i) && !s.trace.is_empty());
    if any_batched && metrics.batch_ticks == 0 {
        return Err(OracleError::new(
            first,
            "batch",
            "no tick took the vectorized path (batch_ticks == 0)",
        ));
    }
    let any_fallback = scenarios
        .iter()
        .enumerate()
        .any(|(i, s)| batch_forces_fallback(i) && !s.trace.is_empty());
    if any_fallback && metrics.scalar_fallback_ticks == 0 {
        return Err(OracleError::new(
            first,
            "batch",
            "no quantized-cache session took the scalar fallback (scalar_fallback_ticks == 0)",
        ));
    }
    Ok(())
}

/// The boundary every path applies a drift scenario's recalibration
/// at: the precomputed tick index, clamped into the actual trace (a
/// `len=` override may shorten it).
fn recal_boundary(scenario: &Scenario) -> usize {
    scenario
        .recalibration
        .as_ref()
        .expect("recalibrate path needs a drift scenario")
        .at
        .min(scenario.trace.len())
}

/// Path 9 reference — direct stepping with the scenario's
/// recalibration applied in place at its precomputed boundary: ticks
/// `0..at` step under the session's original model, then
/// [`AdaptiveDetector::recalibrate`] swaps in the drifted plant, and
/// ticks `at..` step under it. History, windows, and thresholds
/// survive the swap; every other path must reproduce this stream
/// bit for bit.
pub fn direct_recalibrated_steps(scenario: &Scenario) -> Vec<AdaptiveStep> {
    let recal = scenario
        .recalibration
        .as_ref()
        .expect("recalibrate path needs a drift scenario");
    let at = recal_boundary(scenario);
    let (mut logger, mut detector) = scenario.parts();
    let mut steps = Vec::with_capacity(scenario.trace.len());
    for (i, wire) in scenario.trace.iter().enumerate() {
        if i == at {
            detector
                .recalibrate(&mut logger, &recal.a, &recal.b)
                .expect("precomputed recalibration must be valid");
        }
        logger.record(
            Vector::from_slice(&wire.estimate),
            Vector::from_slice(&wire.input),
        );
        steps.push(detector.step(&logger));
    }
    steps
}

/// Path 9, engine leg — the session lives in a cross-session-batch
/// engine and [`awsad_runtime::SessionHandle::recalibrate`] swaps the
/// model mid-stream: the call waits out in-flight ticks, mutates the
/// session in place, and regroups its batch key, without dropping or
/// reordering a single tick.
pub fn recal_engine_steps(scenario: &Scenario) -> Result<Vec<AdaptiveStep>, OracleError> {
    let recal = scenario.recalibration.as_ref().expect("drift scenario");
    let at = recal_boundary(scenario);
    let (logger, detector) = scenario.parts();
    let engine = DetectionEngine::new(EngineConfig {
        workers: 1,
        cross_session_batch: true,
        drain_batch: 8,
        ..EngineConfig::default()
    });
    let (session, outcomes) = engine.add_session(logger, detector);
    let fail = |detail: String| OracleError::new(scenario, "recal-batch", detail);
    for wire in &scenario.trace[..at] {
        session
            .submit(tick_of(wire))
            .map_err(|e| fail(format!("submit: {e:?}")))?;
    }
    session
        .recalibrate(&recal.a, &recal.b)
        .map_err(|e| fail(format!("recalibrate: {e}")))?;
    for wire in &scenario.trace[at..] {
        session
            .submit(tick_of(wire))
            .map_err(|e| fail(format!("submit: {e:?}")))?;
    }
    engine.drain();
    collect_outcomes(scenario, "recal-batch", &outcomes, None)
}

/// Path 9, snapshot leg — recalibrate mid-stream, snapshot at
/// `cut ≥ at` (so the snapshot carries the recalibration block),
/// restore into a **fresh** engine whose parts were built from the
/// *original* spec, and continue: the restore must rebuild the
/// drifted estimator and deadline cache from the snapshot alone.
pub fn recal_snapshot_steps(
    scenario: &Scenario,
    cut: usize,
) -> Result<Vec<AdaptiveStep>, OracleError> {
    let recal = scenario.recalibration.as_ref().expect("drift scenario");
    let at = recal_boundary(scenario);
    let cut = cut.clamp(at, scenario.trace.len());
    let fail = |detail: String| OracleError::new(scenario, "recal-snapshot", detail);

    let (logger, detector) = scenario.parts();
    let engine_a = DetectionEngine::new(EngineConfig::default());
    let (session_a, outcomes_a) = engine_a.add_session(logger, detector);
    for wire in &scenario.trace[..at] {
        session_a
            .submit(tick_of(wire))
            .map_err(|e| fail(format!("submit: {e:?}")))?;
    }
    session_a
        .recalibrate(&recal.a, &recal.b)
        .map_err(|e| fail(format!("recalibrate: {e}")))?;
    for wire in &scenario.trace[at..cut] {
        session_a
            .submit(tick_of(wire))
            .map_err(|e| fail(format!("submit: {e:?}")))?;
    }
    let snap = session_a.snapshot();
    if snap.state.recalibration.is_none() {
        return Err(fail("snapshot lost the recalibration block".into()));
    }
    let mut steps = collect_outcomes(scenario, "recal-snapshot", &outcomes_a, None)?;

    let (logger, detector) = scenario.parts();
    let engine_b = DetectionEngine::new(EngineConfig::default());
    let (session_b, outcomes_b) = engine_b
        .restore_session(logger, detector, &snap)
        .map_err(|e| fail(format!("restore: {e}")))?;
    for wire in &scenario.trace[cut..] {
        session_b
            .submit(tick_of(wire))
            .map_err(|e| fail(format!("submit: {e:?}")))?;
    }
    engine_b.drain();
    for (i, outcome) in outcomes_b.try_iter().enumerate() {
        let seq = (cut + i) as u64;
        if outcome.seq != seq {
            return Err(fail(format!(
                "resumed seq discontinuity: got {}, want {seq}",
                outcome.seq
            )));
        }
        steps.push(outcome.step);
    }
    Ok(steps)
}

/// Path 9, wire leg — the recalibration travels as a `Recalibrate`
/// frame between two tick waves on a live server (blocking or
/// readiness; the client cannot tell). The ack's recalibration count
/// must be exactly 1 — the session was fresh.
pub fn recal_remote_steps(
    scenario: &Scenario,
    addr: SocketAddr,
    path: &'static str,
) -> Result<Vec<AdaptiveStep>, OracleError> {
    let recal = scenario.recalibration.as_ref().expect("drift scenario");
    let at = recal_boundary(scenario);
    let spec = scenario
        .spec
        .as_ref()
        .expect("wire paths need a wire-capable scenario");
    let fail = |detail: String| OracleError::new(scenario, path, detail);
    let mut client = Client::connect(addr).map_err(|e| fail(format!("connect: {e}")))?;
    let session = client
        .open_session(spec)
        .map_err(|e| fail(format!("open: {e}")))?;
    let mut outcomes = Vec::new();
    for chunk in scenario.trace[..at].chunks(16) {
        outcomes.extend(
            client
                .tick_batch(session.id, chunk)
                .map_err(|e| fail(format!("tick_batch: {e}")))?,
        );
    }
    let (n, m) = recal.b.shape();
    let count = client
        .recalibrate(
            session.id,
            n as u32,
            m as u32,
            recal.a.as_slice(),
            recal.b.as_slice(),
        )
        .map_err(|e| fail(format!("recalibrate: {e}")))?;
    if count != 1 {
        return Err(fail(format!("fresh session acked recalibration #{count}")));
    }
    for chunk in scenario.trace[at..].chunks(16) {
        outcomes.extend(
            client
                .tick_batch(session.id, chunk)
                .map_err(|e| fail(format!("tick_batch: {e}")))?,
        );
    }
    client
        .close_session(session.id)
        .map_err(|e| fail(format!("close: {e}")))?;
    wire_steps(scenario, path, &outcomes)
}

/// Path 9, cluster leg — recalibrate through the router, then kill
/// the primary with no warning: the failover must resume the session
/// **with the drifted model**, from either the replica (replication
/// runs on recalibration too) or the client checkpoint (refreshed by
/// [`awsad_cluster::ClusterClient::recalibrate`]). A seed-derived
/// coin decides whether in-flight replicas land first, keeping both
/// recovery paths exercised across the corpus.
pub fn recal_cluster_steps(scenario: &Scenario) -> Result<Vec<AdaptiveStep>, OracleError> {
    let recal = scenario.recalibration.as_ref().expect("drift scenario");
    let at = recal_boundary(scenario);
    let spec = scenario
        .spec
        .as_ref()
        .expect("cluster path needs a wire-capable scenario");
    let fail = |detail: String| OracleError::new(scenario, "recal-cluster", detail);
    let mut cluster = LocalCluster::launch(3, ServerConfig::default())
        .map_err(|e| fail(format!("launch: {e}")))?;
    let mut client = cluster.client();
    let session = client
        .open_session(spec)
        .map_err(|e| fail(format!("open: {e}")))?;
    let chunk = (scenario.trace.len() / 4).max(1);
    let mut outcomes = Vec::new();
    for batch in scenario.trace[..at].chunks(chunk) {
        outcomes.extend(
            client
                .tick_batch(session.key, batch)
                .map_err(|e| fail(format!("tick_batch: {e}")))?,
        );
    }
    let (n, m) = recal.b.shape();
    client
        .recalibrate(
            session.key,
            n as u32,
            m as u32,
            recal.a.as_slice(),
            recal.b.as_slice(),
        )
        .map_err(|e| fail(format!("recalibrate: {e}")))?;
    if at < scenario.trace.len() {
        let primary = client
            .primary_of(session.key)
            .ok_or_else(|| fail("session lost its route".into()))?;
        if scenario.seed.seed & 1 == 0 {
            if let Some(shard) = cluster.shard(primary) {
                shard.replicator.flush(Duration::from_secs(5));
            }
        }
        cluster.kill(primary);
        for batch in scenario.trace[at..].chunks(chunk) {
            outcomes.extend(
                client
                    .tick_batch(session.key, batch)
                    .map_err(|e| fail(format!("tick_batch: {e}")))?,
            );
        }
        if client.failovers() == 0 {
            return Err(fail(
                "the post-recalibration kill never forced a failover".into(),
            ));
        }
    }
    client
        .close_session(session.key)
        .map_err(|e| fail(format!("close: {e}")))?;
    cluster.shutdown();
    wire_steps(scenario, "recal-cluster", &outcomes)
}

/// Runs the **ninth** differential-oracle path over one drift
/// scenario: direct in-place recalibration is the reference, and the
/// batch engine, snapshot/restore across the recalibration, the wire
/// op against both server implementations, and cluster failover after
/// the swap must all reproduce it bit for bit.
pub fn check_recalibrate_path(
    scenario: &Scenario,
    serve_addr: SocketAddr,
    net_addr: SocketAddr,
) -> Result<(), OracleError> {
    let reference = direct_recalibrated_steps(scenario);
    diff_streams(
        scenario,
        "recal-batch",
        &recal_engine_steps(scenario)?,
        &reference,
    )?;
    let at = recal_boundary(scenario);
    let span = scenario.trace.len() - at + 1;
    let cut = at + (scenario.seed.seed as usize) % span;
    diff_streams(
        scenario,
        "recal-snapshot",
        &recal_snapshot_steps(scenario, cut)?,
        &reference,
    )?;
    diff_streams(
        scenario,
        "recal-serve",
        &recal_remote_steps(scenario, serve_addr, "recal-serve")?,
        &reference,
    )?;
    diff_streams(
        scenario,
        "recal-net",
        &recal_remote_steps(scenario, net_addr, "recal-net")?,
        &reference,
    )?;
    diff_streams(
        scenario,
        "recal-cluster",
        &recal_cluster_steps(scenario)?,
        &reference,
    )?;
    Ok(())
}

fn deadline_not_later(conservative: Deadline, exact: Deadline) -> bool {
    match (conservative.steps(), exact.steps()) {
        (None, None) => true,
        (None, Some(_)) => false, // claims more time than the exact walk
        (Some(_), None) => true,  // earlier than "beyond" is fine
        (Some(c), Some(e)) => c <= e,
    }
}

/// Estimator self-checks on the scenario's own trace states:
///
/// * the precomputed-box walk ([`DeadlineEstimator::checked_deadline`])
///   equals the seed-formula [`DeadlineEstimator::reference_deadline`];
/// * an exact [`DeadlineCache`] is transparent (same deadline on miss
///   and on hit);
/// * a quantized cache is conservative — never later than exact.
pub fn check_estimator(scenario: &Scenario) -> Result<(), OracleError> {
    let estimator: DeadlineEstimator = scenario.estimator();
    let r0 = scenario.initial_radius;
    let mut exact_cache = DeadlineCache::new(CacheConfig::exact(256));
    let quantum = scenario
        .threshold
        .as_slice()
        .iter()
        .fold(f64::MAX, |a, &b| a.min(b))
        .max(1e-6);
    let mut quant_cache = DeadlineCache::new(CacheConfig::quantized(quantum, 256));
    let fail = |detail: String| OracleError::new(scenario, "estimator", detail);

    for wire in scenario.trace.iter().take(16) {
        let x = Vector::from_slice(&wire.estimate);
        let walked = estimator
            .checked_deadline(&x, r0)
            .map_err(|e| fail(format!("checked_deadline: {e}")))?;
        let reference = estimator
            .reference_deadline(&x, r0)
            .map_err(|e| fail(format!("reference_deadline: {e}")))?;
        if walked != reference {
            return Err(fail(format!(
                "precomputed walk {walked:?} != reference formula {reference:?} at {x:?}"
            )));
        }
        for _ in 0..2 {
            // First pass misses, second hits; both must equal the walk.
            let cached = exact_cache
                .deadline(&estimator, &x, r0)
                .map_err(|e| fail(format!("exact cache: {e}")))?;
            if cached != walked {
                return Err(fail(format!(
                    "exact cache {cached:?} != walk {walked:?} at {x:?}"
                )));
            }
        }
        let quantized = quant_cache
            .deadline(&estimator, &x, r0)
            .map_err(|e| fail(format!("quantized cache: {e}")))?;
        if !deadline_not_later(quantized, walked) {
            return Err(fail(format!(
                "quantized cache {quantized:?} is later than exact {walked:?} at {x:?}"
            )));
        }
    }
    Ok(())
}
