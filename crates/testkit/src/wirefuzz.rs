//! A structure-aware fuzzer for the AWSAD wire protocol.
//!
//! Random bytes almost never get past the magic/version header, so
//! the fuzzer starts from **valid** frames — every variant, with
//! hostile float bit patterns and random correlation ids — and then
//! applies protocol-shaped mutations: bit flips, truncations at
//! arbitrary depths, type-byte swaps, header corruption, appended
//! garbage (which doubles as envelope corruption, since a trailing
//! 8 bytes *is* the correlation-id encoding), and count fields
//! rewritten to hostile allocation sizes.
//!
//! Properties asserted, per iteration:
//!
//! * a clean encode→decode→re-encode cycle is **byte-idempotent**
//!   (bit patterns of float specials included — this is equality on
//!   bytes, not on floats, so NaN payloads are covered too);
//! * decoding any mutant never panics, and whatever decodes `Ok` must
//!   re-encode without panicking;
//! * a declared length beyond the receiver's limit is rejected
//!   **before** allocation ([`WireError::FrameTooLarge`]), and a
//!   count field promising more elements than the remaining bytes is
//!   rejected ([`WireError::Truncated`]) instead of allocating.
//!
//! Cross-connection poisoning (a malformed frame on one connection
//! harming another) is checked separately against a live server —
//! see [`check_no_cross_connection_poisoning`]. For the readiness
//! server's incremental decoder there is a sharper variant,
//! [`check_torn_frame_interleaving`]: every request torn into 1–7
//! byte chunks and round-robin interleaved across connections on the
//! same shard, so the decoder is forced to park and resume partial
//! frames for several connections at once while hostile bytes stream
//! in beside them.

use std::io::{Cursor, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};

use awsad_serve::client::Client;
use awsad_serve::wire::{
    read_envelope, Frame, SessionSpec, WireError, WireLatency, WireMetrics, WireOutcome,
    WireRecalibration, WireSessionState, WireTick, DEFAULT_MAX_FRAME_LEN,
};
use rand::rngs::StdRng;
use rand::RngExt as _;

use crate::scenario::Scenario;

/// A wire-fuzz property violation, with enough detail to reproduce.
#[derive(Debug, Clone)]
pub struct FuzzViolation {
    /// Which property broke.
    pub property: &'static str,
    /// Human-readable detail (frame type, mutation, hex around the
    /// failure).
    pub detail: String,
}

impl std::fmt::Display for FuzzViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire-fuzz violation [{}]: {}",
            self.property, self.detail
        )
    }
}

impl std::error::Error for FuzzViolation {}

/// A random f64 biased toward hostile bit patterns: specials and raw
/// bit noise alongside ordinary magnitudes.
fn arbitrary_f64(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..8u32) {
        0 => f64::from_bits(rng.random_range(0..=u64::MAX)),
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => -0.0,
        5 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => rng.random_range(-1e6..=1e6),
    }
}

fn arbitrary_f64s(rng: &mut StdRng, max_len: usize) -> Vec<f64> {
    let len = rng.random_range(0..=max_len);
    (0..len).map(|_| arbitrary_f64(rng)).collect()
}

fn arbitrary_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.random_range(0..=max_len);
    (0..len)
        .map(|_| match rng.random_range(0..4u32) {
            0 => char::from(rng.random_range(b'a'..=b'z')),
            1 => char::from(rng.random_range(b'!'..=b'~')),
            2 => '\u{00e9}',
            _ => '\u{1F980}',
        })
        .collect()
}

fn arbitrary_tick(rng: &mut StdRng) -> WireTick {
    WireTick {
        estimate: arbitrary_f64s(rng, 6),
        input: arbitrary_f64s(rng, 3),
    }
}

fn arbitrary_outcome(rng: &mut StdRng) -> WireOutcome {
    WireOutcome {
        seq: rng.random_range(0..=u64::MAX),
        degraded: rng.random_bool(0.5),
        step: rng.random_range(0..=u64::MAX),
        deadline: if rng.random_bool(0.5) {
            Some(rng.random_range(0..=u64::MAX))
        } else {
            None
        },
        window: rng.random_range(0..=u64::MAX),
        previous_window: rng.random_range(0..=u64::MAX),
        current_alarm: rng.random_bool(0.5),
        complementary_alarms: (0..rng.random_range(0..4usize))
            .map(|_| rng.random_range(0..=u64::MAX))
            .collect(),
    }
}

fn arbitrary_spec(rng: &mut StdRng) -> SessionSpec {
    // The output-map extension is only written when the map is
    // non-empty, and the decoder leaves `output_rows` at 0 for legacy
    // frames — so a round-trippable spec either carries no map at all
    // (rows 0) or a non-empty map with a non-zero row count.
    let (output_rows, output_map) = if rng.random_bool(0.5) {
        (0, Vec::new())
    } else {
        let rows = rng.random_range(1..=3u32);
        let cols = rng.random_range(1..=4usize);
        (rows, arbitrary_f64s(rng, rows as usize * cols))
    };
    SessionSpec {
        model: rng.random_range(0..=u8::MAX),
        max_window: rng.random_range(0..=u32::MAX),
        min_window: rng.random_range(0..=u32::MAX),
        threshold: arbitrary_f64s(rng, 6),
        cache_capacity: rng.random_range(0..=u32::MAX),
        output_rows,
        output_map,
    }
}

fn arbitrary_latency(rng: &mut StdRng) -> WireLatency {
    WireLatency {
        count: rng.random_range(0..=u64::MAX),
        mean_ns: arbitrary_f64(rng),
        p50_bound_ns: if rng.random_bool(0.5) {
            Some(rng.random_range(0..=u64::MAX))
        } else {
            None
        },
        p99_bound_ns: if rng.random_bool(0.5) {
            Some(rng.random_range(0..=u64::MAX))
        } else {
            None
        },
        overflow: rng.random_range(0..=u64::MAX),
    }
}

fn arbitrary_metrics(rng: &mut StdRng) -> WireMetrics {
    WireMetrics {
        sessions_active: rng.random_range(0..=u64::MAX),
        ticks_submitted: rng.random_range(0..=u64::MAX),
        ticks_processed: rng.random_range(0..=u64::MAX),
        alarms_raised: rng.random_range(0..=u64::MAX),
        degraded_ticks: rng.random_range(0..=u64::MAX),
        queue_depth_high_water: rng.random_range(0..=u64::MAX),
        log_latency: arbitrary_latency(rng),
        detect_latency: arbitrary_latency(rng),
        frames_in: rng.random_range(0..=u64::MAX),
        frames_out: rng.random_range(0..=u64::MAX),
        decode_errors: rng.random_range(0..=u64::MAX),
        connections_opened: rng.random_range(0..=u64::MAX),
        connections_dropped: rng.random_range(0..=u64::MAX),
        alloc_free_ticks: rng.random_range(0..=u64::MAX),
        batched_deadline_queries: rng.random_range(0..=u64::MAX),
        sessions_evicted: rng.random_range(0..=u64::MAX),
        shards: rng.random_range(0..=u64::MAX),
        partial_frame_resumes: rng.random_range(0..=u64::MAX),
        sessions_replicated: rng.random_range(0..=u64::MAX),
        failovers: rng.random_range(0..=u64::MAX),
        replication_lag_hwm: rng.random_range(0..=u64::MAX),
        batch_ticks: rng.random_range(0..=u64::MAX),
        batch_sessions_hwm: rng.random_range(0..=u64::MAX),
        scalar_fallback_ticks: rng.random_range(0..=u64::MAX),
        recalibrations: rng.random_range(0..=u64::MAX),
        recalibrations_rejected: rng.random_range(0..=u64::MAX),
    }
}

/// A random recalibration block with wire-consistent dimensions (the
/// decoder rejects zero dims and wrong element counts, so only
/// internally consistent blocks round-trip) and hostile float values.
fn arbitrary_recalibration(rng: &mut StdRng) -> WireRecalibration {
    let state_dim = rng.random_range(1..=3u32);
    let input_dim = rng.random_range(1..=2u32);
    let n = state_dim as usize;
    let m = input_dim as usize;
    WireRecalibration {
        state_dim,
        input_dim,
        a: (0..n * n).map(|_| arbitrary_f64(rng)).collect(),
        b: (0..n * m).map(|_| arbitrary_f64(rng)).collect(),
        count: rng.random_range(0..=u64::MAX),
    }
}

fn arbitrary_state(rng: &mut StdRng) -> WireSessionState {
    let entries = (0..rng.random_range(0..4usize))
        .map(|_| awsad_serve::wire::WireLogEntry {
            step: rng.random_range(0..=u64::MAX),
            estimate: arbitrary_f64s(rng, 4),
            input: arbitrary_f64s(rng, 2),
            prediction: if rng.random_bool(0.5) {
                Some(arbitrary_f64s(rng, 4))
            } else {
                None
            },
            residual: arbitrary_f64s(rng, 4),
        })
        .collect();
    WireSessionState {
        prev_window: rng.random_range(0..=u64::MAX),
        steps_since_estimate: rng.random_range(0..=u64::MAX),
        initial_radius: arbitrary_f64(rng),
        complementary_enabled: rng.random_bool(0.5),
        reestimation_period: rng.random_range(0..=u64::MAX),
        cached_deadline: match rng.random_range(0..3u32) {
            0 => None,
            1 => Some(None),
            _ => Some(Some(rng.random_range(0..=u64::MAX))),
        },
        next_step: rng.random_range(0..=u64::MAX),
        next_seq: rng.random_range(0..=u64::MAX),
        entries,
        recalibration: if rng.random_bool(0.5) {
            Some(arbitrary_recalibration(rng))
        } else {
            None
        },
    }
}

/// A random valid frame covering every one of the protocol's 20
/// variants, with hostile float bit patterns throughout.
pub fn arbitrary_frame(rng: &mut StdRng) -> Frame {
    match rng.random_range(0..20u32) {
        0 => Frame::Hello {
            client: arbitrary_string(rng, 24),
        },
        1 => Frame::HelloAck {
            server: arbitrary_string(rng, 24),
        },
        2 => Frame::OpenSession(arbitrary_spec(rng)),
        3 => Frame::SessionOpened {
            session: rng.random_range(0..=u64::MAX),
            state_dim: rng.random_range(0..=u32::MAX),
            input_dim: rng.random_range(0..=u32::MAX),
        },
        4 => Frame::Tick {
            session: rng.random_range(0..=u64::MAX),
            ticks: (0..rng.random_range(0..4usize))
                .map(|_| arbitrary_tick(rng))
                .collect(),
        },
        5 => Frame::TickOutcomes {
            session: rng.random_range(0..=u64::MAX),
            outcomes: (0..rng.random_range(0..4usize))
                .map(|_| arbitrary_outcome(rng))
                .collect(),
        },
        6 => Frame::CloseSession {
            session: rng.random_range(0..=u64::MAX),
        },
        7 => Frame::SessionClosed {
            session: rng.random_range(0..=u64::MAX),
        },
        8 => Frame::MetricsQuery,
        9 => Frame::MetricsReply(arbitrary_metrics(rng)),
        10 => Frame::SnapshotSession {
            session: rng.random_range(0..=u64::MAX),
        },
        11 => Frame::SessionSnapshot {
            session: rng.random_range(0..=u64::MAX),
            state: arbitrary_state(rng),
        },
        12 => Frame::RestoreSession {
            spec: arbitrary_spec(rng),
            state: arbitrary_state(rng),
        },
        13 => Frame::Error {
            code: awsad_serve::wire::ErrorCode::Internal,
            message: arbitrary_string(rng, 32),
        },
        14 => Frame::ReplicateSnapshot {
            key: rng.random_range(0..=u64::MAX),
            generation: rng.random_range(0..=u64::MAX),
            spec: arbitrary_spec(rng),
            state: arbitrary_state(rng),
        },
        15 => Frame::ReplicateAck {
            key: rng.random_range(0..=u64::MAX),
            generation: rng.random_range(0..=u64::MAX),
        },
        16 => Frame::PromoteSession {
            key: rng.random_range(0..=u64::MAX),
        },
        17 => {
            // The decoder enforces dims × element counts, so only
            // consistent shapes round-trip; the values stay hostile.
            let r = arbitrary_recalibration(rng);
            Frame::Recalibrate {
                session: rng.random_range(0..=u64::MAX),
                state_dim: r.state_dim,
                input_dim: r.input_dim,
                a: r.a,
                b: r.b,
            }
        }
        18 => Frame::RecalibrateAck {
            session: rng.random_range(0..=u64::MAX),
            recal_count: rng.random_range(0..=u64::MAX),
        },
        _ => Frame::RingUpdate {
            epoch: rng.random_range(0..=u64::MAX),
            members: (0..rng.random_range(0..4usize))
                .map(|_| awsad_serve::wire::RingMember {
                    shard: rng.random_range(0..=u32::MAX),
                    addr: arbitrary_string(rng, 20),
                })
                .collect(),
        },
    }
}

/// A random correlation id (or none, for the legacy envelope shape).
pub fn arbitrary_corr(rng: &mut StdRng) -> Option<u64> {
    if rng.random_bool(0.5) {
        Some(rng.random_range(0..=u64::MAX))
    } else {
        None
    }
}

/// Applies one structure-aware mutation to an encoded payload and
/// returns its description.
pub fn mutate(rng: &mut StdRng, payload: &mut Vec<u8>) -> String {
    match rng.random_range(0..7u32) {
        0 => {
            if payload.is_empty() {
                return "noop (empty payload)".into();
            }
            let pos = rng.random_range(0..payload.len());
            let bit = rng.random_range(0..8u32);
            payload[pos] ^= 1 << bit;
            format!("bit flip at byte {pos} bit {bit}")
        }
        1 => {
            let cut = rng.random_range(0..=payload.len());
            payload.truncate(cut);
            format!("truncate to {cut} bytes")
        }
        2 => {
            let extra = rng.random_range(1..=9usize);
            for _ in 0..extra {
                payload.push(rng.random_range(0..=u8::MAX));
            }
            format!("append {extra} garbage bytes")
        }
        3 => {
            if payload.len() > 6 {
                let t = rng.random_range(0..=u8::MAX);
                payload[6] = t;
                format!("type byte swapped to {t:#04x}")
            } else {
                "noop (no type byte)".into()
            }
        }
        4 => {
            if payload.len() >= 6 {
                let pos = rng.random_range(0..6usize);
                payload[pos] = rng.random_range(0..=u8::MAX);
                format!("header corruption at byte {pos}")
            } else {
                "noop (no header)".into()
            }
        }
        5 => {
            // A hostile allocation size: rewrite 4 aligned-ish bytes
            // somewhere in the body to a huge count.
            if payload.len() > 11 {
                let pos = rng.random_range(7..payload.len() - 4);
                payload[pos..pos + 4].copy_from_slice(&u32::MAX.to_be_bytes());
                format!("count field at {pos} rewritten to u32::MAX")
            } else {
                "noop (body too short)".into()
            }
        }
        _ => {
            // Envelope corruption: exactly 8 trailing bytes decode as
            // a correlation id, so adding or stripping them flips the
            // envelope shape.
            if payload.len() > 8 && rng.random_bool(0.5) {
                payload.truncate(payload.len() - 8);
                "strip 8 trailing bytes (envelope)".into()
            } else {
                for _ in 0..8 {
                    payload.push(rng.random_range(0..=u8::MAX));
                }
                "append 8 trailing bytes (fake correlation id)".into()
            }
        }
    }
}

fn decode_both(payload: &[u8]) -> Result<(), String> {
    let strict = catch_unwind(AssertUnwindSafe(|| Frame::decode(payload)));
    if strict.is_err() {
        return Err("Frame::decode panicked".into());
    }
    let env = catch_unwind(AssertUnwindSafe(|| Frame::decode_enveloped(payload)));
    match env {
        Err(_) => Err("Frame::decode_enveloped panicked".into()),
        Ok(Ok(env)) => {
            let reencode = catch_unwind(AssertUnwindSafe(|| env.frame.encode_with_corr(env.corr)));
            match reencode {
                Err(_) => Err("re-encode of decoded mutant panicked".into()),
                Ok(_) => Ok(()),
            }
        }
        Ok(Err(_)) => Ok(()),
    }
}

/// One fuzz iteration: generate a valid enveloped frame, prove the
/// clean cycle byte-idempotent, then decode a mutant of it.
///
/// # Errors
///
/// A [`FuzzViolation`] naming the property and the mutation.
pub fn fuzz_frame_once(rng: &mut StdRng) -> Result<(), FuzzViolation> {
    let frame = arbitrary_frame(rng);
    let corr = arbitrary_corr(rng);
    let name = frame.type_name();
    let bytes = frame.encode_with_corr(corr);

    let env = Frame::decode_enveloped(&bytes).map_err(|e| FuzzViolation {
        property: "clean-decode",
        detail: format!("{name} (corr {corr:?}) failed to decode: {e}"),
    })?;
    if env.corr != corr {
        return Err(FuzzViolation {
            property: "corr-round-trip",
            detail: format!("{name}: corr {corr:?} decoded as {:?}", env.corr),
        });
    }
    let bytes2 = env.frame.encode_with_corr(env.corr);
    if bytes2 != bytes {
        return Err(FuzzViolation {
            property: "byte-idempotence",
            detail: format!(
                "{name}: re-encode differs ({} vs {} bytes)",
                bytes2.len(),
                bytes.len()
            ),
        });
    }

    let mut mutant = bytes;
    let mutation = mutate(rng, &mut mutant);
    decode_both(&mutant).map_err(|what| FuzzViolation {
        property: "mutant-decode",
        detail: format!("{name} after {mutation}: {what}"),
    })?;
    Ok(())
}

/// Allocation-guard checks on the stream layer: a declared length
/// beyond `max_len` must be rejected before the payload allocation,
/// and a count field lying about its element count must decode to
/// [`WireError::Truncated`], not an attempted huge allocation.
pub fn check_allocation_guards(rng: &mut StdRng) -> Result<(), FuzzViolation> {
    // Lying length prefix: 4 GiB-ish declared, tiny max.
    let declared = rng.random_range(2u32..=u32::MAX);
    let max_len = rng.random_range(1..declared);
    let mut stream = Vec::new();
    stream.extend_from_slice(&declared.to_be_bytes());
    stream.extend_from_slice(&[0u8; 16]);
    match read_envelope(&mut Cursor::new(&stream), max_len) {
        Err(awsad_serve::wire::ReadFrameError::Wire(WireError::FrameTooLarge { len, max })) => {
            if len != declared || max != max_len {
                return Err(FuzzViolation {
                    property: "prefix-guard",
                    detail: format!(
                        "FrameTooLarge reported {len}/{max}, expected {declared}/{max_len}"
                    ),
                });
            }
        }
        other => {
            return Err(FuzzViolation {
                property: "prefix-guard",
                detail: format!("oversized prefix produced {other:?}"),
            });
        }
    }

    // Hostile element count: a Tick frame whose tick count promises
    // ~4 billion elements against a handful of remaining bytes.
    let frame = Frame::Tick {
        session: rng.random_range(0..=u64::MAX),
        ticks: vec![arbitrary_tick(rng)],
    };
    let mut payload = frame.encode();
    // Payload layout: magic(4) + version(2) + type(1) + session(8) +
    // tick count u32 at offset 15.
    payload[15..19].copy_from_slice(&u32::MAX.to_be_bytes());
    match Frame::decode(&payload) {
        Err(WireError::Truncated) => Ok(()),
        other => Err(FuzzViolation {
            property: "count-guard",
            detail: format!("hostile tick count produced {other:?}"),
        }),
    }
}

/// Proves a malformed blob on one connection cannot poison another:
/// connection B opens a real session and ticks; connection A writes
/// `garbage` (framed under an honest length prefix) and dies; B's
/// remaining stream must match `expected` exactly.
///
/// The scenario must be registry-family (serve-expressible).
pub fn check_no_cross_connection_poisoning(
    scenario: &Scenario,
    addr: SocketAddr,
    garbage: &[u8],
) -> Result<(), FuzzViolation> {
    let spec = scenario
        .spec
        .as_ref()
        .expect("poisoning check needs a registry scenario");
    let fail = |detail: String| FuzzViolation {
        property: "cross-connection-isolation",
        detail,
    };
    let expected = crate::oracle::direct_steps(scenario);

    let mut client = Client::connect(addr).map_err(|e| fail(format!("connect B: {e}")))?;
    let session = client
        .open_session(spec)
        .map_err(|e| fail(format!("open B: {e}")))?;
    let half = scenario.trace.len() / 2;
    let mut outcomes = client
        .tick_batch(session.id, &scenario.trace[..half])
        .map_err(|e| fail(format!("tick B first half: {e}")))?;

    // Connection A: an honest length prefix framing hostile bytes.
    {
        let mut attacker = TcpStream::connect(addr).map_err(|e| fail(format!("connect A: {e}")))?;
        let len = (garbage.len() as u32).to_be_bytes();
        attacker
            .write_all(&len)
            .and_then(|()| attacker.write_all(garbage))
            .map_err(|e| fail(format!("write A: {e}")))?;
        // The server answers a decode failure by dropping A; nothing
        // to read back reliably, so just let A fall out of scope.
    }

    outcomes.extend(
        client
            .tick_batch(session.id, &scenario.trace[half..])
            .map_err(|e| fail(format!("tick B second half: {e}")))?,
    );
    client
        .close_session(session.id)
        .map_err(|e| fail(format!("close B: {e}")))?;

    if outcomes.len() != expected.len() {
        return Err(fail(format!(
            "B got {} outcomes, expected {}",
            outcomes.len(),
            expected.len()
        )));
    }
    for (i, (o, want)) in outcomes.iter().zip(&expected).enumerate() {
        if o.to_step() != *want {
            return Err(fail(format!(
                "B's tick {i} diverged after attacker garbage: {:?} vs {want:?}",
                o.to_step()
            )));
        }
    }
    Ok(())
}

/// The full on-wire image of a frame: u32 BE length prefix + payload.
fn framed(frame: &Frame) -> Vec<u8> {
    let payload = frame.encode();
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend(payload);
    out
}

/// Round-robin drains byte lanes onto their streams in 1–7 byte torn
/// chunks, so every frame boundary lands mid-chunk on some connection
/// while the others' partial frames sit parked in the decoder.
///
/// Write failures on lanes at index `fatal_below` or above are
/// tolerated (the server is entitled to drop a poisoned connection
/// mid-write); failures below it are reported.
fn drain_torn(
    rng: &mut StdRng,
    streams: &[TcpStream],
    lanes: &mut [(usize, Vec<u8>, usize)],
    fatal_below: usize,
) -> Result<(), String> {
    loop {
        let mut wrote = false;
        for (idx, bytes, off) in lanes.iter_mut() {
            if *off >= bytes.len() {
                continue;
            }
            let take = rng.random_range(1..=7usize).min(bytes.len() - *off);
            match (&streams[*idx]).write_all(&bytes[*off..*off + take]) {
                Ok(()) => *off += take,
                Err(_) if *idx >= fatal_below => *off = bytes.len(),
                Err(e) => return Err(format!("torn write on connection {idx}: {e}")),
            }
            wrote = true;
        }
        if !wrote {
            return Ok(());
        }
    }
}

/// Torn frames interleaved across connections on the same shard: two
/// honest connections stream the scenario with every request split
/// into 1–7 byte chunks, round-robin interleaved with each other
/// **and** with a third connection whose honestly-prefixed hostile
/// bytes are torn the same way. The decoder must park and resume each
/// connection's partial frame without leaking state between slots:
/// both honest streams must equal the direct reference bit-for-bit,
/// and only the garbage connection may die.
///
/// `addr` may point at either server implementation; the readiness
/// server is the interesting target since one thread decodes all
/// three connections.
pub fn check_torn_frame_interleaving(
    scenario: &Scenario,
    addr: SocketAddr,
    rng: &mut StdRng,
) -> Result<(), FuzzViolation> {
    const VALID: usize = 2;
    let spec = scenario
        .spec
        .as_ref()
        .expect("torn-frame check needs a registry scenario");
    let fail = |detail: String| FuzzViolation {
        property: "torn-frame-interleaving",
        detail,
    };
    let expected = crate::oracle::direct_steps(scenario);

    let mut streams = Vec::with_capacity(VALID + 1);
    for i in 0..=VALID {
        let s = TcpStream::connect(addr).map_err(|e| fail(format!("connect {i}: {e}")))?;
        let _ = s.set_nodelay(true);
        streams.push(s);
    }

    // Hostile bytes under an honest length prefix; the first byte
    // breaks the magic so the frame can never accidentally decode.
    let mut garbage = vec![0u8; rng.random_range(8..64usize)];
    for b in garbage.iter_mut() {
        *b = rng.random_range(0..=u8::MAX);
    }
    garbage[0] = 0xFF;
    let mut attacker_bytes = (garbage.len() as u32).to_be_bytes().to_vec();
    attacker_bytes.extend(garbage);

    // Wave 0: both session opens torn and interleaved with the
    // garbage connection's bytes.
    let open = framed(&Frame::OpenSession(spec.clone()));
    let mut lanes = vec![
        (0usize, open.clone(), 0usize),
        (1, open, 0),
        (VALID, attacker_bytes, 0),
    ];
    drain_torn(rng, &streams, &mut lanes, VALID).map_err(fail)?;

    let mut sessions = [0u64; VALID];
    for (i, sess) in sessions.iter_mut().enumerate() {
        match read_envelope(&mut (&streams[i]), DEFAULT_MAX_FRAME_LEN) {
            Ok(env) => match env.frame {
                Frame::SessionOpened { session, .. } => *sess = session,
                other => {
                    return Err(fail(format!(
                        "connection {i}: open answered {}",
                        other.type_name()
                    )))
                }
            },
            Err(e) => return Err(fail(format!("connection {i}: open reply: {e}"))),
        }
    }

    // The garbage connection must die alone: an error frame, or a
    // drop with nothing readable.
    if let Ok(env) = read_envelope(&mut (&streams[VALID]), DEFAULT_MAX_FRAME_LEN) {
        if !matches!(env.frame, Frame::Error { .. }) {
            return Err(fail(format!(
                "garbage connection got {} instead of an error",
                env.frame.type_name()
            )));
        }
    }

    // Tick waves: at most 8 in-flight batches per connection so the
    // pipeline never trips the server's request-queue backpressure.
    let chunks: Vec<&[WireTick]> = scenario.trace.chunks(16).collect();
    let mut outcomes: Vec<Vec<WireOutcome>> = vec![Vec::new(); VALID];
    for wave in chunks.chunks(8) {
        let mut lanes: Vec<(usize, Vec<u8>, usize)> = (0..VALID)
            .map(|i| {
                let mut bytes = Vec::new();
                for ticks in wave {
                    bytes.extend(framed(&Frame::Tick {
                        session: sessions[i],
                        ticks: ticks.to_vec(),
                    }));
                }
                (i, bytes, 0)
            })
            .collect();
        drain_torn(rng, &streams, &mut lanes, VALID).map_err(fail)?;
        for (i, got) in outcomes.iter_mut().enumerate() {
            for _ in 0..wave.len() {
                match read_envelope(&mut (&streams[i]), DEFAULT_MAX_FRAME_LEN) {
                    Ok(env) => match env.frame {
                        Frame::TickOutcomes {
                            session,
                            outcomes: batch,
                        } if session == sessions[i] => got.extend(batch),
                        other => {
                            return Err(fail(format!(
                                "connection {i}: tick answered {}",
                                other.type_name()
                            )))
                        }
                    },
                    Err(e) => return Err(fail(format!("connection {i}: tick reply: {e}"))),
                }
            }
        }
    }

    // Close both sessions, torn the same way.
    let mut lanes: Vec<(usize, Vec<u8>, usize)> = (0..VALID)
        .map(|i| {
            (
                i,
                framed(&Frame::CloseSession {
                    session: sessions[i],
                }),
                0,
            )
        })
        .collect();
    drain_torn(rng, &streams, &mut lanes, VALID).map_err(fail)?;
    for (i, sess) in sessions.iter().enumerate() {
        match read_envelope(&mut (&streams[i]), DEFAULT_MAX_FRAME_LEN) {
            Ok(env) => match env.frame {
                Frame::SessionClosed { session } if session == *sess => {}
                other => {
                    return Err(fail(format!(
                        "connection {i}: close answered {}",
                        other.type_name()
                    )))
                }
            },
            Err(e) => return Err(fail(format!("connection {i}: close reply: {e}"))),
        }
    }

    for (i, got) in outcomes.iter().enumerate() {
        if got.len() != expected.len() {
            return Err(fail(format!(
                "connection {i} got {} outcomes, expected {}",
                got.len(),
                expected.len()
            )));
        }
        for (t, (o, want)) in got.iter().zip(&expected).enumerate() {
            if o.to_step() != *want {
                return Err(fail(format!(
                    "connection {i} tick {t} diverged under torn interleaving: {:?} vs {want:?}",
                    o.to_step()
                )));
            }
        }
    }
    Ok(())
}
