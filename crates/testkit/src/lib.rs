//! Machine-generated adversarial coverage for the AWSAD stack.
//!
//! The stack has grown six independent ways to compute the same
//! [`awsad_core::AdaptiveStep`] stream — direct
//! [`awsad_core::AdaptiveDetector`] stepping, the runtime engine, the
//! serve wire path, [`awsad_serve::ReconnectingClient`] resume,
//! snapshot/restore, and the readiness-based `awsad-net` event-loop
//! server — each pinned until now only by hand-picked models and
//! traces. This crate replaces curated examples with a generator +
//! oracle harness:
//!
//! * [`scenario`] — seeded scenario generators: random stable and
//!   marginal LTI plants with controlled spectral radius, random PID
//!   gains, noise bounds, window parameters, and attack schedules.
//!   Every scenario serializes to a one-line **seed string**
//!   (`awsad1:<family>:<seed-hex>[:len=N]`) that replays it exactly.
//! * [`oracle`] — differential oracles that run one scenario through
//!   every detection path and assert bit-identical step streams, plus
//!   deadline-estimator self-checks (precomputed boxes vs the
//!   reference formula, quantized-cache conservatism).
//! * [`wirefuzz`] — a structure-aware fuzzer for the wire protocol:
//!   generates valid frames, then mutates them (length-prefix lies,
//!   truncation, bit flips, envelope corruption, hostile allocation
//!   sizes) asserting decode never panics or over-allocates; plus
//!   live-server probes for cross-connection poisoning and torn
//!   frames interleaved across a shard's connections.
//! * [`proxy`] — the frame-aware fault-injection TCP proxy shared by
//!   the serve chaos tests and the fuzzer's resume path.
//!
//! The `fuzz` binary drives all of the above in a time-boxed smoke
//! mode and carries a shrinker that minimizes any failing scenario to
//! its seed string:
//!
//! ```text
//! cargo run --release -p awsad-testkit --bin fuzz -- --seconds 30 --seed 5
//! cargo run --release -p awsad-testkit --bin fuzz -- --repro awsad1:registry:00000000deadbeef
//! ```

pub mod oracle;
pub mod proxy;
pub mod scenario;
pub mod wirefuzz;

pub use oracle::{
    check_estimator, check_five_paths, check_local_paths, check_recalibrate_path,
    check_seven_paths, check_six_paths, OracleError,
};
pub use proxy::{FaultPlan, FaultProxy, ReplyFault};
pub use scenario::{Family, Scenario, SeedSpec};
