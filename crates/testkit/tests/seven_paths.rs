//! The seventh differential-oracle path, run at volume: ≥100 seeded
//! registry scenarios streamed through a fresh 3-shard
//! `awsad-cluster` ring with the session's primary killed mid-stream,
//! asserting the `AdaptiveStep` stream bit-identical to direct
//! stepping. A seed-derived coin decides per scenario whether
//! replication is flushed before the kill, so both recovery paths —
//! promoting the ring successor's replica and restoring the client's
//! own checkpoint — stay covered across the corpus.
//!
//! Every scenario that fails prints its seed string, so the repro is
//! always `cargo run --release -p awsad-testkit --bin fuzz -- --repro
//! <seed>`.

use awsad_testkit::oracle::{cluster_steps, direct_steps};
use awsad_testkit::scenario::{Scenario, SeedSpec};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const SCENARIOS: u64 = 100;

#[test]
fn one_hundred_registry_scenarios_survive_a_mid_stream_shard_kill() {
    let mut rng = StdRng::seed_from_u64(0x7_5EED);
    let mut failures = Vec::new();
    for _ in 0..SCENARIOS {
        let seed = SeedSpec::registry(rng.random_range(0..=u64::MAX));
        let scenario = Scenario::from_seed(&seed);
        let reference = direct_steps(&scenario);
        match cluster_steps(&scenario) {
            Ok(steps) if steps == reference => {}
            Ok(steps) => {
                let at = steps
                    .iter()
                    .zip(&reference)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| steps.len().min(reference.len()));
                failures.push(format!(
                    "cluster stream diverged at tick {at} ({} vs {} ticks)\n  repro: {}",
                    steps.len(),
                    reference.len(),
                    seed.repro_command()
                ));
            }
            Err(e) => failures.push(format!("{e}\n  repro: {}", seed.repro_command())),
        }
        if failures.len() >= 3 {
            break; // enough evidence; don't grind through the rest
        }
    }
    assert!(
        failures.is_empty(),
        "cluster-path divergence on {} scenario(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
