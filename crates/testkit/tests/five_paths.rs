//! The headline differential oracle, run at volume: ≥200 seeded
//! registry scenarios, each pushed through all five detection paths
//! (direct detector, engine with cache, engine with the cache
//! stripped, snapshot/restore, serve wire path, fault-injected
//! resume) against one shared server, asserting the `AdaptiveStep`
//! streams are bit-identical.
//!
//! Every scenario that fails prints its seed string, so the repro is
//! always `cargo run --release -p awsad-testkit --bin fuzz -- --repro
//! <seed>`.

use awsad_serve::server::{Server, ServerConfig};
use awsad_testkit::scenario::Scenario;
use awsad_testkit::scenario::SeedSpec;
use awsad_testkit::{check_estimator, check_five_paths, check_local_paths};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const SCENARIOS: u64 = 200;

#[test]
fn two_hundred_registry_scenarios_agree_across_all_five_paths() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind server");
    let addr = server.local_addr();
    let mut rng = StdRng::seed_from_u64(0x5F1E_5EED);
    let mut failures = Vec::new();
    for _ in 0..SCENARIOS {
        let seed = SeedSpec::registry(rng.random_range(0..=u64::MAX));
        let scenario = Scenario::from_seed(&seed);
        if let Err(e) = check_five_paths(&scenario, addr) {
            failures.push(format!("{e}\n  repro: {}", seed.repro_command()));
        }
        if failures.len() >= 3 {
            break; // enough evidence; don't grind through the rest
        }
    }
    server.shutdown();
    assert!(
        failures.is_empty(),
        "path divergence on {} scenario(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Random-LTI scenarios cannot open serve sessions (the wire protocol
/// speaks registry models only) but must still agree across every
/// local path, and their synthesized plants exercise the estimator
/// oracles on matrices the registry never produces.
#[test]
fn random_lti_scenarios_agree_across_local_paths() {
    let mut rng = StdRng::seed_from_u64(0x17A_5EED);
    for _ in 0..48 {
        let seed = SeedSpec::random_lti(rng.random_range(0..=u64::MAX));
        let scenario = Scenario::from_seed(&seed);
        if let Err(e) = check_local_paths(&scenario) {
            panic!("{e}\n  repro: {}", seed.repro_command());
        }
        if let Err(e) = check_estimator(&scenario) {
            panic!("{e}\n  repro: {}", seed.repro_command());
        }
    }
}
