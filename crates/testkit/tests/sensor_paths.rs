//! The per-sensor scenario families, run through every detection
//! path: `sensor` (a minority of output channels falsified behind a
//! randomized `C ≠ I` output map) and `severe` (fewer than half the
//! sensors trustworthy). Both families carry their output map in the
//! wire spec, so the serve path exercises the spec-extension encoding
//! end to end, and every path must stay bit-identical to direct
//! stepping — the map is scenario metadata and may not perturb a
//! single detector output bit.
//!
//! Every scenario that fails prints its seed string, so the repro is
//! always `cargo run --release -p awsad-testkit --bin fuzz -- --repro
//! <seed>`.

use awsad_serve::server::{Server, ServerConfig};
use awsad_testkit::check_five_paths;
use awsad_testkit::oracle::check_batch_path;
use awsad_testkit::scenario::{Scenario, SeedSpec};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const SCENARIOS: u64 = 96;

#[test]
fn sensor_and_severe_scenarios_agree_across_all_five_paths() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind server");
    let addr = server.local_addr();
    let mut rng = StdRng::seed_from_u64(0x5E_A502);
    let mut failures = Vec::new();
    for i in 0..SCENARIOS {
        let seed = if i % 3 == 2 {
            SeedSpec::severe(rng.random_range(0..=u64::MAX))
        } else {
            SeedSpec::sensor(rng.random_range(0..=u64::MAX))
        };
        let scenario = Scenario::from_seed(&seed);
        if let Err(e) = check_five_paths(&scenario, addr) {
            failures.push(format!("{e}\n  repro: {}", seed.repro_command()));
        }
        if failures.len() >= 3 {
            break; // enough evidence; don't grind through the rest
        }
    }
    server.shutdown();
    assert!(
        failures.is_empty(),
        "path divergence on {} scenario(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Mixed chunks — registry, sensor, and severe scenarios sharing one
/// engine in forced cross-session batch mode — must batch-step
/// bit-identically. Output-feedback traces join the same SoA lane
/// groups as plain registry traces of the same geometry.
#[test]
fn mixed_family_chunks_batch_step_bit_identically() {
    let mut rng = StdRng::seed_from_u64(0xBA7C_5E02);
    let mut failures = Vec::new();
    let mut chunk: Vec<(SeedSpec, Scenario)> = Vec::with_capacity(6);
    for i in 0..48usize {
        let seed = match i % 3 {
            0 => SeedSpec::registry(rng.random_range(0..=u64::MAX)),
            1 => SeedSpec::sensor(rng.random_range(0..=u64::MAX)),
            _ => SeedSpec::severe(rng.random_range(0..=u64::MAX)),
        };
        let scenario = Scenario::from_seed(&seed);
        chunk.push((seed, scenario));
        if chunk.len() < 6 && i + 1 < 48 {
            continue;
        }
        let scenarios: Vec<Scenario> = chunk.iter().map(|(_, s)| s.clone()).collect();
        if let Err(e) = check_batch_path(&scenarios) {
            let repro = chunk
                .iter()
                .map(|(seed, _)| format!("  repro: {}", seed.repro_command()))
                .collect::<Vec<_>>()
                .join("\n");
            failures.push(format!("{e}\n{repro}"));
        }
        chunk.clear();
        if failures.len() >= 3 {
            break;
        }
    }
    assert!(
        failures.is_empty(),
        "batch-path divergence on {} chunk(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
