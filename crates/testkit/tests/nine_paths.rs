//! The ninth differential-oracle path, run at volume: ≥100 seeded
//! drift scenarios whose plant drifts mid-stream, each recalibrated
//! to the drifted model at its precomputed tick boundary through
//! every mechanism that can express the swap — direct in-place
//! [`awsad_core::AdaptiveDetector::recalibrate`] as the reference,
//! the cross-session batch engine, snapshot/restore across the
//! recalibration (the snapshot must carry the trailing recalibration
//! block), the `Recalibrate` wire op against **both** server
//! implementations, and the cluster router with its primary killed
//! right after the swap. Every post-recalibration stream must be
//! bit-identical to the reference.
//!
//! Alongside the stream oracle sits the alarm-kind separation the
//! drift family exists to prove: over excited windows of each
//! scenario's drifted plant the three-way drift-vs-attack rule never
//! classifies genuine model drift as an attack, and never classifies
//! a biased (attacked) stream as recalibratable drift.
//!
//! Every scenario that fails prints its seed string, so the repro is
//! always `cargo run --release -p awsad-testkit --bin fuzz -- --repro
//! <seed>`.

use awsad_core::{DriftConfig, DriftVerdict, IdentError, ModelIdentifier};
use awsad_linalg::Vector;
use awsad_net::{NetServer, NetServerConfig};
use awsad_serve::server::{Server, ServerConfig};
use awsad_testkit::oracle::check_recalibrate_path;
use awsad_testkit::scenario::{Scenario, SeedSpec};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const SCENARIOS: u64 = 100;

#[test]
fn one_hundred_drift_scenarios_recalibrate_bit_identically_on_every_path() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind serve server");
    let net_server =
        NetServer::bind("127.0.0.1:0", NetServerConfig::default()).expect("bind net server");
    let mut rng = StdRng::seed_from_u64(0x9_5EED);
    let mut failures = Vec::new();
    for _ in 0..SCENARIOS {
        let seed = SeedSpec::drift(rng.random_range(0..=u64::MAX));
        let scenario = Scenario::from_seed(&seed);
        if let Err(e) =
            check_recalibrate_path(&scenario, server.local_addr(), net_server.local_addr())
        {
            failures.push(format!("{e}\n  repro: {}", seed.repro_command()));
        }
        if failures.len() >= 3 {
            break; // enough evidence; don't grind through the rest
        }
    }
    net_server.shutdown();
    server.shutdown();
    assert!(
        failures.is_empty(),
        "recalibration-path divergence on {} scenario(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Aperiodic deterministic excitation — varies every tick and across
/// input dimensions so the regressor stays full rank over the short
/// identification window (a periodic input would collapse onto its
/// orbit and lose rank for larger plants).
fn excite(t: usize, i: usize) -> f64 {
    ((t * t + 3 * t + i * (t + 2) + 1) % 7) as f64 - 3.0
}

#[test]
fn drift_and_attack_alarms_never_masquerade_as_each_other() {
    // Fixed seeds: scenarios derive deterministically, so this is a
    // fixed set of episodes, not a random sample. The three-way rule
    // separates drift from attack on *identifiable* windows (the
    // closed-loop trace itself won't always do: a regulated,
    // near-constant stream carries no information about the
    // dynamics), so each scenario's drifted plant is driven by a
    // deterministic exciting input here.
    // Tight fit tolerance: noise-free drift fits to ~1e-14, while a
    // constant offset on a slowly sampled plant (A ≈ I) is only
    // weakly unabsorbable — its best fit still leaves orders of
    // magnitude more residual than 1e-9.
    let cfg = DriftConfig::new(1e-6, 1e-9).expect("valid tolerances");
    let mut drift_flagged = 0usize;
    for s in 0..64u64 {
        let scenario = Scenario::from_seed(&SeedSpec::drift(s));
        let recal = scenario.recalibration.as_ref().expect("drift scenario");
        let n = scenario.system.state_dim();
        let m = scenario.system.input_dim();
        let want = n + m + 8;

        // Genuine drift: the excited drifted plant, reported
        // faithfully. The rule may call a negligible drift Consistent
        // but must never raise an attack alarm — and when it does
        // flag drift, the fitted model must be the drifted truth,
        // i.e. exactly what recalibration would install.
        let mut clean = ModelIdentifier::new(n, m, want).expect("valid identifier");
        let mut biased = ModelIdentifier::new(n, m, want).expect("valid identifier");
        let bias: Vec<f64> = scenario
            .threshold
            .as_slice()
            .iter()
            .map(|tau| 5.0 * tau + 1.0)
            .collect();
        let mut x = Vector::zeros(n);
        for t in 0..=want {
            let u = Vector::from_fn(m, |i| excite(t, i));
            clean.observe(&x, &u);
            biased.observe(&Vector::from_fn(n, |i| x[i] + bias[i]), &u);
            let ax = recal.a.checked_mul_vec(&x).expect("square A");
            let bu = recal.b.checked_mul_vec(&u).expect("conforming B");
            x = Vector::from_fn(n, |i| ax[i] + bu[i]);
        }
        // The separation guarantee is scoped to identifiable plants.
        // The 12-state quadrotor's regressor is structurally
        // rank-deficient from its inputs (uncontrollable subspace),
        // so the conservative rule refuses to call its drift benign —
        // recalibration for such plants arrives by operator decree
        // (the wire op), not the classifier.
        if matches!(clean.identify(), Err(IdentError::RankDeficient)) {
            assert_eq!(n, 12, "only the quadrotor may be unidentifiable");
            continue;
        }

        match clean.classify(&scenario.system, &cfg).expect("full window") {
            DriftVerdict::Attack => panic!(
                "drift classified as attack on {} ({})",
                scenario.seed, scenario.label
            ),
            DriftVerdict::ModelDrift(model) => {
                assert!(
                    model.a.approx_eq_tol(&recal.a, 1e-6) && model.b.approx_eq_tol(&recal.b, 1e-6),
                    "drift fitted a model other than the drifted truth on {}",
                    scenario.seed
                );
                drift_flagged += 1;
            }
            DriftVerdict::Consistent => {}
        }

        // Sensor attack: the same excited stream with a constant
        // bias, well past the threshold, on the reported estimates. An
        // affine offset admits no stationary LTI fit on excited data,
        // so the rule must answer Attack — never a recalibratable
        // drift verdict, and never silence.
        match biased
            .classify(&scenario.system, &cfg)
            .expect("full window")
        {
            DriftVerdict::Attack => {}
            other => panic!(
                "biased stream classified as {other:?} on {} ({})",
                scenario.seed, scenario.label
            ),
        }
    }
    assert!(
        drift_flagged >= 30,
        "only {drift_flagged}/50 identifiable drifts flagged — the excitation went dead"
    );
}
