//! Degrade-path property: under a random overflow pattern, every
//! degraded tick reports the safe ceiling — window `w_m` with no
//! deadline estimate — the stream prefix before the first degraded
//! tick is untouched (identical to the no-overload Block-mode
//! stream), and the whole stream matches a direct detector driven
//! with `step_degraded` at the same ticks.
//!
//! Full post-degrade equality with the Block stream is deliberately
//! NOT asserted: a degraded step resets the previous window to `w_m`
//! and drops the cached deadline, so later regular steps legitimately
//! differ. What must hold is that the engine's degrade handling is
//! exactly the detector's `step_degraded`, nothing more and nothing
//! less.

use awsad_reach::Deadline;
use awsad_runtime::EngineConfig;
use awsad_testkit::oracle::{direct_steps, direct_steps_with, engine_steps_with};
use awsad_testkit::scenario::{Scenario, SeedSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// A random overload pattern with at least one degraded tick.
fn degrade_pattern(seed: u64, len: usize) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let density = rng.random_range(0.05..0.5);
    let mut pattern: Vec<bool> = (0..len).map(|_| rng.random_bool(density)).collect();
    let forced = rng.random_range(0..len);
    pattern[forced] = true;
    pattern
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn degraded_ticks_report_wm_and_leave_the_prefix_alone(
        seed in any::<u64>(),
        pattern_seed in any::<u64>(),
    ) {
        let spec = if seed.is_multiple_of(2) {
            SeedSpec::registry(seed)
        } else {
            SeedSpec::random_lti(seed)
        };
        let scenario = Scenario::from_seed(&spec);
        let pattern = degrade_pattern(pattern_seed, scenario.trace.len());

        let engine = engine_steps_with(&scenario, EngineConfig::default(), |i| pattern[i])
            .unwrap_or_else(|e| panic!("{e}\n  repro: {}", spec.repro_command()));
        prop_assert_eq!(engine.len(), scenario.trace.len());

        // Every degraded tick falls back to the w_m ceiling and skips
        // the deadline query.
        for (i, step) in engine.iter().enumerate() {
            if pattern[i] {
                prop_assert_eq!(
                    step.window, scenario.max_window,
                    "degraded tick {} reported window {} != w_m {}; repro: {}",
                    i, step.window, scenario.max_window, spec.repro_command()
                );
                prop_assert_eq!(
                    step.deadline, Deadline::Beyond,
                    "degraded tick {} reported a deadline estimate; repro: {}",
                    i, spec.repro_command()
                );
                prop_assert!(
                    step.complementary_alarms.is_empty(),
                    "degraded tick {} ran complementary checks; repro: {}",
                    i, spec.repro_command()
                );
            }
        }

        // Before the first overload the stream is byte-identical to
        // the undisturbed Block-mode stream.
        let first = pattern.iter().position(|&d| d).unwrap();
        let block = direct_steps(&scenario);
        prop_assert_eq!(
            &engine[..first], &block[..first],
            "stream diverged before the first degraded tick {}; repro: {}",
            first, spec.repro_command()
        );

        // End to end, the engine must equal a direct detector that
        // calls step_degraded at exactly the same ticks.
        let reference = direct_steps_with(&scenario, |i| pattern[i]);
        prop_assert_eq!(
            engine, reference,
            "degrade stream != direct step_degraded reference; repro: {}",
            spec.repro_command()
        );
    }
}
