//! The eighth differential-oracle path, run at volume: 200 seeded
//! registry scenarios in chunks of 8, each chunk sharing one engine
//! in forced cross-session batch mode. Round-robin submission keeps
//! ticks from many sessions co-pending, so the mega-drain steps
//! same-geometry sessions as vectorized SoA lane groups; every fourth
//! chunk member carries a quantized deadline cache the engine refuses
//! to batch, so the scalar fallback inside the mega-drain stays
//! exercised in the same run. Every session's `AdaptiveStep` stream —
//! degraded ticks included — must be bit-identical to direct stepping
//! of the identical detector, and the engine's own counters must
//! prove both the vectorized path and the fallback actually ran.
//!
//! Every scenario that fails prints its seed string, so the repro is
//! always `cargo run --release -p awsad-testkit --bin fuzz -- --repro
//! <seed>`.

use awsad_testkit::oracle::check_batch_path;
use awsad_testkit::scenario::{Scenario, SeedSpec};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const SCENARIOS: usize = 200;
const CHUNK: usize = 8;

#[test]
fn two_hundred_registry_scenarios_batch_step_bit_identically() {
    let mut rng = StdRng::seed_from_u64(0x8_5EED);
    let mut failures = Vec::new();
    let mut chunk: Vec<(SeedSpec, Scenario)> = Vec::with_capacity(CHUNK);
    for i in 0..SCENARIOS {
        let seed = SeedSpec::registry(rng.random_range(0..=u64::MAX));
        let scenario = Scenario::from_seed(&seed);
        chunk.push((seed, scenario));
        if chunk.len() < CHUNK && i + 1 < SCENARIOS {
            continue;
        }
        let scenarios: Vec<Scenario> = chunk.iter().map(|(_, s)| s.clone()).collect();
        if let Err(e) = check_batch_path(&scenarios) {
            let repro = chunk
                .iter()
                .map(|(seed, _)| format!("  repro: {}", seed.repro_command()))
                .collect::<Vec<_>>()
                .join("\n");
            failures.push(format!("{e}\n{repro}"));
        }
        chunk.clear();
        if failures.len() >= 3 {
            break; // enough evidence; don't grind through the rest
        }
    }
    assert!(
        failures.is_empty(),
        "batch-path divergence on {} chunk(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
