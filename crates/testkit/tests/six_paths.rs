//! The six-path differential oracle, run at volume: ≥200 seeded
//! registry scenarios, each pushed through every detection path —
//! direct detector, engine with cache, engine with the cache
//! stripped, snapshot/restore, the blocking serve wire path,
//! fault-injected resume, **and** the readiness `awsad-net` server —
//! against one shared server of each kind, asserting the
//! `AdaptiveStep` streams are bit-identical and the two servers'
//! re-encoded outcome frames are byte-for-byte the same wire image.
//!
//! Every scenario that fails prints its seed string, so the repro is
//! always `cargo run --release -p awsad-testkit --bin fuzz -- --repro
//! <seed>`.

use awsad_net::{NetServer, NetServerConfig};
use awsad_serve::server::{Server, ServerConfig};
use awsad_testkit::check_six_paths;
use awsad_testkit::scenario::{Scenario, SeedSpec};
use awsad_testkit::wirefuzz;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const SCENARIOS: u64 = 200;

#[test]
fn two_hundred_registry_scenarios_agree_across_all_six_paths() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind server");
    let addr = server.local_addr();
    // Two shards so scenarios land on both engines over the run.
    let net_server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig {
            shards: 2,
            ..NetServerConfig::default()
        },
    )
    .expect("bind net server");
    let net_addr = net_server.local_addr();
    let mut rng = StdRng::seed_from_u64(0x516_5EED);
    let mut failures = Vec::new();
    for _ in 0..SCENARIOS {
        let seed = SeedSpec::registry(rng.random_range(0..=u64::MAX));
        let scenario = Scenario::from_seed(&seed);
        if let Err(e) = check_six_paths(&scenario, addr, net_addr) {
            failures.push(format!("{e}\n  repro: {}", seed.repro_command()));
        }
        if failures.len() >= 3 {
            break; // enough evidence; don't grind through the rest
        }
    }
    net_server.shutdown();
    server.shutdown();
    assert!(
        failures.is_empty(),
        "path divergence on {} scenario(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Torn frames interleaved across connections sharing one shard: the
/// fuzz bin runs this continuously; here a fixed handful of seeds pin
/// it into the tier-1 suite. A single-shard server guarantees all
/// three connections (two honest, one hostile) decode on the same
/// event loop.
#[test]
fn torn_interleaved_frames_never_leak_between_connections() {
    let net_server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig {
            shards: 1,
            ..NetServerConfig::default()
        },
    )
    .expect("bind net server");
    let net_addr = net_server.local_addr();
    let mut rng = StdRng::seed_from_u64(0x70E1_5EED);
    for round in 0..6 {
        let seed = SeedSpec::registry(rng.random_range(0..=u64::MAX)).with_len(48);
        let scenario = Scenario::from_seed(&seed);
        if let Err(e) = wirefuzz::check_torn_frame_interleaving(&scenario, net_addr, &mut rng) {
            panic!("torn probe round {round} failed on {seed}: {e}");
        }
    }
    net_server.shutdown();
}
