//! Snapshot/restore property: for random scenarios from both seed
//! families, snapshotting a session at a random tick and restoring it
//! into a **fresh** engine continues the `AdaptiveStep` stream
//! byte-identically — the detector's adaptation state, logger window,
//! and sequence numbering all survive the round trip.

use awsad_testkit::oracle::{direct_steps, snapshot_restore_steps};
use awsad_testkit::scenario::{Scenario, SeedSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn restored_stream_is_byte_identical(seed in any::<u64>(), cut_sel in any::<u64>()) {
        let spec = match seed % 4 {
            0 => SeedSpec::registry(seed),
            1 => SeedSpec::random_lti(seed),
            2 => SeedSpec::sensor(seed),
            _ => SeedSpec::severe(seed),
        };
        let scenario = Scenario::from_seed(&spec);
        // Random cut anywhere in the trace, endpoints included: cut 0
        // restores a never-stepped session, cut == len restores after
        // the final tick with nothing left to stream.
        let cut = StdRng::seed_from_u64(cut_sel).random_range(0..=scenario.trace.len());
        let stitched = snapshot_restore_steps(&scenario, cut)
            .unwrap_or_else(|e| panic!("{e}\n  repro: {}", spec.repro_command()));
        let reference = direct_steps(&scenario);
        prop_assert_eq!(
            stitched, reference,
            "snapshot at tick {} diverged; repro: {}",
            cut, spec.repro_command()
        );
    }
}
