//! Identification properties over the paper's Table 1 plants: the
//! windowed least-squares identifier recovers each plant's `(A, B)`
//! from noisy excited I/O, and degenerate windows fail with the typed
//! errors the drift classifier relies on — never a confidently wrong
//! model.

use awsad_core::{IdentError, ModelIdentifier};
use awsad_linalg::Vector;
use awsad_models::Simulator;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Process-noise amplitude for the recovery property. Noise on the
/// state update (rather than the readout) keeps every transition
/// honest while exciting even weakly reachable directions — the
/// 12-state quadrotor included.
const NOISE: f64 = 1e-2;
const TICKS: usize = 512;

proptest! {
    // Each case simulates all five plants for 512 ticks, so keep the
    // case count modest — the error bounds below already sit an order
    // of magnitude above the worst observed estimate error.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Noisy excited I/O from each Table 1 plant identifies back to
    /// the plant itself: entrywise `Â` within 0.2, `B̂` within 0.01,
    /// and a fit residual on the order of the injected noise.
    #[test]
    fn noisy_io_recovers_each_table1_plant(seed in any::<u64>()) {
        for sim in Simulator::all() {
            let sys = sim.build().system;
            let (n, m) = (sys.state_dim(), sys.input_dim());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ident = ModelIdentifier::new(n, m, TICKS).expect("valid dims");
            let mut x = Vector::zeros(n);
            for _ in 0..=TICKS {
                let u = Vector::from_fn(m, |_| rng.random_range(-1.0..=1.0));
                ident.observe(&x, &u);
                let ax = sys.a().checked_mul_vec(&x).expect("square A");
                let bu = sys.b().checked_mul_vec(&u).expect("conforming B");
                x = Vector::from_fn(n, |i| {
                    ax[i] + bu[i] + rng.random_range(-NOISE..=NOISE)
                });
            }
            let model = ident.identify()
                .unwrap_or_else(|e| panic!("{sim}: identify failed: {e}"));
            prop_assert!(
                model.a.approx_eq_tol(sys.a(), 0.2),
                "{sim}: recovered A strays past 0.2"
            );
            prop_assert!(
                model.b.approx_eq_tol(sys.b(), 0.01),
                "{sim}: recovered B strays past 0.01"
            );
            prop_assert!(
                model.residual_rms < 3.0 * NOISE,
                "{sim}: residual {} not noise-sized",
                model.residual_rms
            );
        }
    }

    /// A window whose inputs never move cannot pin down `B̂`: the
    /// identifier reports which input is dead instead of fitting an
    /// arbitrary column.
    #[test]
    fn zero_excitation_is_a_typed_error(seed in any::<u64>(), plant in 0usize..5) {
        let sys = Simulator::all()[plant].build().system;
        let (n, m) = (sys.state_dim(), sys.input_dim());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ident = ModelIdentifier::new(n, m, TICKS).expect("valid dims");
        let mut x = Vector::from_fn(n, |_| rng.random_range(-1.0..=1.0));
        let u = Vector::zeros(m);
        for _ in 0..(n + m + 8) {
            ident.observe(&x, &u);
            x = sys.a().checked_mul_vec(&x).expect("square A");
        }
        prop_assert!(
            matches!(ident.identify(), Err(IdentError::ZeroExcitation { .. })),
            "free response passed as identifiable"
        );
    }

    /// A window frozen at one operating point has a rank-1 regressor:
    /// the identifier refuses rather than returning any of the
    /// infinitely many models that explain a single point.
    #[test]
    fn frozen_window_is_rank_deficient(seed in any::<u64>(), plant in 0usize..5) {
        let sys = Simulator::all()[plant].build().system;
        let (n, m) = (sys.state_dim(), sys.input_dim());
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Vector::from_fn(n, |_| rng.random_range(-1.0..=1.0));
        let u = Vector::from_fn(m, |_| rng.random_range(0.1..=1.0));
        let mut ident = ModelIdentifier::new(n, m, TICKS).expect("valid dims");
        for _ in 0..(n + m + 8) {
            ident.observe(&x, &u);
        }
        prop_assert!(
            matches!(ident.identify(), Err(IdentError::RankDeficient)),
            "frozen window passed as identifiable"
        );
    }

    /// Fewer than `n + m` transitions cannot determine `n + m`
    /// regression coefficients; the error carries both counts.
    #[test]
    fn short_window_reports_insufficient_data(plant in 0usize..5) {
        let sys = Simulator::all()[plant].build().system;
        let (n, m) = (sys.state_dim(), sys.input_dim());
        let mut ident = ModelIdentifier::new(n, m, TICKS).expect("valid dims");
        let u = Vector::from_fn(m, |i| i as f64 + 1.0);
        for t in 0..(n + m) {
            ident.observe(&Vector::from_fn(n, |i| (t * n + i) as f64), &u);
        }
        prop_assert!(
            matches!(
                ident.identify(),
                Err(IdentError::InsufficientData { have, need })
                    if have == n + m - 1 && need == n + m
            ),
            "short window did not report InsufficientData"
        );
    }
}
