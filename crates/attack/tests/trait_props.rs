//! Trait-level properties every sensor attack must satisfy.

use awsad_attack::{
    AttackWindow, BiasAttack, ChainedAttack, DelayAttack, NoAttack, RampAttack, RandomValueAttack,
    ReplayAttack, SensorAttack,
};
use awsad_linalg::Vector;
use awsad_sets::BoxSet;
use proptest::prelude::*;

/// Builds one of each attack with the given window parameters.
fn zoo(onset: usize, duration: usize) -> Vec<Box<dyn SensorAttack>> {
    let w = AttackWindow::new(onset, Some(duration));
    vec![
        Box::new(BiasAttack::new(w, Vector::from_slice(&[0.7, -0.2]))),
        Box::new(RampAttack::new(
            w,
            Vector::from_slice(&[0.01, 0.0]),
            duration.max(1),
        )),
        Box::new(DelayAttack::new(w, 3)),
        Box::new(ReplayAttack::new(
            w,
            onset.saturating_sub(5).min(onset),
            onset.clamp(1, 5),
        )),
        Box::new(RandomValueAttack::new(
            w,
            BoxSet::from_bounds(&[-1.0, -1.0], &[1.0, 1.0]).unwrap(),
            vec![true, false],
            9,
        )),
    ]
}

proptest! {
    /// Outside its window, every attack is the identity on the
    /// measurement stream.
    #[test]
    fn identity_outside_window(onset in 6usize..40, duration in 1usize..20, seed in 0u64..500) {
        for mut atk in zoo(onset, duration) {
            let mut state = seed as f64 * 0.01;
            for t in 0..(onset + duration + 10) {
                state = state * 0.9 + (t as f64 * 0.37).sin() * 0.1;
                let y = Vector::from_slice(&[state, -state]);
                let out = atk.tamper(t, &y);
                let active = t >= onset && t < onset + duration;
                if !active {
                    prop_assert!(
                        out.approx_eq(&y),
                        "{} tampered outside its window at t={t}",
                        atk.name()
                    );
                }
                prop_assert_eq!(out.len(), y.len());
                prop_assert_eq!(atk.is_active(t), active);
            }
        }
    }

    /// Metadata is consistent: onset/end bracket exactly the active
    /// region reported by is_active.
    #[test]
    fn metadata_brackets_activity(onset in 6usize..40, duration in 1usize..20) {
        for atk in zoo(onset, duration) {
            prop_assert_eq!(atk.onset(), Some(onset), "{}", atk.name());
            prop_assert_eq!(atk.end(), Some(onset + duration), "{}", atk.name());
            prop_assert!(!atk.is_active(onset.saturating_sub(1)));
            prop_assert!(atk.is_active(onset));
            prop_assert!(atk.is_active(onset + duration - 1));
            prop_assert!(!atk.is_active(onset + duration));
        }
    }

    /// reset() makes the attack behave identically on a replayed
    /// stream (statefulness is episode-local).
    #[test]
    fn reset_restores_determinism(onset in 6usize..30, duration in 1usize..15) {
        for mut atk in zoo(onset, duration) {
            let stream: Vec<Vector> = (0..onset + duration + 5)
                .map(|t| Vector::from_slice(&[(t as f64 * 0.31).sin(), (t as f64 * 0.17).cos()]))
                .collect();
            let first: Vec<Vector> =
                stream.iter().enumerate().map(|(t, y)| atk.tamper(t, y)).collect();
            atk.reset();
            let second: Vec<Vector> =
                stream.iter().enumerate().map(|(t, y)| atk.tamper(t, y)).collect();
            for (t, (a, b)) in first.iter().zip(second.iter()).enumerate() {
                prop_assert!(a.approx_eq(b), "{} diverged after reset at t={t}", atk.name());
            }
        }
    }

    /// A chain of attacks still satisfies the identity-outside-window
    /// property of the merged window.
    #[test]
    fn chained_attacks_respect_merged_window(onset in 10usize..30, duration in 2usize..10) {
        let w = AttackWindow::new(onset, Some(duration));
        let mut chain = ChainedAttack::new(vec![
            Box::new(BiasAttack::new(w, Vector::from_slice(&[0.5, 0.0]))),
            Box::new(DelayAttack::new(w, 2)),
        ]);
        for t in 0..(onset + duration + 5) {
            let y = Vector::from_slice(&[t as f64, -(t as f64)]);
            let out = chain.tamper(t, &y);
            if t < onset || t >= onset + duration {
                prop_assert!(out.approx_eq(&y), "chain tampered outside window at t={t}");
            }
        }
        prop_assert_eq!(chain.onset(), Some(onset));
        prop_assert_eq!(chain.end(), Some(onset + duration));
    }

    /// NoAttack is the identity everywhere and reports no window.
    #[test]
    fn no_attack_is_total_identity(t in 0usize..1000, x in -100.0..100.0f64) {
        let mut atk = NoAttack;
        let y = Vector::from_slice(&[x]);
        prop_assert!(atk.tamper(t, &y).approx_eq(&y));
        prop_assert!(!atk.is_active(t));
        prop_assert_eq!(atk.onset(), None);
        prop_assert_eq!(atk.end(), None);
    }
}
