use awsad_linalg::Vector;

use crate::SensorAttack;

/// Sensor-mask combinator: applies an inner [`SensorAttack`] to a
/// chosen **subset of output channels**, leaving every other channel
/// untouched.
///
/// The paper's evaluation (and every attack in this crate) tampers the
/// whole measurement vector at once; real sensor falsification
/// compromises *individual sensors*. `PerSensor` lifts any existing
/// whole-vector attack to that model: the selected channels of `y_t`
/// are gathered into a compressed vector, the inner attack tampers
/// that vector (so a stateful inner attack — delay, replay — records
/// per-selected-channel history in compressed coordinates), and the
/// tampered values are scattered back into their original positions.
///
/// ```
/// use awsad_attack::{AttackWindow, BiasAttack, PerSensor, SensorAttack};
/// use awsad_linalg::Vector;
///
/// // Bias only sensor 2 of a 3-sensor plant.
/// let mut atk = PerSensor::new(
///     vec![2],
///     BiasAttack::new(AttackWindow::from_step(5), Vector::from_slice(&[1.0])),
/// )
/// .unwrap();
/// let y = Vector::from_slice(&[4.0, 5.0, 6.0]);
/// assert_eq!(atk.tamper(5, &y).as_slice(), &[4.0, 5.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerSensor<A> {
    sensors: Vec<usize>,
    inner: A,
}

impl<A: SensorAttack> PerSensor<A> {
    /// Wraps `inner` so it attacks only the output channels listed in
    /// `sensors` (zero-based indices into the measurement vector).
    /// The inner attack must be dimensioned for `sensors.len()`
    /// channels, not the full measurement.
    ///
    /// Returns `None` when `sensors` is empty or contains a duplicate
    /// (a duplicated index would silently drop one of the two
    /// tampered values on scatter).
    pub fn new(sensors: Vec<usize>, inner: A) -> Option<Self> {
        if sensors.is_empty() {
            return None;
        }
        let mut seen = sensors.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(PerSensor { sensors, inner })
    }

    /// The attacked channel indices, in scatter order.
    pub fn sensors(&self) -> &[usize] {
        &self.sensors
    }

    /// The wrapped attack.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: SensorAttack> SensorAttack for PerSensor<A> {
    /// # Panics
    ///
    /// If a configured sensor index is out of range for `y`, or the
    /// inner attack returns a vector whose length differs from the
    /// number of selected sensors.
    fn tamper(&mut self, t: usize, y: &Vector) -> Vector {
        let compressed = Vector::from_vec(self.sensors.iter().map(|&s| y[s]).collect::<Vec<f64>>());
        let tampered = self.inner.tamper(t, &compressed);
        assert_eq!(
            tampered.len(),
            self.sensors.len(),
            "inner attack must preserve the selected-channel dimension"
        );
        let mut out = y.clone();
        for (k, &s) in self.sensors.iter().enumerate() {
            out[s] = tampered[k];
        }
        out
    }

    fn is_active(&self, t: usize) -> bool {
        self.inner.is_active(t)
    }

    fn onset(&self) -> Option<usize> {
        self.inner.onset()
    }

    fn end(&self) -> Option<usize> {
        self.inner.end()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackWindow, BiasAttack, DelayAttack, NoAttack, ReplayAttack};

    fn y3(a: f64, b: f64, c: f64) -> Vector {
        Vector::from_slice(&[a, b, c])
    }

    #[test]
    fn rejects_empty_and_duplicate_masks() {
        assert!(PerSensor::new(vec![], NoAttack).is_none());
        assert!(PerSensor::new(vec![1, 0, 1], NoAttack).is_none());
        assert!(PerSensor::new(vec![2, 0], NoAttack).is_some());
    }

    #[test]
    fn bias_hits_only_selected_channels() {
        let mut atk = PerSensor::new(
            vec![0, 2],
            BiasAttack::new(
                AttackWindow::from_step(3),
                Vector::from_slice(&[10.0, -10.0]),
            ),
        )
        .unwrap();
        // Before onset: identity.
        assert_eq!(
            atk.tamper(2, &y3(1.0, 2.0, 3.0)).as_slice(),
            &[1.0, 2.0, 3.0]
        );
        // Active: channel 1 untouched, 0 and 2 biased.
        assert_eq!(
            atk.tamper(3, &y3(1.0, 2.0, 3.0)).as_slice(),
            &[11.0, 2.0, -7.0]
        );
        assert!(atk.is_active(3));
        assert_eq!(atk.onset(), Some(3));
    }

    #[test]
    fn delay_history_is_per_selected_channel() {
        // Delay channel 1 by 2 steps; channels 0 and 2 stay live.
        let mut atk =
            PerSensor::new(vec![1], DelayAttack::new(AttackWindow::from_step(3), 2)).unwrap();
        for t in 0..3 {
            let v = t as f64;
            assert_eq!(
                atk.tamper(t, &y3(v, 10.0 + v, 20.0 + v)).as_slice(),
                &[v, 10.0 + v, 20.0 + v]
            );
        }
        // Step 3 delivers channel 1's step-1 value; others current.
        assert_eq!(
            atk.tamper(3, &y3(3.0, 13.0, 23.0)).as_slice(),
            &[3.0, 11.0, 23.0]
        );
    }

    #[test]
    fn replay_scatters_recorded_values() {
        // Replay channel 2 from a 2-step-early recording window.
        let mut atk = PerSensor::new(
            vec![2],
            ReplayAttack::new(AttackWindow::new(4, Some(2)), 0, 2),
        )
        .unwrap();
        let mut last = Vec::new();
        for t in 0..6 {
            let v = t as f64;
            last = atk.tamper(t, &y3(v, v, 100.0 + v)).as_slice().to_vec();
        }
        // Channels 0/1 always live.
        assert_eq!(last[0], 5.0);
        assert_eq!(last[1], 5.0);
        // Channel 2 replays recorded history, not the live 105.0.
        assert_ne!(last[2], 105.0);
    }

    #[test]
    fn reset_propagates_to_inner() {
        let mut atk =
            PerSensor::new(vec![0], DelayAttack::new(AttackWindow::from_step(1), 1)).unwrap();
        atk.tamper(0, &y3(1.0, 0.0, 0.0));
        atk.reset();
        // Fresh history: step 0 records anew, step 1 delays to it.
        assert_eq!(atk.tamper(0, &y3(7.0, 0.0, 0.0))[0], 7.0);
        assert_eq!(atk.tamper(1, &y3(8.0, 0.0, 0.0))[0], 7.0);
    }

    #[test]
    fn metadata_delegates() {
        let atk = PerSensor::new(
            vec![1],
            BiasAttack::new(AttackWindow::new(4, Some(2)), Vector::from_slice(&[1.0])),
        )
        .unwrap();
        assert_eq!(atk.onset(), Some(4));
        assert_eq!(atk.end(), Some(6));
        assert_eq!(atk.name(), "bias");
        assert_eq!(atk.sensors(), &[1]);
        assert_eq!(atk.inner().bias().len(), 1);
    }

    /// An inner attack that misbehaves by emitting a fixed-size vector
    /// regardless of input — the scatter must refuse it.
    struct WrongSize;

    impl SensorAttack for WrongSize {
        fn tamper(&mut self, _t: usize, _y: &Vector) -> Vector {
            Vector::zeros(5)
        }
        fn is_active(&self, _t: usize) -> bool {
            true
        }
        fn onset(&self) -> Option<usize> {
            Some(0)
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "wrong-size"
        }
    }

    #[test]
    #[should_panic(expected = "selected-channel dimension")]
    fn wrong_inner_dimension_panics() {
        let mut atk = PerSensor::new(vec![0], WrongSize).unwrap();
        atk.tamper(0, &y3(0.0, 0.0, 0.0));
    }
}
