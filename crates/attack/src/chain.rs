use awsad_linalg::Vector;

use crate::SensorAttack;

/// Composition of several sensor attacks applied in sequence: the
/// output of one stage feeds the next.
///
/// Real campaigns combine primitives — e.g. a delay that masks a
/// concurrent bias, or a replay that hides a ramp already in progress.
/// The chain's onset is the earliest member onset; it is active
/// whenever any member is; its end is the latest member end (or
/// open-ended if any member is).
///
/// # Example
///
/// ```
/// use awsad_attack::{AttackWindow, BiasAttack, ChainedAttack, DelayAttack, SensorAttack};
/// use awsad_linalg::Vector;
///
/// let chain = ChainedAttack::new(vec![
///     Box::new(DelayAttack::new(AttackWindow::new(10, Some(20)), 3)),
///     Box::new(BiasAttack::new(
///         AttackWindow::new(15, Some(10)),
///         Vector::from_slice(&[0.5]),
///     )),
/// ]);
/// assert_eq!(chain.onset(), Some(10));
/// assert_eq!(chain.end(), Some(30));
/// ```
pub struct ChainedAttack {
    stages: Vec<Box<dyn SensorAttack + Send>>,
}

impl ChainedAttack {
    /// Creates a chain; stages apply in the given order.
    ///
    /// # Panics
    ///
    /// Panics on an empty stage list.
    pub fn new(stages: Vec<Box<dyn SensorAttack + Send>>) -> Self {
        assert!(!stages.is_empty(), "a chain needs at least one stage");
        ChainedAttack { stages }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl std::fmt::Debug for ChainedAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.stages.iter().map(|s| s.name()).collect();
        f.debug_struct("ChainedAttack")
            .field("stages", &names)
            .finish()
    }
}

impl SensorAttack for ChainedAttack {
    fn tamper(&mut self, t: usize, y: &Vector) -> Vector {
        let mut current = y.clone();
        for stage in &mut self.stages {
            current = stage.tamper(t, &current);
        }
        current
    }

    fn is_active(&self, t: usize) -> bool {
        self.stages.iter().any(|s| s.is_active(t))
    }

    fn onset(&self) -> Option<usize> {
        self.stages.iter().filter_map(|s| s.onset()).min()
    }

    fn end(&self) -> Option<usize> {
        // Open-ended if any member is (None while having an onset).
        let mut latest = None;
        for s in &self.stages {
            if s.onset().is_some() {
                match s.end() {
                    None => return None,
                    Some(e) => latest = Some(latest.map_or(e, |l: usize| l.max(e))),
                }
            }
        }
        latest
    }

    fn reset(&mut self) {
        for s in &mut self.stages {
            s.reset();
        }
    }

    fn name(&self) -> &'static str {
        "chained"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackWindow, BiasAttack, DelayAttack, NoAttack};

    fn v(x: f64) -> Vector {
        Vector::from_slice(&[x])
    }

    #[test]
    fn stages_compose_in_order() {
        // Bias of +1 then bias of +2: total +3 while both active.
        let mut chain = ChainedAttack::new(vec![
            Box::new(BiasAttack::new(AttackWindow::new(0, Some(5)), v(1.0))),
            Box::new(BiasAttack::new(AttackWindow::new(3, Some(5)), v(2.0))),
        ]);
        assert_eq!(chain.tamper(0, &v(0.0))[0], 1.0);
        assert_eq!(chain.tamper(3, &v(0.0))[0], 3.0);
        assert_eq!(chain.tamper(6, &v(0.0))[0], 2.0);
        assert_eq!(chain.tamper(8, &v(0.0))[0], 0.0);
    }

    #[test]
    fn delay_feeds_bias() {
        // The delay stage sees the raw signal; the bias applies to the
        // delayed value.
        let mut chain = ChainedAttack::new(vec![
            Box::new(DelayAttack::new(AttackWindow::from_step(2), 1)),
            Box::new(BiasAttack::new(AttackWindow::from_step(2), v(10.0))),
        ]);
        chain.tamper(0, &v(0.0));
        chain.tamper(1, &v(1.0));
        // Step 2: delayed value = step-1 signal (1.0) + bias 10.
        assert_eq!(chain.tamper(2, &v(2.0))[0], 11.0);
    }

    #[test]
    fn window_metadata_merges() {
        let chain = ChainedAttack::new(vec![
            Box::new(BiasAttack::new(AttackWindow::new(10, Some(5)), v(1.0))),
            Box::new(BiasAttack::new(AttackWindow::new(20, Some(5)), v(1.0))),
        ]);
        assert_eq!(chain.onset(), Some(10));
        assert_eq!(chain.end(), Some(25));
        assert!(chain.is_active(12));
        assert!(!chain.is_active(17));
        assert!(chain.is_active(22));
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
    }

    #[test]
    fn open_ended_member_makes_chain_open_ended() {
        let chain = ChainedAttack::new(vec![
            Box::new(BiasAttack::new(AttackWindow::new(5, Some(2)), v(1.0))),
            Box::new(BiasAttack::new(AttackWindow::from_step(8), v(1.0))),
        ]);
        assert_eq!(chain.end(), None);
    }

    #[test]
    fn benign_members_do_not_define_onset() {
        let chain = ChainedAttack::new(vec![
            Box::new(NoAttack),
            Box::new(BiasAttack::new(AttackWindow::new(7, Some(3)), v(1.0))),
        ]);
        assert_eq!(chain.onset(), Some(7));
        assert_eq!(chain.end(), Some(10));
    }

    #[test]
    fn reset_resets_all_stages() {
        let mut chain = ChainedAttack::new(vec![Box::new(DelayAttack::new(
            AttackWindow::from_step(1),
            1,
        ))]);
        chain.tamper(0, &v(5.0));
        chain.reset();
        chain.tamper(0, &v(9.0));
        assert_eq!(chain.tamper(1, &v(1.0))[0], 9.0);
        assert_eq!(chain.name(), "chained");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_panics() {
        let _ = ChainedAttack::new(vec![]);
    }
}
