use awsad_linalg::Vector;

use crate::{AttackWindow, SensorAttack};

/// Replay attack: while active, the delivered measurement is a
/// previously recorded one (§6.1.1), looped if the attack outlasts the
/// recording.
///
/// The attacker records `record_len` consecutive measurements starting
/// at `record_start` (which must precede the attack window), then
/// replays the recording from its beginning once the window opens:
///
/// ```text
/// y'_t = y_{record_start + ((t − start) mod record_len)}
/// ```
///
/// A classic use is hiding a reference change or an ongoing physical
/// drift behind stale-but-plausible data.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayAttack {
    window: AttackWindow,
    record_start: usize,
    record_len: usize,
    recording: Vec<Vector>,
}

impl ReplayAttack {
    /// Creates a replay attack.
    ///
    /// # Panics
    ///
    /// Panics when `record_len == 0` or when the recording interval
    /// `[record_start, record_start + record_len)` extends past the
    /// attack start (the attacker cannot replay data it has not yet
    /// recorded).
    pub fn new(window: AttackWindow, record_start: usize, record_len: usize) -> Self {
        assert!(record_len > 0, "replay recording must be non-empty");
        assert!(
            record_start + record_len <= window.start(),
            "recording must finish before the attack starts"
        );
        ReplayAttack {
            window,
            record_start,
            record_len,
            recording: Vec::new(),
        }
    }

    /// First recorded step.
    pub fn record_start(&self) -> usize {
        self.record_start
    }

    /// Number of recorded steps.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// The attack window.
    pub fn window(&self) -> &AttackWindow {
        &self.window
    }
}

impl SensorAttack for ReplayAttack {
    fn tamper(&mut self, t: usize, y: &Vector) -> Vector {
        if t >= self.record_start && self.recording.len() < self.record_len {
            // Record while the recording window is open. Robust to a
            // simulator skipping steps: we record the first
            // `record_len` observations at or after `record_start`.
            self.recording.push(y.clone());
        }
        if self.window.contains(t) && !self.recording.is_empty() {
            let idx = (t - self.window.start()) % self.recording.len();
            self.recording[idx].clone()
        } else {
            y.clone()
        }
    }

    fn is_active(&self, t: usize) -> bool {
        self.window.contains(t)
    }

    fn onset(&self) -> Option<usize> {
        Some(self.window.start())
    }

    fn end(&self) -> Option<usize> {
        self.window.end()
    }

    fn reset(&mut self) {
        self.recording.clear();
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(v: f64) -> Vector {
        Vector::from_slice(&[v])
    }

    #[test]
    fn replays_recorded_segment() {
        let mut atk = ReplayAttack::new(AttackWindow::new(4, Some(4)), 1, 2);
        assert_eq!(atk.tamper(0, &reading(0.0))[0], 0.0);
        assert_eq!(atk.tamper(1, &reading(1.0))[0], 1.0); // recorded
        assert_eq!(atk.tamper(2, &reading(2.0))[0], 2.0); // recorded
        assert_eq!(atk.tamper(3, &reading(3.0))[0], 3.0);
        // Active: replays 1.0, 2.0, 1.0, 2.0 …
        assert_eq!(atk.tamper(4, &reading(4.0))[0], 1.0);
        assert_eq!(atk.tamper(5, &reading(5.0))[0], 2.0);
        assert_eq!(atk.tamper(6, &reading(6.0))[0], 1.0);
        assert_eq!(atk.tamper(7, &reading(7.0))[0], 2.0);
        // Expired.
        assert_eq!(atk.tamper(8, &reading(8.0))[0], 8.0);
    }

    #[test]
    #[should_panic(expected = "finish before")]
    fn recording_overlapping_attack_panics() {
        let _ = ReplayAttack::new(AttackWindow::from_step(3), 2, 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_recording_panics() {
        let _ = ReplayAttack::new(AttackWindow::from_step(3), 0, 0);
    }

    #[test]
    fn reset_clears_recording() {
        let mut atk = ReplayAttack::new(AttackWindow::from_step(2), 0, 2);
        atk.tamper(0, &reading(1.0));
        atk.tamper(1, &reading(2.0));
        atk.reset();
        atk.tamper(0, &reading(10.0));
        atk.tamper(1, &reading(20.0));
        assert_eq!(atk.tamper(2, &reading(0.0))[0], 10.0);
    }

    #[test]
    fn metadata() {
        let atk = ReplayAttack::new(AttackWindow::new(10, Some(3)), 5, 4);
        assert_eq!(atk.onset(), Some(10));
        assert_eq!(atk.record_start(), 5);
        assert_eq!(atk.record_len(), 4);
        assert_eq!(atk.name(), "replay");
        assert!(atk.is_active(12));
        assert!(!atk.is_active(13));
    }

    #[test]
    fn multi_dimensional_measurements() {
        let mut atk = ReplayAttack::new(AttackWindow::from_step(1), 0, 1);
        let y0 = Vector::from_slice(&[1.0, -1.0]);
        atk.tamper(0, &y0);
        let replayed = atk.tamper(1, &Vector::from_slice(&[9.0, 9.0]));
        assert_eq!(replayed, y0);
    }
}
