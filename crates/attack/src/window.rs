use std::fmt;

/// The interval of control steps during which an attack tampers with
/// measurements: `[start, start + duration)`, or `[start, ∞)` when the
/// duration is open-ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttackWindow {
    start: usize,
    duration: Option<usize>,
}

impl AttackWindow {
    /// Creates a window starting at step `start` lasting `duration`
    /// steps (`None` = until the end of the episode).
    pub fn new(start: usize, duration: Option<usize>) -> Self {
        AttackWindow { start, duration }
    }

    /// A window that never ends once started.
    pub fn from_step(start: usize) -> Self {
        AttackWindow {
            start,
            duration: None,
        }
    }

    /// First attacked step.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of attacked steps, or `None` when open-ended.
    pub fn duration(&self) -> Option<usize> {
        self.duration
    }

    /// One past the last attacked step, or `None` when open-ended.
    pub fn end(&self) -> Option<usize> {
        self.duration.map(|d| self.start.saturating_add(d))
    }

    /// Whether step `t` falls inside the window.
    pub fn contains(&self, t: usize) -> bool {
        t >= self.start && self.end().is_none_or(|e| t < e)
    }
}

impl fmt::Display for AttackWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end() {
            Some(e) => write!(f, "[{}, {})", self.start, e),
            None => write!(f, "[{}, ∞)", self.start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_window() {
        let w = AttackWindow::new(10, Some(5));
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(14));
        assert!(!w.contains(15));
        assert_eq!(w.end(), Some(15));
    }

    #[test]
    fn open_window() {
        let w = AttackWindow::from_step(79);
        assert!(!w.contains(78));
        assert!(w.contains(79));
        assert!(w.contains(1_000_000));
        assert_eq!(w.end(), None);
        assert_eq!(w.duration(), None);
    }

    #[test]
    fn zero_duration_never_active() {
        let w = AttackWindow::new(5, Some(0));
        assert!(!w.contains(5));
    }

    #[test]
    fn saturating_end() {
        let w = AttackWindow::new(usize::MAX, Some(10));
        assert_eq!(w.end(), Some(usize::MAX));
    }

    #[test]
    fn display() {
        assert_eq!(AttackWindow::new(1, Some(2)).to_string(), "[1, 3)");
        assert_eq!(AttackWindow::from_step(4).to_string(), "[4, ∞)");
    }
}
