use awsad_linalg::Vector;

use crate::{AttackWindow, SensorAttack};

/// Stealthy ramp (incremental bias) attack: while active, the
/// delivered measurement is `y_t + slope · min(k, cap_steps)` where
/// `k` counts steps since the onset.
///
/// The paper's bias scenario "replaces sensor data with arbitrary
/// values"; the adversarially chosen schedule in the stealthy-attack
/// literature the paper builds on (Urbina et al., CCS'16 — the
/// paper's reference 10) grows the corruption gradually so each
/// per-step residual
/// stays below the detection threshold while the physical plant is
/// steadily dragged toward the unsafe region. A constant-offset jump
/// (see [`BiasAttack`](crate::BiasAttack)) is trivially caught by any
/// window size at its onset discontinuity; the ramp is the variant
/// that actually exercises the delay/usability trade-off.
///
/// Once the accumulated offset reaches the per-dimension `cap`
/// (`slope · cap_steps`), it stays constant.
#[derive(Debug, Clone, PartialEq)]
pub struct RampAttack {
    window: AttackWindow,
    slope: Vector,
    cap_steps: usize,
}

impl RampAttack {
    /// Creates a ramp attack growing by `slope` per step for
    /// `cap_steps` steps, then holding.
    ///
    /// # Panics
    ///
    /// Panics when `cap_steps == 0` (the attack would do nothing).
    pub fn new(window: AttackWindow, slope: Vector, cap_steps: usize) -> Self {
        assert!(cap_steps > 0, "ramp must grow for at least one step");
        RampAttack {
            window,
            slope,
            cap_steps,
        }
    }

    /// Per-step growth vector.
    pub fn slope(&self) -> &Vector {
        &self.slope
    }

    /// Number of growth steps before the offset saturates.
    pub fn cap_steps(&self) -> usize {
        self.cap_steps
    }

    /// The final (saturated) offset vector.
    pub fn final_offset(&self) -> Vector {
        self.slope.scale(self.cap_steps as f64)
    }

    /// The attack window.
    pub fn window(&self) -> &AttackWindow {
        &self.window
    }
}

impl SensorAttack for RampAttack {
    fn tamper(&mut self, t: usize, y: &Vector) -> Vector {
        assert_eq!(
            y.len(),
            self.slope.len(),
            "ramp dimension must match measurement dimension"
        );
        if self.window.contains(t) {
            let k = (t - self.window.start() + 1).min(self.cap_steps);
            y + &self.slope.scale(k as f64)
        } else {
            y.clone()
        }
    }

    fn is_active(&self, t: usize) -> bool {
        self.window.contains(t)
    }

    fn onset(&self) -> Option<usize> {
        Some(self.window.start())
    }

    fn end(&self) -> Option<usize> {
        self.window.end()
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "bias-ramp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64) -> Vector {
        Vector::from_slice(&[x])
    }

    #[test]
    fn grows_linearly_then_saturates() {
        let mut atk = RampAttack::new(AttackWindow::from_step(10), v(0.5), 3);
        let y = v(1.0);
        assert_eq!(atk.tamper(9, &y)[0], 1.0);
        assert_eq!(atk.tamper(10, &y)[0], 1.5);
        assert_eq!(atk.tamper(11, &y)[0], 2.0);
        assert_eq!(atk.tamper(12, &y)[0], 2.5);
        assert_eq!(atk.tamper(13, &y)[0], 2.5); // saturated
        assert_eq!(atk.tamper(100, &y)[0], 2.5);
    }

    #[test]
    fn window_end_stops_attack() {
        let mut atk = RampAttack::new(AttackWindow::new(0, Some(2)), v(1.0), 10);
        let y = v(0.0);
        assert_eq!(atk.tamper(0, &y)[0], 1.0);
        assert_eq!(atk.tamper(1, &y)[0], 2.0);
        assert_eq!(atk.tamper(2, &y)[0], 0.0);
    }

    #[test]
    fn final_offset_product() {
        let atk = RampAttack::new(AttackWindow::from_step(0), v(0.25), 8);
        assert_eq!(atk.final_offset()[0], 2.0);
        assert_eq!(atk.cap_steps(), 8);
        assert_eq!(atk.slope()[0], 0.25);
    }

    #[test]
    fn per_step_increment_is_slope() {
        // Stealth property: consecutive deliveries differ by exactly
        // the slope (plus whatever the true signal does).
        let mut atk = RampAttack::new(AttackWindow::from_step(0), v(0.01), 100);
        let y = v(0.0);
        let a = atk.tamper(5, &y)[0];
        let b = atk.tamper(6, &y)[0];
        assert!((b - a - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_cap_panics() {
        let _ = RampAttack::new(AttackWindow::from_step(0), v(1.0), 0);
    }

    #[test]
    fn metadata() {
        let atk = RampAttack::new(AttackWindow::new(7, None), v(1.0), 5);
        assert_eq!(atk.onset(), Some(7));
        assert!(atk.is_active(7));
        assert!(!atk.is_active(6));
        assert_eq!(atk.name(), "bias-ramp");
    }
}
