use awsad_linalg::Vector;

use crate::{AttackWindow, SensorAttack};

/// Additive bias attack: while active, the delivered measurement is
/// `y_t + bias`.
///
/// This models the paper's bias scenario ("replaces sensor data with
/// arbitrary values") as well as the testbed experiment, where a
/// constant `+2.5 m/s` offset is injected into the speed sensor at the
/// end of step 79. A zero entry in `bias` leaves that sensor dimension
/// untouched, producing the partial-compromise case
/// `0 < ‖e_t‖₀ < n` of the threat model.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasAttack {
    window: AttackWindow,
    bias: Vector,
}

impl BiasAttack {
    /// Creates a bias attack active in `window` adding `bias` to every
    /// measurement.
    pub fn new(window: AttackWindow, bias: Vector) -> Self {
        BiasAttack { window, bias }
    }

    /// The configured bias vector.
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// The attack window.
    pub fn window(&self) -> &AttackWindow {
        &self.window
    }
}

impl SensorAttack for BiasAttack {
    fn tamper(&mut self, t: usize, y: &Vector) -> Vector {
        assert_eq!(
            y.len(),
            self.bias.len(),
            "bias dimension must match measurement dimension"
        );
        if self.window.contains(t) {
            y + &self.bias
        } else {
            y.clone()
        }
    }

    fn is_active(&self, t: usize) -> bool {
        self.window.contains(t)
    }

    fn onset(&self) -> Option<usize> {
        Some(self.window.start())
    }

    fn end(&self) -> Option<usize> {
        self.window.end()
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "bias"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_bias_only_inside_window() {
        let mut atk = BiasAttack::new(
            AttackWindow::new(2, Some(2)),
            Vector::from_slice(&[1.0, -0.5]),
        );
        let y = Vector::from_slice(&[0.0, 0.0]);
        assert_eq!(atk.tamper(1, &y), y);
        assert_eq!(atk.tamper(2, &y).as_slice(), &[1.0, -0.5]);
        assert_eq!(atk.tamper(3, &y).as_slice(), &[1.0, -0.5]);
        assert_eq!(atk.tamper(4, &y), y);
    }

    #[test]
    fn partial_compromise_leaves_zero_dims() {
        let mut atk = BiasAttack::new(AttackWindow::from_step(0), Vector::from_slice(&[0.0, 3.0]));
        let y = Vector::from_slice(&[7.0, 7.0]);
        let tampered = atk.tamper(0, &y);
        assert_eq!(tampered.as_slice(), &[7.0, 10.0]);
    }

    #[test]
    fn metadata() {
        let atk = BiasAttack::new(AttackWindow::new(5, None), Vector::zeros(1));
        assert_eq!(atk.onset(), Some(5));
        assert!(atk.is_active(5));
        assert!(!atk.is_active(4));
        assert_eq!(atk.name(), "bias");
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn dimension_mismatch_panics() {
        let mut atk = BiasAttack::new(AttackWindow::from_step(0), Vector::zeros(2));
        atk.tamper(0, &Vector::zeros(3));
    }
}
