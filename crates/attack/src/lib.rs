//! Sensor attack models for the AWSAD detection system.
//!
//! The DAC'22 paper evaluates its detector under three sensor attack
//! scenarios (§6.1.1):
//!
//! * **Bias** — "replaces sensor data with arbitrary values"; modeled
//!   as an additive offset vector, the classic transduction-attack
//!   effect ([`BiasAttack`]).
//! * **Delay** — "delays sensor measurements sent to the controller
//!   for a certain time period, so that the controller cannot update
//!   the current state estimate in time" ([`DelayAttack`]).
//! * **Replay** — "replaces sensor data with previously recorded ones"
//!   ([`ReplayAttack`]).
//!
//! Beyond the paper's three, the crate ships adversarial variants of
//! the bias scenario:
//!
//! * [`RampAttack`] — the offset grows incrementally (no onset
//!   discontinuity), the stealthy schedule of the literature the paper
//!   builds on;
//! * [`RandomValueAttack`] — the measurement is *replaced* by draws
//!   from a box ("arbitrary values" taken literally);
//! * [`ChainedAttack`] — sequential composition of attacks (e.g. a
//!   delay masking a concurrent bias);
//! * [`PerSensor`] — a sensor-mask combinator lifting any of the above
//!   from whole-vector tampering to falsification of a chosen subset
//!   of output channels (the per-sensor attack model of the
//!   related-work baselines).
//!
//! All attacks implement [`SensorAttack`], which the closed-loop
//! simulator interposes between the plant's true measurement and the
//! controller's state estimate. Attacks see every measurement (so
//! delay/replay can record history before activating) but only tamper
//! inside their [`AttackWindow`].
//!
//! # Example
//!
//! ```
//! use awsad_attack::{AttackWindow, BiasAttack, SensorAttack};
//! use awsad_linalg::Vector;
//!
//! let mut atk = BiasAttack::new(
//!     AttackWindow::new(10, Some(5)),
//!     Vector::from_slice(&[2.5]),
//! );
//! let clean = Vector::from_slice(&[4.0]);
//! assert_eq!(atk.tamper(9, &clean)[0], 4.0);  // before onset
//! assert_eq!(atk.tamper(10, &clean)[0], 6.5); // active
//! assert_eq!(atk.tamper(15, &clean)[0], 4.0); // expired
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod bias;
mod chain;
mod delay;
mod per_sensor;
mod ramp;
mod random_value;
mod replay;
mod window;

pub use bias::BiasAttack;
pub use chain::ChainedAttack;
pub use delay::DelayAttack;
pub use per_sensor::PerSensor;
pub use ramp::RampAttack;
pub use random_value::RandomValueAttack;
pub use replay::ReplayAttack;
pub use window::AttackWindow;

use awsad_linalg::Vector;

/// A sensor attack interposed on the measurement channel.
///
/// The simulator calls [`SensorAttack::tamper`] exactly once per
/// control step, in step order, with the *true* measurement `y_t`.
/// The returned vector is what the controller and detector see.
pub trait SensorAttack {
    /// Observes the true measurement at step `t` and returns the
    /// (possibly tampered) measurement delivered downstream.
    fn tamper(&mut self, t: usize, y: &Vector) -> Vector;

    /// Whether the attack tampers with measurements at step `t`.
    fn is_active(&self, t: usize) -> bool;

    /// The first attacked step, or `None` for a benign channel.
    fn onset(&self) -> Option<usize>;

    /// One past the last attacked step, or `None` when the attack is
    /// open-ended or absent.
    fn end(&self) -> Option<usize> {
        None
    }

    /// Clears recorded history so the object can run a fresh episode.
    fn reset(&mut self);

    /// Human-readable attack name for reports.
    fn name(&self) -> &'static str;
}

/// The benign channel: measurements pass through untouched.
///
/// Used for the false-positive arms of the evaluation, where every
/// alarm is by definition false.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NoAttack;

impl SensorAttack for NoAttack {
    fn tamper(&mut self, _t: usize, y: &Vector) -> Vector {
        y.clone()
    }

    fn is_active(&self, _t: usize) -> bool {
        false
    }

    fn onset(&self) -> Option<usize> {
        None
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_attack_is_identity() {
        let mut a = NoAttack;
        let y = Vector::from_slice(&[1.0, 2.0]);
        assert_eq!(a.tamper(0, &y), y);
        assert!(!a.is_active(100));
        assert_eq!(a.onset(), None);
        assert_eq!(a.name(), "none");
        a.reset();
    }
}
