use awsad_linalg::Vector;
use awsad_sets::BoxSet;

use crate::{AttackWindow, SensorAttack};

/// Random-value attack: while active, the attacked dimensions of the
/// measurement are *replaced* by values drawn uniformly from a box —
/// the paper's bias description taken literally ("replaces sensor
/// data with arbitrary values").
///
/// Unlike the offset-style attacks, the delivered data carries no
/// information about the plant at all; the controller flies blind on
/// white noise. Randomness comes from an embedded deterministic
/// xorshift generator seeded at construction, so episodes remain
/// reproducible without threading an external RNG through the
/// [`SensorAttack`] trait.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomValueAttack {
    window: AttackWindow,
    values: BoxSet,
    /// Which measurement dimensions are replaced (`None` entry =
    /// untouched); same length as the measurement.
    targets: Vec<bool>,
    state: u64,
    seed: u64,
}

impl RandomValueAttack {
    /// Creates the attack: dimensions flagged in `targets` are
    /// replaced by draws from `values` (a box with one interval per
    /// *measurement* dimension) while `window` is active.
    ///
    /// # Panics
    ///
    /// Panics when `targets.len() != values.dim()`, when no dimension
    /// is targeted, or when `values` is unbounded in a targeted
    /// dimension.
    pub fn new(window: AttackWindow, values: BoxSet, targets: Vec<bool>, seed: u64) -> Self {
        assert_eq!(
            targets.len(),
            values.dim(),
            "target flags must match the value box dimension"
        );
        assert!(
            targets.iter().any(|&t| t),
            "at least one dimension must be targeted"
        );
        for (i, &targeted) in targets.iter().enumerate() {
            if targeted {
                assert!(
                    values.interval(i).is_bounded(),
                    "value box must be bounded in targeted dimension {i}"
                );
            }
        }
        RandomValueAttack {
            window,
            values,
            targets,
            state: seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            seed,
        }
    }

    /// The attack window.
    pub fn window(&self) -> &AttackWindow {
        &self.window
    }

    /// xorshift64* step producing a uniform f64 in [0, 1).
    fn next_unit(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }
}

impl SensorAttack for RandomValueAttack {
    fn tamper(&mut self, t: usize, y: &Vector) -> Vector {
        assert_eq!(
            y.len(),
            self.targets.len(),
            "measurement dimension must match the attack configuration"
        );
        if !self.window.contains(t) {
            return y.clone();
        }
        let mut out = y.clone();
        for i in 0..out.len() {
            if self.targets[i] {
                let (lo, hi) = {
                    let iv = self.values.interval(i);
                    (iv.lo(), iv.hi())
                };
                out[i] = lo + self.next_unit() * (hi - lo);
            }
        }
        out
    }

    fn is_active(&self, t: usize) -> bool {
        self.window.contains(t)
    }

    fn onset(&self) -> Option<usize> {
        Some(self.window.start())
    }

    fn end(&self) -> Option<usize> {
        self.window.end()
    }

    fn reset(&mut self) {
        self.state = self.seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn name(&self) -> &'static str {
        "random-value"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attack(seed: u64) -> RandomValueAttack {
        RandomValueAttack::new(
            AttackWindow::new(5, Some(10)),
            BoxSet::from_bounds(&[2.0, -1.0], &[4.0, 1.0]).unwrap(),
            vec![true, false],
            seed,
        )
    }

    #[test]
    fn replaces_only_targeted_dims_inside_window() {
        let mut atk = attack(7);
        let y = Vector::from_slice(&[0.0, 0.5]);
        let before = atk.tamper(4, &y);
        assert_eq!(before, y);
        let during = atk.tamper(5, &y);
        assert!(during[0] >= 2.0 && during[0] < 4.0, "value {}", during[0]);
        assert_eq!(during[1], 0.5);
        let after = atk.tamper(15, &y);
        assert_eq!(after, y);
    }

    #[test]
    fn values_vary_across_steps() {
        let mut atk = attack(7);
        let y = Vector::from_slice(&[0.0, 0.0]);
        let a = atk.tamper(5, &y)[0];
        let b = atk.tamper(6, &y)[0];
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_seed_and_reset() {
        let y = Vector::from_slice(&[0.0, 0.0]);
        let mut a1 = attack(42);
        let mut a2 = attack(42);
        for t in 5..10 {
            assert_eq!(a1.tamper(t, &y), a2.tamper(t, &y));
        }
        let first = attack(42).tamper(5, &y);
        a1.reset();
        assert_eq!(a1.tamper(5, &y), first);
    }

    #[test]
    fn different_seeds_differ() {
        let y = Vector::from_slice(&[0.0, 0.0]);
        assert_ne!(attack(1).tamper(5, &y)[0], attack(2).tamper(5, &y)[0]);
    }

    #[test]
    fn draws_cover_the_range() {
        let mut atk = RandomValueAttack::new(
            AttackWindow::from_step(0),
            BoxSet::from_bounds(&[0.0], &[1.0]).unwrap(),
            vec![true],
            9,
        );
        let y = Vector::from_slice(&[0.0]);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in 0..2_000 {
            let v = atk.tamper(t, &y)[0];
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage [{lo}, {hi}]");
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn no_target_panics() {
        let _ = RandomValueAttack::new(
            AttackWindow::from_step(0),
            BoxSet::from_bounds(&[0.0], &[1.0]).unwrap(),
            vec![false],
            1,
        );
    }

    #[test]
    #[should_panic(expected = "bounded")]
    fn unbounded_targeted_box_panics() {
        let _ =
            RandomValueAttack::new(AttackWindow::from_step(0), BoxSet::entire(1), vec![true], 1);
    }

    #[test]
    fn metadata() {
        let atk = attack(1);
        assert_eq!(atk.onset(), Some(5));
        assert_eq!(atk.end(), Some(15));
        assert_eq!(atk.name(), "random-value");
    }
}
