use awsad_linalg::Vector;

use crate::{AttackWindow, SensorAttack};

/// Delay attack: while active, the delivered measurement is the one
/// recorded `delay` steps earlier, so the controller "cannot update
/// the current state estimate in time" (§6.1.1).
///
/// The attack records every observed measurement (also before its
/// window) so that a delay reaching back before the onset returns
/// genuine stale data rather than a fabricated value. If the requested
/// lag reaches before the first recorded step, the earliest available
/// measurement is delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayAttack {
    window: AttackWindow,
    delay: usize,
    history: Vec<Vector>,
}

impl DelayAttack {
    /// Creates a delay attack active in `window`, replaying the
    /// measurement from `delay` steps in the past.
    pub fn new(window: AttackWindow, delay: usize) -> Self {
        DelayAttack {
            window,
            delay,
            history: Vec::new(),
        }
    }

    /// The configured lag in control steps.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// The attack window.
    pub fn window(&self) -> &AttackWindow {
        &self.window
    }
}

impl SensorAttack for DelayAttack {
    fn tamper(&mut self, t: usize, y: &Vector) -> Vector {
        // Record in step order; the simulator guarantees one call per
        // step, but stay robust if steps are skipped by padding with
        // the latest value.
        while self.history.len() < t {
            let pad = self.history.last().cloned().unwrap_or_else(|| y.clone());
            self.history.push(pad);
        }
        if self.history.len() == t {
            self.history.push(y.clone());
        }
        if self.window.contains(t) && self.delay > 0 {
            let idx = t.saturating_sub(self.delay);
            self.history[idx].clone()
        } else {
            y.clone()
        }
    }

    fn is_active(&self, t: usize) -> bool {
        self.window.contains(t) && self.delay > 0
    }

    fn onset(&self) -> Option<usize> {
        Some(self.window.start())
    }

    fn end(&self) -> Option<usize> {
        self.window.end()
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn name(&self) -> &'static str {
        "delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(v: f64) -> Vector {
        Vector::from_slice(&[v])
    }

    #[test]
    fn delays_by_configured_lag() {
        let mut atk = DelayAttack::new(AttackWindow::from_step(3), 2);
        assert_eq!(atk.tamper(0, &reading(0.0))[0], 0.0);
        assert_eq!(atk.tamper(1, &reading(1.0))[0], 1.0);
        assert_eq!(atk.tamper(2, &reading(2.0))[0], 2.0);
        // Active: step 3 delivers the step-1 value.
        assert_eq!(atk.tamper(3, &reading(3.0))[0], 1.0);
        assert_eq!(atk.tamper(4, &reading(4.0))[0], 2.0);
    }

    #[test]
    fn lag_before_first_record_clamps() {
        let mut atk = DelayAttack::new(AttackWindow::from_step(1), 10);
        assert_eq!(atk.tamper(0, &reading(5.0))[0], 5.0);
        // Step 1 with lag 10 clamps to step 0's value.
        assert_eq!(atk.tamper(1, &reading(6.0))[0], 5.0);
    }

    #[test]
    fn window_end_restores_fresh_data() {
        let mut atk = DelayAttack::new(AttackWindow::new(2, Some(2)), 1);
        atk.tamper(0, &reading(0.0));
        atk.tamper(1, &reading(1.0));
        assert_eq!(atk.tamper(2, &reading(2.0))[0], 1.0);
        assert_eq!(atk.tamper(3, &reading(3.0))[0], 2.0);
        assert_eq!(atk.tamper(4, &reading(4.0))[0], 4.0);
    }

    #[test]
    fn zero_delay_is_inactive() {
        let mut atk = DelayAttack::new(AttackWindow::from_step(0), 0);
        assert!(!atk.is_active(0));
        assert_eq!(atk.tamper(0, &reading(9.0))[0], 9.0);
    }

    #[test]
    fn reset_clears_history() {
        let mut atk = DelayAttack::new(AttackWindow::from_step(1), 1);
        atk.tamper(0, &reading(1.0));
        atk.reset();
        // Fresh episode: step 0 recorded anew.
        assert_eq!(atk.tamper(0, &reading(7.0))[0], 7.0);
        assert_eq!(atk.tamper(1, &reading(8.0))[0], 7.0);
    }

    #[test]
    fn skipped_steps_are_padded() {
        let mut atk = DelayAttack::new(AttackWindow::from_step(5), 1);
        atk.tamper(0, &reading(1.0));
        // Jump straight to step 5: history pads steps 1..4.
        assert_eq!(atk.tamper(5, &reading(9.0))[0], 1.0);
    }

    #[test]
    fn metadata() {
        let atk = DelayAttack::new(AttackWindow::new(4, Some(2)), 3);
        assert_eq!(atk.onset(), Some(4));
        assert_eq!(atk.delay(), 3);
        assert_eq!(atk.name(), "delay");
    }
}
