//! Reachability analysis and detection-deadline estimation.
//!
//! This crate implements Section 3 of the DAC'22 paper. Given the
//! discrete LTI model of Eq. (1), the reachable set after `t` steps
//! from an initial state `x₀` under *any* admissible control sequence
//! and bounded uncertainty is over-approximated by (Eq. 2)
//!
//! ```text
//! R̄(x₀, t) = A^t x₀ ⊕ ⊕_{i=0}^{t-1} A^i B B_U ⊕ ⊕_{i=0}^{t-1} A^i B_ε
//! ```
//!
//! where `B_U = c + Q·B_(∞)` is the control-input box and `B_ε` the
//! uncertainty ball. Materializing Minkowski sums is expensive, so the
//! per-dimension bounds are evaluated with support functions
//! (Eqs. 3–5):
//!
//! ```text
//! ub_d(t) = e_dᵀA^t x₀ + Σᵢ e_dᵀA^iB c + Σᵢ ‖(A^iBQ)ᵀe_d‖₁ + Σᵢ ε‖(A^i)ᵀe_d‖₂
//! lb_d(t) = e_dᵀA^t x₀ + Σᵢ e_dᵀA^iB c − Σᵢ ‖(A^iBQ)ᵀe_d‖₁ − Σᵢ ε‖(A^i)ᵀe_d‖₂
//! ```
//!
//! **Only the first term depends on `x₀`.** [`DeadlineEstimator`]
//! therefore precomputes the cumulative sums for every step up to the
//! maximum window size at construction — and additionally folds them
//! with the safe set into per-step *admissible state boxes*, so each
//! online deadline query costs one matrix-vector product plus `2n`
//! comparisons per searched step (`O(w_m · n²)`), satisfying the
//! paper's low-overhead requirement for run-time use. The `*_with`
//! query variants ([`DeadlineEstimator::checked_deadline_with`],
//! [`DeadlineEstimator::deadline_batch_with`]) reuse caller-held
//! [`DeadlineScratch`]/[`BatchScratch`] buffers so steady-state
//! queries are allocation-free, and the batch walk advances all states
//! per step with one `A · X` kernel call. A deliberately naive
//! re-computing implementation ([`naive_deadline`]) is kept for the
//! ablation benchmark, and the seed's per-step walk survives as
//! [`DeadlineEstimator::reference_deadline`] for equivalence testing.
//!
//! The *deadline search* (§3.3) walks `t = 0, 1, 2, …` until the
//! reachable box escapes the safe set or the maximum window size is
//! reached; the step before the first escape is the detection deadline
//! `t_d`.
//!
//! Beyond the paper's axis-aligned safe boxes,
//! [`PolytopeDeadlineEstimator`] runs the same machinery against
//! arbitrary linear constraints (`awsad_sets::Polytope`) — the
//! support-function check is exact per face normal, so coupled
//! constraints like "position + velocity ≤ bound" cost one extra dot
//! product per face and nothing in conservatism.
//!
//! # Example
//!
//! ```
//! use awsad_linalg::{Matrix, Vector};
//! use awsad_reach::{Deadline, DeadlineEstimator, ReachConfig};
//! use awsad_sets::BoxSet;
//!
//! // Pure integrator x_{t+1} = x_t + u_t, |u| <= 1, safe |x| <= 5.
//! let a = Matrix::identity(1);
//! let b = Matrix::from_rows(&[&[1.0]]).unwrap();
//! let cfg = ReachConfig::new(
//!     BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
//!     0.0,
//!     BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap(),
//!     100,
//! ).unwrap();
//! let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
//!
//! // From the origin the state can escape |x|<=5 at step 6, so the
//! // deadline is 5 steps.
//! assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Within(5));
//! // From x = 3 it can escape at step 3: deadline 2.
//! assert_eq!(est.deadline(&Vector::from_slice(&[3.0])), Deadline::Within(2));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod deadline;
mod error;
mod estimator;
mod naive;
mod polytope_estimator;

pub use cache::{CacheConfig, CacheStats, DeadlineCache};
pub use deadline::Deadline;
pub use error::ReachError;
pub use estimator::{BatchScratch, DeadlineEstimator, DeadlineScratch, ReachConfig};
pub use naive::naive_deadline;
pub use polytope_estimator::PolytopeDeadlineEstimator;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ReachError>;
