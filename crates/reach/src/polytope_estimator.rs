use awsad_linalg::{Matrix, Vector};
use awsad_sets::{BoxSet, Polytope};

use crate::{Deadline, ReachError, Result};

/// Deadline estimator for **polytopic** safe sets — the
/// generalization of [`DeadlineEstimator`](crate::DeadlineEstimator)
/// from Table 1's axis-aligned boxes to arbitrary linear constraints
/// `normalᵀ x ≤ offset`.
///
/// The support-function machinery of §3.4 is direction-agnostic: for
/// each face normal `l` the reachable set's extent is (Eq. 3)
///
/// ```text
/// ρ_R̄(l, t) = lᵀA^t x₀ + Σ_{i<t} lᵀA^iBc
///            + Σ_{i<t} ‖(A^iBQ)ᵀl‖₁ + Σ_{i<t} ε‖(A^i)ᵀl‖₂
/// ```
///
/// and conservative safety at step `t` is `ρ_R̄(l_j, t) ≤ b_j` for
/// every face `j`. As in the box estimator, everything except the
/// `lᵀA^t x₀` term is precomputed per face and per step, so an online
/// query costs one matrix-vector product plus one dot product per
/// face per searched step.
///
/// # Example
///
/// ```
/// use awsad_linalg::{Matrix, Vector};
/// use awsad_reach::{Deadline, PolytopeDeadlineEstimator, ReachConfig};
/// use awsad_sets::{BoxSet, Halfspace, Polytope};
///
/// // Double integrator; coupled constraint: position + velocity <= 5.
/// let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap();
/// let b = Matrix::from_rows(&[&[0.0], &[0.1]]).unwrap();
/// let safe = Polytope::new(vec![
///     Halfspace::new(Vector::from_slice(&[1.0, 1.0]), 5.0).unwrap(),
/// ]).unwrap();
/// let est = PolytopeDeadlineEstimator::new(
///     &a,
///     &b,
///     BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
///     0.0,
///     safe,
///     100,
/// ).unwrap();
/// assert!(matches!(est.deadline(&Vector::zeros(2)), Deadline::Within(_)));
/// ```
#[derive(Debug, Clone)]
pub struct PolytopeDeadlineEstimator {
    a: Matrix,
    safe: Polytope,
    max_steps: usize,
    /// Per step `t`, per face `j`: the x₀-independent part of
    /// `ρ_R̄(l_j, t)` (control drift + control spread + noise spread).
    face_terms: Vec<Vec<f64>>,
    /// Per step `t`, per face `j`: `‖(A^t)ᵀ l_j‖₂`, the multiplier of
    /// an initial-state uncertainty radius.
    face_pow_norms: Vec<Vec<f64>>,
}

impl PolytopeDeadlineEstimator {
    /// Builds the estimator, performing all x₀-independent work.
    ///
    /// # Errors
    ///
    /// Same shape/validation errors as
    /// [`DeadlineEstimator::new`](crate::DeadlineEstimator::new), with
    /// the safe polytope's dimension checked against the state
    /// dimension.
    pub fn new(
        a: &Matrix,
        b: &Matrix,
        control_box: BoxSet,
        epsilon: f64,
        safe: Polytope,
        max_steps: usize,
    ) -> Result<Self> {
        if !a.is_square() {
            return Err(ReachError::StateMatrixNotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if b.rows() != n {
            return Err(ReachError::InputMatrixMismatch {
                state_dim: n,
                shape: b.shape(),
            });
        }
        if !control_box.is_bounded() {
            return Err(ReachError::InvalidControlBox {
                reason: "control-input box must be bounded",
            });
        }
        if control_box.dim() != b.cols() {
            return Err(ReachError::InvalidControlBox {
                reason: "control-box dimension must match B's column count",
            });
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(ReachError::InvalidNoiseBound { epsilon });
        }
        if max_steps == 0 {
            return Err(ReachError::ZeroHorizon);
        }
        if safe.dim() != n {
            return Err(ReachError::SafeSetMismatch {
                state_dim: n,
                safe_dim: safe.dim(),
            });
        }

        let c = control_box.center();
        let q = control_box.scaling_matrix();
        let bq = b.checked_mul(&q)?;
        let bc = b.checked_mul_vec(&c)?;
        let faces: Vec<Vector> = safe.faces().iter().map(|f| f.normal().clone()).collect();

        let mut face_terms = Vec::with_capacity(max_steps + 1);
        let mut face_pow_norms = Vec::with_capacity(max_steps + 1);
        face_terms.push(vec![0.0; faces.len()]);

        let mut a_pow = Matrix::identity(n); // A^t
        for t in 0..max_steps {
            face_pow_norms.push(
                faces
                    .iter()
                    .map(|l| {
                        a_pow
                            .checked_transpose_mul_vec(l)
                            .expect("dims checked")
                            .norm_l2()
                    })
                    .collect(),
            );
            let aibq = a_pow.checked_mul(&bq)?;
            let aibc = a_pow.checked_mul_vec(&bc)?;
            let prev = &face_terms[t];
            let next: Vec<f64> = faces
                .iter()
                .zip(prev.iter())
                .map(|(l, &acc)| {
                    let drift = l.dot(&aibc);
                    let control = aibq
                        .checked_transpose_mul_vec(l)
                        .expect("dims checked")
                        .norm_l1();
                    let noise = epsilon
                        * a_pow
                            .checked_transpose_mul_vec(l)
                            .expect("dims checked")
                            .norm_l2();
                    acc + drift + control + noise
                })
                .collect();
            face_terms.push(next);
            a_pow = a_pow.checked_mul(a)?;
        }
        face_pow_norms.push(
            faces
                .iter()
                .map(|l| {
                    a_pow
                        .checked_transpose_mul_vec(l)
                        .expect("dims checked")
                        .norm_l2()
                })
                .collect(),
        );

        Ok(PolytopeDeadlineEstimator {
            a: a.clone(),
            safe,
            max_steps,
            face_terms,
            face_pow_norms,
        })
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }

    /// The safe polytope.
    pub fn safe_set(&self) -> &Polytope {
        &self.safe
    }

    /// The search horizon.
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// Deadline search from `x0` (§3.3.2) against the polytope.
    ///
    /// # Panics
    ///
    /// Panics on a wrong-length `x0`; use
    /// [`PolytopeDeadlineEstimator::checked_deadline`] to get an error.
    pub fn deadline(&self, x0: &Vector) -> Deadline {
        self.checked_deadline(x0, 0.0)
            .expect("state dimension must match model")
    }

    /// Fallible deadline query with an initial-state uncertainty ball
    /// of radius `r0` (§3.3.1).
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x0`.
    pub fn checked_deadline(&self, x0: &Vector, r0: f64) -> Result<Deadline> {
        if x0.len() != self.state_dim() {
            return Err(ReachError::DimensionMismatch {
                expected: self.state_dim(),
                actual: x0.len(),
            });
        }
        let mut x = x0.clone();
        for t in 0..=self.max_steps {
            if t > 0 {
                x = self.a.checked_mul_vec(&x)?;
            }
            let contained = self.safe.faces().iter().enumerate().all(|(j, face)| {
                face.normal().dot(&x) + self.face_terms[t][j] + r0 * self.face_pow_norms[t][j]
                    <= face.offset()
            });
            if !contained {
                return Ok(Deadline::Within(t.saturating_sub(1)));
            }
        }
        Ok(Deadline::Beyond)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeadlineEstimator, ReachConfig};
    use awsad_sets::Halfspace;

    fn integrator_pair() -> (Matrix, Matrix) {
        (Matrix::identity(1), Matrix::from_rows(&[&[1.0]]).unwrap())
    }

    #[test]
    fn matches_box_estimator_on_box_safe_sets() {
        // Axis-aligned polytope must reproduce the box estimator
        // exactly, for every query point and radius.
        let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 0.95]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0], &[0.1]]).unwrap();
        let control = BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap();
        let safe_box = BoxSet::from_bounds(&[-1.0, -3.0], &[1.0, 3.0]).unwrap();
        let eps = 0.05;
        let horizon = 40;

        let box_est = DeadlineEstimator::new(
            &a,
            &b,
            ReachConfig::new(control.clone(), eps, safe_box.clone(), horizon).unwrap(),
        )
        .unwrap();
        let poly_est = PolytopeDeadlineEstimator::new(
            &a,
            &b,
            control,
            eps,
            Polytope::from_box(&safe_box).unwrap(),
            horizon,
        )
        .unwrap();

        for (x, y) in [
            (0.0, 0.0),
            (0.5, 0.5),
            (-0.9, 1.0),
            (0.99, 0.0),
            (0.2, -2.5),
        ] {
            let x0 = Vector::from_slice(&[x, y]);
            for r0 in [0.0, 0.05, 0.2] {
                assert_eq!(
                    poly_est.checked_deadline(&x0, r0).unwrap(),
                    box_est.checked_deadline(&x0, r0).unwrap(),
                    "mismatch at ({x}, {y}), r0 = {r0}"
                );
            }
        }
    }

    #[test]
    fn coupled_constraint_tightens_the_deadline() {
        // Double integrator: position-only box vs position+velocity
        // coupled face. The coupled constraint is violated earlier by
        // fast states, so its deadline from a moving state is tighter.
        let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0], &[0.1]]).unwrap();
        let control = BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap();

        let box_only = Polytope::from_box(
            &BoxSet::from_bounds(
                &[f64::NEG_INFINITY, f64::NEG_INFINITY],
                &[5.0, f64::INFINITY],
            )
            .unwrap(),
        )
        .unwrap();
        let coupled = Polytope::new(vec![
            Halfspace::new(Vector::from_slice(&[1.0, 0.0]), 5.0).unwrap(),
            Halfspace::new(Vector::from_slice(&[1.0, 2.0]), 5.0).unwrap(),
        ])
        .unwrap();

        let est_box =
            PolytopeDeadlineEstimator::new(&a, &b, control.clone(), 0.0, box_only, 200).unwrap();
        let est_coupled =
            PolytopeDeadlineEstimator::new(&a, &b, control, 0.0, coupled, 200).unwrap();

        let moving = Vector::from_slice(&[2.0, 1.0]);
        let d_box = est_box.deadline(&moving);
        let d_coupled = est_coupled.deadline(&moving);
        assert!(
            d_coupled.is_tighter_than(d_box) || d_coupled == d_box,
            "coupled {d_coupled:?} vs box {d_box:?}"
        );
        match (d_coupled, d_box) {
            (Deadline::Within(c), Deadline::Within(b)) => assert!(c < b),
            _ => panic!("expected finite deadlines, got {d_coupled:?} / {d_box:?}"),
        }
    }

    #[test]
    fn integrator_geometry() {
        let (a, b) = integrator_pair();
        let safe = Polytope::new(vec![
            Halfspace::new(Vector::from_slice(&[1.0]), 5.0).unwrap(),
            Halfspace::new(Vector::from_slice(&[-1.0]), 5.0).unwrap(),
        ])
        .unwrap();
        let est = PolytopeDeadlineEstimator::new(
            &a,
            &b,
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            safe,
            100,
        )
        .unwrap();
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Within(5));
        assert_eq!(
            est.deadline(&Vector::from_slice(&[3.0])),
            Deadline::Within(2)
        );
        assert_eq!(
            est.deadline(&Vector::from_slice(&[6.0])),
            Deadline::Within(0)
        );
    }

    #[test]
    fn validation_errors() {
        let (a, b) = integrator_pair();
        let control = BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap();
        let safe1 = Polytope::new(vec![
            Halfspace::new(Vector::from_slice(&[1.0]), 5.0).unwrap()
        ])
        .unwrap();
        let safe2 = Polytope::new(vec![
            Halfspace::new(Vector::from_slice(&[1.0, 0.0]), 5.0).unwrap()
        ])
        .unwrap();
        assert!(PolytopeDeadlineEstimator::new(&a, &b, control.clone(), 0.0, safe2, 10).is_err());
        assert!(
            PolytopeDeadlineEstimator::new(&a, &b, control.clone(), -1.0, safe1.clone(), 10)
                .is_err()
        );
        assert!(
            PolytopeDeadlineEstimator::new(&a, &b, control.clone(), 0.0, safe1.clone(), 0).is_err()
        );
        assert!(
            PolytopeDeadlineEstimator::new(&a, &b, BoxSet::entire(1), 0.0, safe1.clone(), 10)
                .is_err()
        );
        let est = PolytopeDeadlineEstimator::new(&a, &b, control, 0.0, safe1, 10).unwrap();
        assert!(est.checked_deadline(&Vector::zeros(2), 0.0).is_err());
    }

    #[test]
    fn initial_radius_tightens() {
        let (a, b) = integrator_pair();
        let safe = Polytope::new(vec![
            Halfspace::new(Vector::from_slice(&[1.0]), 5.0).unwrap()
        ])
        .unwrap();
        let est = PolytopeDeadlineEstimator::new(
            &a,
            &b,
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            safe,
            100,
        )
        .unwrap();
        let x0 = Vector::from_slice(&[3.0]);
        let exact = est.checked_deadline(&x0, 0.0).unwrap();
        let fuzzy = est.checked_deadline(&x0, 1.0).unwrap();
        assert!(fuzzy.is_tighter_than(exact));
    }
}
