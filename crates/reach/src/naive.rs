use awsad_linalg::Vector;
use awsad_sets::{Ball, BoxSet, Support};

use crate::{Deadline, ReachConfig, Result};

/// Deadline search that recomputes every support-function term on
/// every query, with **no** precomputation.
///
/// This is the straightforward transcription of Eqs. (3)–(5): for each
/// step `t` it rebuilds `A^i`, `A^i B` and `A^i B Q` from scratch and
/// evaluates all Minkowski-sum supports. It exists solely as the
/// baseline for the `reach_precompute` ablation benchmark, which
/// quantifies how much the cached cumulative sums in
/// [`DeadlineEstimator`](crate::DeadlineEstimator) matter for online
/// use. Results are identical; only the cost differs.
///
/// # Errors
///
/// Returns the same validation errors as
/// [`DeadlineEstimator::new`](crate::DeadlineEstimator::new) (it
/// constructs one internally for validation), plus dimension errors
/// for a wrong-length `x0`.
pub fn naive_deadline(
    a: &awsad_linalg::Matrix,
    b: &awsad_linalg::Matrix,
    config: &ReachConfig,
    x0: &Vector,
) -> Result<Deadline> {
    // Reuse the constructor's validation, then ignore its tables.
    crate::DeadlineEstimator::new(a, b, config.clone())?;
    let n = a.rows();
    let c = config.control_box().center();
    let q = config.control_box().scaling_matrix();
    let safe = config.safe_set();
    let noise_ball = Ball::euclidean(Vector::zeros(n), config.epsilon())
        .expect("validated epsilon is non-negative");

    for t in 0..=config.max_steps() {
        // Recompute everything for this t — deliberately wasteful.
        let a_t = a.pow(t)?;
        let at_x0 = a_t.checked_mul_vec(x0)?;
        let mut lo = vec![0.0; n];
        let mut hi = vec![0.0; n];
        for d in 0..n {
            let e_d = Vector::basis(n, d)?;
            let mut up = at_x0[d];
            let mut down = at_x0[d];
            for i in 0..t {
                let a_i = a.pow(i)?;
                let aib = a_i.checked_mul(b)?;
                let drift = aib.checked_mul_vec(&c)?[d];
                let aibq = aib.checked_mul(&q)?;
                let control_spread = aibq.checked_transpose_mul_vec(&e_d)?.norm_l1();
                let noise_spread = noise_ball.support(&a_i.checked_transpose_mul_vec(&e_d)?);
                up += drift + control_spread + noise_spread;
                down += drift - control_spread - noise_spread;
            }
            lo[d] = down;
            hi[d] = up;
        }
        let reach = BoxSet::from_bounds(&lo, &hi).expect("lo <= hi by construction");
        if !safe.contains_box(&reach) {
            return Ok(Deadline::Within(t.saturating_sub(1)));
        }
    }
    Ok(Deadline::Beyond)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeadlineEstimator;
    use awsad_linalg::Matrix;

    fn cfg(max_steps: usize) -> ReachConfig {
        ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.1,
            BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap(),
            max_steps,
        )
        .unwrap()
    }

    #[test]
    fn naive_matches_precomputed_integrator() {
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let config = cfg(30);
        let est = DeadlineEstimator::new(&a, &b, config.clone()).unwrap();
        for x in [-4.0, -2.0, 0.0, 1.5, 3.0, 4.9, 5.5] {
            let x0 = Vector::from_slice(&[x]);
            assert_eq!(
                naive_deadline(&a, &b, &config, &x0).unwrap(),
                est.deadline(&x0),
                "mismatch at x0 = {x}"
            );
        }
    }

    #[test]
    fn naive_matches_precomputed_2d() {
        let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 0.95]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0], &[0.1]]).unwrap();
        let config = ReachConfig::new(
            BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(),
            0.05,
            BoxSet::from_bounds(&[-1.0, -3.0], &[1.0, 3.0]).unwrap(),
            40,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, config.clone()).unwrap();
        for (x, y) in [(0.0, 0.0), (0.5, 0.5), (-0.9, 1.0), (0.99, 0.0)] {
            let x0 = Vector::from_slice(&[x, y]);
            assert_eq!(
                naive_deadline(&a, &b, &config, &x0).unwrap(),
                est.deadline(&x0),
                "mismatch at x0 = ({x}, {y})"
            );
        }
    }

    #[test]
    fn naive_validates_input() {
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let config = cfg(10);
        assert!(naive_deadline(&a, &b, &config, &Vector::zeros(2)).is_err());
    }
}
