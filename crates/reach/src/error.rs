use std::fmt;

use awsad_linalg::LinalgError;

/// Errors produced when configuring reachability analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReachError {
    /// The state matrix `A` is not square.
    StateMatrixNotSquare {
        /// Offending shape.
        shape: (usize, usize),
    },
    /// `B`'s row count does not match `A`'s dimension.
    InputMatrixMismatch {
        /// State dimension.
        state_dim: usize,
        /// Offending shape of `B`.
        shape: (usize, usize),
    },
    /// The control-input box must be bounded (actuator capability is
    /// finite) and match `B`'s column count.
    InvalidControlBox {
        /// Explanation.
        reason: &'static str,
    },
    /// The safe set's dimension does not match the state dimension.
    SafeSetMismatch {
        /// State dimension.
        state_dim: usize,
        /// Safe-set dimension.
        safe_dim: usize,
    },
    /// The uncertainty bound ε is negative or not finite.
    InvalidNoiseBound {
        /// Offending bound.
        epsilon: f64,
    },
    /// The maximum search horizon is zero.
    ZeroHorizon,
    /// A state vector supplied at query time has the wrong length.
    DimensionMismatch {
        /// Expected state dimension.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::StateMatrixNotSquare { shape } => {
                write!(
                    f,
                    "state matrix A must be square, got {}x{}",
                    shape.0, shape.1
                )
            }
            ReachError::InputMatrixMismatch { state_dim, shape } => write!(
                f,
                "input matrix B must have {state_dim} rows, got {}x{}",
                shape.0, shape.1
            ),
            ReachError::InvalidControlBox { reason } => {
                write!(f, "invalid control-input box: {reason}")
            }
            ReachError::SafeSetMismatch {
                state_dim,
                safe_dim,
            } => write!(
                f,
                "safe set has {safe_dim} dimensions but the state has {state_dim}"
            ),
            ReachError::InvalidNoiseBound { epsilon } => {
                write!(
                    f,
                    "noise bound must be finite and non-negative, got {epsilon}"
                )
            }
            ReachError::ZeroHorizon => write!(f, "maximum search horizon must be positive"),
            ReachError::DimensionMismatch { expected, actual } => {
                write!(f, "state vector must have length {expected}, got {actual}")
            }
            ReachError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for ReachError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReachError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ReachError {
    fn from(e: LinalgError) -> Self {
        ReachError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ReachError::ZeroHorizon.to_string().contains("positive"));
        assert!(ReachError::SafeSetMismatch {
            state_dim: 3,
            safe_dim: 2
        }
        .to_string()
        .contains('3'));
        assert!(ReachError::from(LinalgError::Singular)
            .to_string()
            .contains("singular"));
    }
}
