use awsad_linalg::kernels::{dot, norm_l1, norm_l2, soa};
use awsad_linalg::{Matrix, Vector};
use awsad_sets::BoxSet;

use crate::{Deadline, ReachError, Result};

/// Configuration of a reachability analysis: the admissible control
/// box `U`, the uncertainty bound `ε`, the safe set `S` and the search
/// horizon (the maximum detection window size `w_m`, which §4.3 also
/// uses as the termination condition of the deadline search).
#[derive(Debug, Clone, PartialEq)]
pub struct ReachConfig {
    control_box: BoxSet,
    epsilon: f64,
    safe_set: BoxSet,
    max_steps: usize,
}

impl ReachConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::InvalidControlBox`] when the control box
    /// is unbounded (actuator capability must be finite),
    /// [`ReachError::InvalidNoiseBound`] for a negative or non-finite
    /// `ε`, and [`ReachError::ZeroHorizon`] when `max_steps == 0`.
    pub fn new(
        control_box: BoxSet,
        epsilon: f64,
        safe_set: BoxSet,
        max_steps: usize,
    ) -> Result<Self> {
        if !control_box.is_bounded() {
            return Err(ReachError::InvalidControlBox {
                reason: "control-input box must be bounded",
            });
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(ReachError::InvalidNoiseBound { epsilon });
        }
        if max_steps == 0 {
            return Err(ReachError::ZeroHorizon);
        }
        Ok(ReachConfig {
            control_box,
            epsilon,
            safe_set,
            max_steps,
        })
    }

    /// The admissible control box `U`.
    pub fn control_box(&self) -> &BoxSet {
        &self.control_box
    }

    /// The uncertainty bound `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The safe set `S`.
    pub fn safe_set(&self) -> &BoxSet {
        &self.safe_set
    }

    /// The search horizon in steps.
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }
}

/// Reusable buffers for the allocation-free scalar deadline walk.
///
/// [`DeadlineEstimator::checked_deadline_with`] ping-pongs the state
/// `A^t x₀` between the two buffers; after warm-up (one growth to the
/// state dimension) a walk performs zero heap allocations. One scratch
/// can be reused across estimators of different dimensions.
#[derive(Debug, Clone, Default)]
pub struct DeadlineScratch {
    cur: Vec<f64>,
    next: Vec<f64>,
}

impl DeadlineScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable buffers for [`DeadlineEstimator::deadline_batch_with`].
///
/// Active states are packed *dimension-major* (`cur[d*active..][..active]`
/// holds component `d` of every live state), so the per-step advance
/// and containment loops run contiguously across states and vectorize;
/// `idx` maps packed positions back to caller positions so resolved
/// states can be compacted out of the batch mid-walk, and `alive`
/// holds each step's containment verdicts.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    cur: Vec<f64>,
    next: Vec<f64>,
    idx: Vec<usize>,
    alive: Vec<bool>,
}

impl BatchScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Online detection-deadline estimator (§3.4) with offline
/// precomputation.
///
/// At construction the estimator expands Eqs. (4)/(5) into cumulative,
/// `x₀`-independent tables up to the horizon `w_m`, stored as flat
/// row-per-step (`t * n + d`) arrays:
///
/// * `drift[t]` — `Σ_{i<t} A^i B c`, the reachable-set center offset
///   produced by the control box center;
/// * `spread[t]` — `Σ_{i<t} (‖(A^iBQ)ᵀe_d‖₁ + ε‖(A^i)ᵀe_d‖₂)` per
///   dimension `d`, the symmetric half-width from control freedom and
///   uncertainty;
/// * `pow_row_norm[t][d]` — `‖(A^t)ᵀe_d‖₂`, used to inflate the bounds
///   when the initial state is itself only known within a ball
///   (§3.3.1, "we can use an initial state set containing x₀");
/// * `adm_lo/adm_hi[t][d]` — the *admissible state box*, the safe set
///   pulled back through drift and spread
///   (`adm_lo = (S_lo − drift) + spread`,
///   `adm_hi = (S_hi − drift) − spread`), so the per-step containment
///   test collapses to `2n` comparisons of `A^t x₀` against
///   precomputed bounds (plus an `r0·pow_row_norm` correction when the
///   initial-state ball has positive radius).
///
/// An online [`DeadlineEstimator::deadline`] query walks `t = 0…w_m`
/// computing only `A^t x₀` incrementally — `O(n²)` per step. The
/// `*_with` variants reuse caller-held scratch so steady-state queries
/// allocate nothing, and [`DeadlineEstimator::deadline_batch`] advances
/// `k` states per step with one [`Matrix::mul_cols_into`] call.
#[derive(Debug, Clone)]
pub struct DeadlineEstimator {
    a: Matrix,
    config: ReachConfig,
    /// State dimension `n`.
    n: usize,
    /// `drift[t*n+d]` = (Σ_{i=0}^{t-1} A^i B c)_d, `t ∈ 0..=max_steps`.
    drift: Vec<f64>,
    /// `spread[t*n+d]`, per-dimension symmetric half-width at step `t`.
    spread: Vec<f64>,
    /// `pow_row_norm[t*n+d]` = ‖(A^t)ᵀ e_d‖₂.
    pow_row_norm: Vec<f64>,
    /// Admissible lower bound on `(A^t x₀)_d` (see struct docs).
    adm_lo: Vec<f64>,
    /// Admissible upper bound on `(A^t x₀)_d`.
    adm_hi: Vec<f64>,
}

/// Folds one safe-set lower bound into an admissible bound on
/// `(A^t x₀)_d`: the containment test `(x + drift) − spread ≥ lo`
/// becomes `x ≥ (lo − drift) + spread`.
///
/// When the fold itself is indeterminate (`∞ − ∞`, e.g. an unbounded
/// safe dimension whose spread has diverged), the comparison outcome no
/// longer depends on a finite `x`, so it is decided here once from
/// `drift − spread` and baked in as `∓∞`.
fn fold_admissible_lo(lo: f64, drift: f64, spread: f64) -> f64 {
    let folded = (lo - drift) + spread;
    if !folded.is_nan() {
        return folded;
    }
    let lhs = drift - spread;
    if lhs >= lo {
        f64::NEG_INFINITY // always contained on this dimension
    } else {
        f64::INFINITY // never contained (also: indeterminate lhs)
    }
}

/// Upper-bound analog of [`fold_admissible_lo`]:
/// `(x + drift) + spread ≤ hi` becomes `x ≤ (hi − drift) − spread`.
fn fold_admissible_hi(hi: f64, drift: f64, spread: f64) -> f64 {
    let folded = (hi - drift) - spread;
    if !folded.is_nan() {
        return folded;
    }
    let lhs = drift + spread;
    if lhs <= hi {
        f64::INFINITY // always contained on this dimension
    } else {
        f64::NEG_INFINITY // never contained (also: indeterminate lhs)
    }
}

impl DeadlineEstimator {
    /// Builds the estimator, performing all `x₀`-independent work.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `A` is not square, `B` has the wrong
    /// row count, the control box does not match `B`'s columns, or the
    /// safe set does not match the state dimension.
    pub fn new(a: &Matrix, b: &Matrix, config: ReachConfig) -> Result<Self> {
        if !a.is_square() {
            return Err(ReachError::StateMatrixNotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if b.rows() != n {
            return Err(ReachError::InputMatrixMismatch {
                state_dim: n,
                shape: b.shape(),
            });
        }
        if config.control_box.dim() != b.cols() {
            return Err(ReachError::InvalidControlBox {
                reason: "control-box dimension must match B's column count",
            });
        }
        if config.safe_set.dim() != n {
            return Err(ReachError::SafeSetMismatch {
                state_dim: n,
                safe_dim: config.safe_set.dim(),
            });
        }

        let c = config.control_box.center();
        let q = config.control_box.scaling_matrix();
        let bq = b.checked_mul(&q)?;
        let bc = b.checked_mul_vec(&c)?;

        let horizon = config.max_steps;
        let len = (horizon + 1) * n;
        let mut drift = vec![0.0; len];
        let mut spread = vec![0.0; len];
        let mut pow_row_norm = vec![0.0; len];

        // a_pow tracks A^i through the loop; the accumulation below is
        // the seed implementation with `row()` allocations replaced by
        // `row_slice()` — per-entry f64 operation order is unchanged.
        let mut a_pow = Matrix::identity(n);
        for t in 0..horizon {
            row_norms_l2_into(&a_pow, &mut pow_row_norm[t * n..(t + 1) * n]);
            let aibq = a_pow.checked_mul(&bq)?;
            let aibc = a_pow.checked_mul_vec(&bc)?;
            for d in 0..n {
                drift[(t + 1) * n + d] = drift[t * n + d] + aibc[d];
                let control_term = norm_l1(aibq.row_slice(d));
                let noise_term = config.epsilon * norm_l2(a_pow.row_slice(d));
                spread[(t + 1) * n + d] = spread[t * n + d] + (control_term + noise_term);
            }
            a_pow = a_pow.checked_mul(a)?;
        }
        row_norms_l2_into(&a_pow, &mut pow_row_norm[horizon * n..(horizon + 1) * n]);

        // Fold drift/spread/safe-set into per-step admissible boxes so
        // the online containment test needs no per-dimension adds.
        let mut adm_lo = vec![0.0; len];
        let mut adm_hi = vec![0.0; len];
        for t in 0..=horizon {
            for d in 0..n {
                let iv = config.safe_set.interval(d);
                adm_lo[t * n + d] =
                    fold_admissible_lo(iv.lo(), drift[t * n + d], spread[t * n + d]);
                adm_hi[t * n + d] =
                    fold_admissible_hi(iv.hi(), drift[t * n + d], spread[t * n + d]);
            }
        }

        Ok(DeadlineEstimator {
            a: a.clone(),
            config,
            n,
            drift,
            spread,
            pow_row_norm,
            adm_lo,
            adm_hi,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ReachConfig {
        &self.config
    }

    /// State dimension `n`.
    pub fn state_dim(&self) -> usize {
        self.n
    }

    /// A structural fingerprint of everything that defines this
    /// estimator's deadline walk: state dimension, horizon, the exact
    /// bits of `A` and of every precomputed table (drift, spread,
    /// row-norm, admissible boxes).
    ///
    /// Two estimators with equal fingerprints run bit-identical walks
    /// for every `(x₀, r₀)` query, so the runtime's batch planner may
    /// group their sessions into one batched walk. FNV-1a over the
    /// table bits; a collision would require two *different* walks to
    /// hash alike, which is vanishingly unlikely and would only cost a
    /// mixed group falling back to per-lane stepping if containment
    /// diverged — outcomes are asserted, not assumed, by the testkit
    /// oracles.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                *h = (*h ^ b as u64).wrapping_mul(PRIME);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        mix(&mut h, self.n as u64);
        mix(&mut h, self.config.max_steps as u64);
        mix(&mut h, self.config.epsilon.to_bits());
        for i in 0..self.n {
            for v in self.a.row_slice(i) {
                mix(&mut h, v.to_bits());
            }
        }
        for table in [
            &self.drift,
            &self.spread,
            &self.pow_row_norm,
            &self.adm_lo,
            &self.adm_hi,
        ] {
            for v in table.iter() {
                mix(&mut h, v.to_bits());
            }
        }
        h
    }

    /// The box over-approximation `R̄(x₀, t)` of the reachable set
    /// after exactly `t` steps.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`; `t` is clamped to the configured horizon.
    pub fn reach_box(&self, x0: &Vector, t: usize) -> Result<BoxSet> {
        self.reach_box_with_radius(x0, 0.0, t)
    }

    /// Like [`DeadlineEstimator::reach_box`], but the initial state is
    /// only known within a Euclidean ball of radius `r0` around `x₀`
    /// (§3.3.1 noise-in-estimate variant).
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`.
    pub fn reach_box_with_radius(&self, x0: &Vector, r0: f64, t: usize) -> Result<BoxSet> {
        self.check_state(x0)?;
        let t = t.min(self.config.max_steps);
        let mut x = x0.clone();
        for _ in 0..t {
            x = self.a.checked_mul_vec(&x)?;
        }
        Ok(self.bounds_at(&x, r0, t))
    }

    /// Estimates the detection deadline from initial state `x₀`
    /// (§3.3.2): walks `t = 0, 1, …, w_m` and returns
    /// `Deadline::Within(t − 1)` for the first `t` whose reachable box
    /// escapes the safe set, or `Deadline::Beyond` if none does.
    ///
    /// # Panics
    ///
    /// Panics when `x₀` has the wrong dimension; use
    /// [`DeadlineEstimator::checked_deadline`] for fallible callers.
    pub fn deadline(&self, x0: &Vector) -> Deadline {
        self.checked_deadline(x0, 0.0)
            .expect("state dimension must match model")
    }

    /// Fallible deadline query with an initial-state uncertainty ball
    /// of radius `r0`.
    ///
    /// Allocates a walk buffer per call; hot loops should hold a
    /// [`DeadlineScratch`] and use
    /// [`DeadlineEstimator::checked_deadline_with`].
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`.
    pub fn checked_deadline(&self, x0: &Vector, r0: f64) -> Result<Deadline> {
        let mut scratch = DeadlineScratch::new();
        self.checked_deadline_with(x0, r0, &mut scratch)
    }

    /// Allocation-free deadline query reusing caller-held scratch.
    ///
    /// The dimension check and the `t = 0` containment test run before
    /// any copy or multiply, so immediate returns (wrong dimension,
    /// `x₀` already outside the admissible box) touch no buffers at
    /// all. Results are bit-identical to
    /// [`DeadlineEstimator::checked_deadline`] and
    /// [`DeadlineEstimator::deadline_batch`]: all three advance states
    /// with the same per-row [`dot`] reduction and test containment
    /// against the same precomputed admissible boxes.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`.
    pub fn checked_deadline_with(
        &self,
        x0: &Vector,
        r0: f64,
        scratch: &mut DeadlineScratch,
    ) -> Result<Deadline> {
        self.check_state(x0)?;
        if !self.contained_fast(x0.as_slice(), r0, 0) {
            return Ok(Deadline::Within(0));
        }
        let n = self.n;
        scratch.cur.clear();
        scratch.cur.extend_from_slice(x0.as_slice());
        scratch.next.clear();
        scratch.next.resize(n, 0.0);
        for t in 1..=self.config.max_steps {
            for i in 0..n {
                scratch.next[i] = dot(self.a.row_slice(i), &scratch.cur);
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
            if !self.contained_fast(&scratch.cur, r0, t) {
                // First escape at step t: the system is conservatively
                // safe through step t-1, so the deadline is t-1.
                return Ok(Deadline::Within(t - 1));
            }
        }
        Ok(Deadline::Beyond)
    }

    /// Batched deadline query: one walk advances every state per step
    /// via a single `A · X` kernel call ([`Matrix::mul_cols_into`]).
    ///
    /// Returns one [`Deadline`] per input state, in input order. Each
    /// column's trajectory and containment tests are bit-identical to
    /// querying that state alone through
    /// [`DeadlineEstimator::checked_deadline`]; resolved states are
    /// compacted out of the batch so the per-step cost tracks the
    /// number of still-live states.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] if *any* state has the
    /// wrong length; all states are validated before any arithmetic.
    pub fn deadline_batch(&self, states: &[Vector], r0: f64) -> Result<Vec<Deadline>> {
        let mut scratch = BatchScratch::new();
        let mut out = Vec::with_capacity(states.len());
        self.deadline_batch_with(states, r0, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`DeadlineEstimator::deadline_batch`]
    /// reusing caller-held scratch; `out` is cleared and filled with
    /// one deadline per input state.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] if any state has the
    /// wrong length (checked before any arithmetic; `out` is left
    /// empty in that case).
    pub fn deadline_batch_with(
        &self,
        states: &[Vector],
        r0: f64,
        scratch: &mut BatchScratch,
        out: &mut Vec<Deadline>,
    ) -> Result<()> {
        self.deadline_batch_core(states.iter().map(|s| s.as_slice()), r0, scratch, out)
    }

    /// [`DeadlineEstimator::deadline_batch_with`] over borrowed states.
    ///
    /// The cross-session batch planner holds its states inside per-lane
    /// loggers, so it can only produce `&Vector`s; both entry points
    /// delegate to the same walk, so results stay bit-identical to the
    /// owned-slice variant and to per-state scalar queries.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] if any state has the
    /// wrong length (checked before any arithmetic; `out` is left
    /// empty in that case).
    pub fn deadline_batch_refs_with(
        &self,
        states: &[&Vector],
        r0: f64,
        scratch: &mut BatchScratch,
        out: &mut Vec<Deadline>,
    ) -> Result<()> {
        self.deadline_batch_core(states.iter().map(|s| s.as_slice()), r0, scratch, out)
    }

    /// Shared implementation of the batched walks, laid out
    /// structure-of-arrays: live states are packed dimension-major, so
    /// each step advances component `d` of *every* state through one
    /// contiguous [`soa::weighted_rows_sum`] pass (per state the
    /// accumulation order is exactly [`dot`]'s — bit-identical to the
    /// scalar walk, vectorizable across states), and containment is a
    /// branch-free sweep across states per dimension against the
    /// folded admissible boxes. Resolved states are compacted out in
    /// stable order so the per-step cost tracks the live count.
    fn deadline_batch_core<'s>(
        &self,
        states: impl Iterator<Item = &'s [f64]> + Clone,
        r0: f64,
        scratch: &mut BatchScratch,
        out: &mut Vec<Deadline>,
    ) -> Result<()> {
        out.clear();
        let mut count = 0usize;
        for s in states.clone() {
            if s.len() != self.n {
                return Err(ReachError::DimensionMismatch {
                    expected: self.n,
                    actual: s.len(),
                });
            }
            count += 1;
        }
        let n = self.n;
        out.resize(count, Deadline::Beyond);
        scratch.idx.clear();
        for (j, s) in states.clone().enumerate() {
            if self.contained_fast(s, r0, 0) {
                scratch.idx.push(j);
            } else {
                out[j] = Deadline::Within(0);
            }
        }
        let mut active = scratch.idx.len();
        // Transpose the survivors into dimension-major rows.
        scratch.cur.clear();
        scratch.cur.resize(n * active, 0.0);
        let mut k = 0usize;
        for (j, s) in states.enumerate() {
            if matches!(out[j], Deadline::Beyond) {
                for (d, &x) in s.iter().enumerate() {
                    scratch.cur[d * active + k] = x;
                }
                k += 1;
            }
        }
        for t in 1..=self.config.max_steps {
            if active == 0 {
                break;
            }
            // Advance: next[i][*] = Σ_j A[i][j] · cur[j][*], every
            // state's component i in one contiguous pass.
            scratch.next.resize(n * active, 0.0);
            let cur = &scratch.cur[..n * active];
            for (i, next_row) in scratch.next.chunks_exact_mut(active).enumerate() {
                soa::weighted_rows_sum(self.a.row_slice(i), cur, next_row);
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
            // Containment across states per dimension; the per-state
            // comparisons match `contained_fast` exactly, so each
            // verdict is bit-identical to the scalar walk's.
            let lo = &self.adm_lo[t * n..(t + 1) * n];
            let hi = &self.adm_hi[t * n..(t + 1) * n];
            scratch.alive.clear();
            scratch.alive.resize(active, true);
            if r0 == 0.0 {
                for d in 0..n {
                    let row = &scratch.cur[d * active..(d + 1) * active];
                    let (l, h) = (lo[d], hi[d]);
                    // Non-short-circuit `&`: same predicate, but the
                    // sweep compiles to straight-line masked compares.
                    for (ok, &x) in scratch.alive.iter_mut().zip(row) {
                        *ok = *ok & (x >= l) & (x <= h);
                    }
                }
            } else {
                let pow = &self.pow_row_norm[t * n..(t + 1) * n];
                for d in 0..n {
                    let row = &scratch.cur[d * active..(d + 1) * active];
                    let c = r0 * pow[d];
                    let (l, h) = (lo[d], hi[d]);
                    for (ok, &x) in scratch.alive.iter_mut().zip(row) {
                        *ok = *ok & (x - c >= l) & (x + c <= h);
                    }
                }
            }
            let survivors = scratch.alive.iter().filter(|&&a| a).count();
            if survivors == active {
                continue;
            }
            // First escape at step t: safe through t-1. Record the
            // escapees, then compact the survivors in stable order.
            for (k, &alive) in scratch.alive.iter().enumerate() {
                if !alive {
                    out[scratch.idx[k]] = Deadline::Within(t - 1);
                }
            }
            scratch.next.clear();
            scratch.next.resize(n * survivors, 0.0);
            for d in 0..n {
                let src = &scratch.cur[d * active..(d + 1) * active];
                let dst = &mut scratch.next[d * survivors..(d + 1) * survivors];
                let mut m = 0usize;
                for (k, &alive) in scratch.alive.iter().enumerate() {
                    if alive {
                        dst[m] = src[k];
                        m += 1;
                    }
                }
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
            let alive = &scratch.alive;
            let mut m = 0usize;
            scratch.idx.retain(|_| {
                let keep = alive[m];
                m += 1;
                keep
            });
            active = survivors;
        }
        Ok(())
    }

    /// The seed implementation of the deadline walk, kept verbatim as
    /// the reference for equivalence tests and as the baseline of the
    /// `reach_kernels` benchmark: allocates a fresh state vector per
    /// horizon step and evaluates containment from the raw
    /// drift/spread tables (`center ± half` form) instead of the folded
    /// admissible boxes.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`.
    pub fn reference_deadline(&self, x0: &Vector, r0: f64) -> Result<Deadline> {
        self.check_state(x0)?;
        let mut x = x0.clone();
        for t in 0..=self.config.max_steps {
            if t > 0 {
                x = self.a.checked_mul_vec(&x)?;
            }
            if !self.contained_reference(&x, r0, t) {
                return Ok(Deadline::Within(t.saturating_sub(1)));
            }
        }
        Ok(Deadline::Beyond)
    }

    /// Whether the system started at `x₀` is conservatively safe for
    /// at least `t` steps (Definition 3.1 applied stepwise).
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`.
    pub fn is_conservatively_safe(&self, x0: &Vector, t: usize) -> Result<bool> {
        self.check_state(x0)?;
        let t = t.min(self.config.max_steps);
        if !self.contained_fast(x0.as_slice(), 0.0, 0) {
            return Ok(false);
        }
        let n = self.n;
        let mut cur = x0.as_slice().to_vec();
        let mut next = vec![0.0; n];
        for step in 1..=t {
            for (i, slot) in next.iter_mut().enumerate().take(n) {
                *slot = dot(self.a.row_slice(i), &cur);
            }
            std::mem::swap(&mut cur, &mut next);
            if !self.contained_fast(&cur, 0.0, step) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn check_state(&self, x0: &Vector) -> Result<()> {
        if x0.len() != self.state_dim() {
            return Err(ReachError::DimensionMismatch {
                expected: self.state_dim(),
                actual: x0.len(),
            });
        }
        Ok(())
    }

    /// Builds the explicit bounds box at step `t` given `A^t x₀`
    /// already computed. Operation order matches the seed
    /// implementation exactly (tables are stored flat but hold the
    /// same values).
    fn bounds_at(&self, at_x0: &Vector, r0: f64, t: usize) -> BoxSet {
        let n = self.n;
        let drift = &self.drift[t * n..(t + 1) * n];
        let spread = &self.spread[t * n..(t + 1) * n];
        let pow_norm = &self.pow_row_norm[t * n..(t + 1) * n];
        let lo: Vec<f64> = (0..n)
            .map(|d| at_x0[d] + drift[d] - spread[d] - r0 * pow_norm[d])
            .collect();
        let hi: Vec<f64> = (0..n)
            .map(|d| at_x0[d] + drift[d] + spread[d] + r0 * pow_norm[d])
            .collect();
        BoxSet::from_bounds(&lo, &hi).expect("lo <= hi by construction")
    }

    /// Containment of `A^t x₀` (given as `x`) in the admissible box at
    /// step `t`: `2n` comparisons against precomputed bounds, plus an
    /// `r0`-correction term when the initial-state ball has positive
    /// radius.
    #[inline]
    fn contained_fast(&self, x: &[f64], r0: f64, t: usize) -> bool {
        let n = self.n;
        let lo = &self.adm_lo[t * n..(t + 1) * n];
        let hi = &self.adm_hi[t * n..(t + 1) * n];
        if r0 == 0.0 {
            x.iter()
                .zip(lo.iter().zip(hi))
                .all(|(&x, (&lo, &hi))| x >= lo && x <= hi)
        } else {
            let pow = &self.pow_row_norm[t * n..(t + 1) * n];
            x.iter()
                .zip(pow)
                .zip(lo.iter().zip(hi))
                .all(|((&x, &p), (&lo, &hi))| {
                    let c = r0 * p;
                    x - c >= lo && x + c <= hi
                })
        }
    }

    /// The seed containment check (center ± half against the safe
    /// set), used by [`DeadlineEstimator::reference_deadline`].
    fn contained_reference(&self, at_x0: &Vector, r0: f64, t: usize) -> bool {
        let n = self.n;
        let drift = &self.drift[t * n..(t + 1) * n];
        let spread = &self.spread[t * n..(t + 1) * n];
        let pow_norm = &self.pow_row_norm[t * n..(t + 1) * n];
        let safe = &self.config.safe_set;
        (0..n).all(|d| {
            let center = at_x0[d] + drift[d];
            let half = spread[d] + r0 * pow_norm[d];
            let iv = safe.interval(d);
            center - half >= iv.lo() && center + half <= iv.hi()
        })
    }
}

/// Euclidean norms of each row of `m`, written into `out`.
fn row_norms_l2_into(m: &Matrix, out: &mut [f64]) {
    for (d, o) in out.iter_mut().enumerate() {
        *o = norm_l2(m.row_slice(d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pure integrator: x_{t+1} = x_t + u_t, |u| <= 1.
    fn integrator(max_steps: usize, safe: f64) -> DeadlineEstimator {
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-safe], &[safe]).unwrap(),
            max_steps,
        )
        .unwrap();
        DeadlineEstimator::new(&a, &b, cfg).unwrap()
    }

    #[test]
    fn config_validation() {
        let bounded = BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap();
        let safe = BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap();
        assert!(matches!(
            ReachConfig::new(BoxSet::entire(1), 0.0, safe.clone(), 10),
            Err(ReachError::InvalidControlBox { .. })
        ));
        assert!(matches!(
            ReachConfig::new(bounded.clone(), -1.0, safe.clone(), 10),
            Err(ReachError::InvalidNoiseBound { .. })
        ));
        assert!(matches!(
            ReachConfig::new(bounded.clone(), 0.0, safe.clone(), 0),
            Err(ReachError::ZeroHorizon)
        ));
        assert!(ReachConfig::new(bounded, 0.0, safe, 10).is_ok());
    }

    #[test]
    fn estimator_shape_validation() {
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap(),
            10,
        )
        .unwrap();
        // Rectangular A.
        assert!(
            DeadlineEstimator::new(&Matrix::zeros(1, 2), &Matrix::zeros(1, 1), cfg.clone())
                .is_err()
        );
        // B row mismatch.
        assert!(
            DeadlineEstimator::new(&Matrix::identity(1), &Matrix::zeros(2, 1), cfg.clone())
                .is_err()
        );
        // Control box vs B columns.
        assert!(
            DeadlineEstimator::new(&Matrix::identity(1), &Matrix::zeros(1, 2), cfg.clone())
                .is_err()
        );
        // Safe set vs state dim.
        let cfg2 = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-5.0, -5.0], &[5.0, 5.0]).unwrap(),
            10,
        )
        .unwrap();
        assert!(DeadlineEstimator::new(
            &Matrix::identity(1),
            &Matrix::from_rows(&[&[1.0]]).unwrap(),
            cfg2
        )
        .is_err());
    }

    #[test]
    fn integrator_reach_box_grows_linearly() {
        let est = integrator(20, 100.0);
        let r3 = est.reach_box(&Vector::zeros(1), 3).unwrap();
        assert!((r3.interval(0).lo() + 3.0).abs() < 1e-12);
        assert!((r3.interval(0).hi() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn integrator_deadline_matches_geometry() {
        let est = integrator(100, 5.0);
        // From 0: |x_t| <= t; escape at t = 6 → deadline 5.
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Within(5));
        // From 3: escape at t = 3 (3+3 > 5) → deadline 2.
        assert_eq!(
            est.deadline(&Vector::from_slice(&[3.0])),
            Deadline::Within(2)
        );
        // From 5.5 (already unsafe): deadline 0.
        assert_eq!(
            est.deadline(&Vector::from_slice(&[5.5])),
            Deadline::Within(0)
        );
    }

    #[test]
    fn horizon_caps_search() {
        let est = integrator(4, 100.0);
        // Escape would happen at t = 101, far past the horizon 4.
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Beyond);
    }

    #[test]
    fn noise_inflates_bounds() {
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[0.0], &[0.0]).unwrap(), // no control authority
            0.5,
            BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(),
            20,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
        let r4 = est.reach_box(&Vector::zeros(1), 4).unwrap();
        // Four noise balls of radius 0.5: ±2.
        assert!((r4.interval(0).hi() - 2.0).abs() < 1e-12);
        // Escape at t = 5 → deadline 4.
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Within(4));
    }

    #[test]
    fn initial_radius_tightens_deadline() {
        let est = integrator(100, 5.0);
        let x0 = Vector::from_slice(&[3.0]);
        let exact = est.checked_deadline(&x0, 0.0).unwrap();
        let fuzzy = est.checked_deadline(&x0, 1.0).unwrap();
        assert!(fuzzy.is_tighter_than(exact));
        // Radius 1 around 3: worst case starts at 4, escape at t=2 → 1.
        assert_eq!(fuzzy, Deadline::Within(1));
    }

    #[test]
    fn contraction_gives_beyond() {
        // Strongly stable system with tiny inputs never escapes.
        let a = Matrix::diagonal(&[0.5]);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-0.1], &[0.1]).unwrap(),
            0.01,
            BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(),
            200,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Beyond);
        assert!(est.is_conservatively_safe(&Vector::zeros(1), 200).unwrap());
    }

    #[test]
    fn unsafe_start_is_not_safe() {
        let est = integrator(10, 5.0);
        assert!(!est
            .is_conservatively_safe(&Vector::from_slice(&[6.0]), 0)
            .unwrap());
        assert!(est
            .is_conservatively_safe(&Vector::from_slice(&[0.0]), 4)
            .unwrap());
    }

    #[test]
    fn reach_box_includes_drift_from_asymmetric_control() {
        // Control in [0, 2]: center 1 per step drifts the box upward.
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[0.0], &[2.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-100.0], &[100.0]).unwrap(),
            10,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
        let r3 = est.reach_box(&Vector::zeros(1), 3).unwrap();
        // After 3 steps: x in [0, 6] (each step adds [0, 2]).
        assert!((r3.interval(0).lo() - 0.0).abs() < 1e-12);
        assert!((r3.interval(0).hi() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_dimensional_partial_safe_set() {
        // Only the first dimension is safety-constrained.
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0], &[0.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-3.0, f64::NEG_INFINITY], &[3.0, f64::INFINITY]).unwrap(),
            50,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
        assert_eq!(est.deadline(&Vector::zeros(2)), Deadline::Within(3));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let est = integrator(10, 5.0);
        assert!(est.checked_deadline(&Vector::zeros(2), 0.0).is_err());
        assert!(est.reach_box(&Vector::zeros(2), 1).is_err());
        assert!(est.is_conservatively_safe(&Vector::zeros(2), 1).is_err());
        assert!(est.reference_deadline(&Vector::zeros(2), 0.0).is_err());
    }

    #[test]
    fn dimension_mismatch_precedes_any_arithmetic() {
        // A wrong-length NaN state must produce a clean error: had any
        // containment arithmetic run first, the NaN comparisons would
        // have yielded Within(0) instead of Err.
        let est = integrator(10, 5.0);
        let bad = Vector::from_slice(&[f64::NAN, f64::NAN]);
        assert!(matches!(
            est.checked_deadline(&bad, 0.0),
            Err(ReachError::DimensionMismatch {
                expected: 1,
                actual: 2
            })
        ));
        let mut scratch = DeadlineScratch::new();
        assert!(est.checked_deadline_with(&bad, 0.0, &mut scratch).is_err());
        // Batched: one bad state anywhere rejects the whole batch
        // before any arithmetic, leaving `out` empty.
        let good = Vector::zeros(1);
        let mut bscratch = BatchScratch::new();
        let mut out = vec![Deadline::Within(7)];
        let err = est.deadline_batch_with(
            &[good.clone(), bad.clone(), good],
            0.0,
            &mut bscratch,
            &mut out,
        );
        assert!(err.is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn scratch_and_batch_agree_with_reference() {
        let est = integrator(100, 5.0);
        let states: Vec<Vector> = [-6.0, -3.0, 0.0, 2.5, 3.0, 5.5, 7.0]
            .iter()
            .map(|&x| Vector::from_slice(&[x]))
            .collect();
        for r0 in [0.0, 0.5, 1.0] {
            let batch = est.deadline_batch(&states, r0).unwrap();
            let mut scratch = DeadlineScratch::new();
            for (s, b) in states.iter().zip(&batch) {
                let reference = est.reference_deadline(s, r0).unwrap();
                let scalar = est.checked_deadline_with(s, r0, &mut scratch).unwrap();
                assert_eq!(scalar, reference, "x0={s} r0={r0}");
                assert_eq!(*b, reference, "x0={s} r0={r0}");
            }
        }
    }

    #[test]
    fn batch_compaction_handles_interleaved_escapes() {
        // States resolving at different steps, out of order, exercise
        // the swap-remove compaction of the packed columns.
        let est = integrator(100, 5.0);
        let states: Vec<Vector> = [4.9, 0.0, 5.5, 3.0, -4.9, -5.5, 1.0]
            .iter()
            .map(|&x| Vector::from_slice(&[x]))
            .collect();
        let batch = est.deadline_batch(&states, 0.0).unwrap();
        let expect: Vec<Deadline> = states.iter().map(|s| est.deadline(s)).collect();
        assert_eq!(batch, expect);
        // And reuse of the same scratch across calls stays correct.
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        est.deadline_batch_with(&states, 0.0, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, expect);
        est.deadline_batch_with(&states[..2], 0.0, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, expect[..2]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let est = integrator(10, 5.0);
        assert!(est.deadline_batch(&[], 0.0).unwrap().is_empty());
    }

    #[test]
    fn refs_batch_matches_owned_batch() {
        let est = integrator(100, 5.0);
        let states: Vec<Vector> = [4.9, 0.0, 5.5, 3.0, -4.9, -5.5, 1.0]
            .iter()
            .map(|&x| Vector::from_slice(&[x]))
            .collect();
        let refs: Vec<&Vector> = states.iter().collect();
        for r0 in [0.0, 0.5] {
            let owned = est.deadline_batch(&states, r0).unwrap();
            let mut scratch = BatchScratch::new();
            let mut out = Vec::new();
            est.deadline_batch_refs_with(&refs, r0, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, owned, "r0={r0}");
        }
        // Dimension errors are still caught before any arithmetic.
        let bad = Vector::zeros(2);
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        assert!(est
            .deadline_batch_refs_with(&[&states[0], &bad], 0.0, &mut scratch, &mut out)
            .is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn fingerprint_separates_walk_defining_changes_only() {
        let a = integrator(100, 5.0);
        let b = integrator(100, 5.0);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same build, same print");
        assert_ne!(
            a.fingerprint(),
            integrator(99, 5.0).fingerprint(),
            "horizon matters"
        );
        assert_ne!(
            a.fingerprint(),
            integrator(100, 4.0).fingerprint(),
            "safe set folds into the admissible tables"
        );
    }

    #[test]
    fn admissible_fold_handles_infinite_bounds() {
        // Unbounded safe dimension with finite spread folds to ∓∞.
        assert_eq!(
            fold_admissible_lo(f64::NEG_INFINITY, 1.0, 2.0),
            f64::NEG_INFINITY
        );
        assert_eq!(fold_admissible_hi(f64::INFINITY, 1.0, 2.0), f64::INFINITY);
        // ∞ − ∞ during folding: unbounded safe dimension whose spread
        // diverged still passes (seed semantics: −∞ ≥ −∞).
        assert_eq!(
            fold_admissible_lo(f64::NEG_INFINITY, 1.0, f64::INFINITY),
            f64::NEG_INFINITY
        );
        assert_eq!(
            fold_admissible_hi(f64::INFINITY, 1.0, f64::INFINITY),
            f64::INFINITY
        );
        // Finite safe bound with diverged spread never passes.
        assert_eq!(fold_admissible_lo(-3.0, 1.0, f64::INFINITY), f64::INFINITY);
        assert_eq!(
            fold_admissible_hi(3.0, 1.0, f64::INFINITY),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn reach_box_t_clamped_to_horizon() {
        let est = integrator(5, 100.0);
        let r = est.reach_box(&Vector::zeros(1), 50).unwrap();
        assert!((r.interval(0).hi() - 5.0).abs() < 1e-12);
    }
}
