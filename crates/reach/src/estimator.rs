use awsad_linalg::{Matrix, Vector};
use awsad_sets::BoxSet;

use crate::{Deadline, ReachError, Result};

/// Configuration of a reachability analysis: the admissible control
/// box `U`, the uncertainty bound `ε`, the safe set `S` and the search
/// horizon (the maximum detection window size `w_m`, which §4.3 also
/// uses as the termination condition of the deadline search).
#[derive(Debug, Clone, PartialEq)]
pub struct ReachConfig {
    control_box: BoxSet,
    epsilon: f64,
    safe_set: BoxSet,
    max_steps: usize,
}

impl ReachConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::InvalidControlBox`] when the control box
    /// is unbounded (actuator capability must be finite),
    /// [`ReachError::InvalidNoiseBound`] for a negative or non-finite
    /// `ε`, and [`ReachError::ZeroHorizon`] when `max_steps == 0`.
    pub fn new(
        control_box: BoxSet,
        epsilon: f64,
        safe_set: BoxSet,
        max_steps: usize,
    ) -> Result<Self> {
        if !control_box.is_bounded() {
            return Err(ReachError::InvalidControlBox {
                reason: "control-input box must be bounded",
            });
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(ReachError::InvalidNoiseBound { epsilon });
        }
        if max_steps == 0 {
            return Err(ReachError::ZeroHorizon);
        }
        Ok(ReachConfig {
            control_box,
            epsilon,
            safe_set,
            max_steps,
        })
    }

    /// The admissible control box `U`.
    pub fn control_box(&self) -> &BoxSet {
        &self.control_box
    }

    /// The uncertainty bound `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The safe set `S`.
    pub fn safe_set(&self) -> &BoxSet {
        &self.safe_set
    }

    /// The search horizon in steps.
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }
}

/// Online detection-deadline estimator (§3.4) with offline
/// precomputation.
///
/// At construction the estimator expands Eqs. (4)/(5) into three
/// cumulative, `x₀`-independent tables up to the horizon `w_m`:
///
/// * `drift[t]` — `Σ_{i<t} A^i B c`, the reachable-set center offset
///   produced by the control box center;
/// * `spread[t]` — `Σ_{i<t} (‖(A^iBQ)ᵀe_d‖₁ + ε‖(A^i)ᵀe_d‖₂)` per
///   dimension `d`, the symmetric half-width from control freedom and
///   uncertainty;
/// * `pow_row_norm[t]` — `‖(A^t)ᵀe_d‖₂` per dimension, used to inflate
///   the bounds when the initial state is itself only known within a
///   ball (§3.3.1, "we can use an initial state set containing x₀").
///
/// An online [`DeadlineEstimator::deadline`] query then walks
/// `t = 0…w_m` computing only `A^t x₀` incrementally — `O(n²)` per
/// step, no allocations beyond one state vector.
#[derive(Debug, Clone)]
pub struct DeadlineEstimator {
    a: Matrix,
    config: ReachConfig,
    /// `drift[t]` = Σ_{i=0}^{t-1} A^i B c (length `max_steps + 1`).
    drift: Vec<Vector>,
    /// `spread[t]`, per-dimension symmetric half-width at step `t`.
    spread: Vec<Vector>,
    /// `pow_row_norm[t][d]` = ‖(A^t)ᵀ e_d‖₂.
    pow_row_norm: Vec<Vector>,
}

impl DeadlineEstimator {
    /// Builds the estimator, performing all `x₀`-independent work.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `A` is not square, `B` has the wrong
    /// row count, the control box does not match `B`'s columns, or the
    /// safe set does not match the state dimension.
    pub fn new(a: &Matrix, b: &Matrix, config: ReachConfig) -> Result<Self> {
        if !a.is_square() {
            return Err(ReachError::StateMatrixNotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if b.rows() != n {
            return Err(ReachError::InputMatrixMismatch {
                state_dim: n,
                shape: b.shape(),
            });
        }
        if config.control_box.dim() != b.cols() {
            return Err(ReachError::InvalidControlBox {
                reason: "control-box dimension must match B's column count",
            });
        }
        if config.safe_set.dim() != n {
            return Err(ReachError::SafeSetMismatch {
                state_dim: n,
                safe_dim: config.safe_set.dim(),
            });
        }

        let c = config.control_box.center();
        let q = config.control_box.scaling_matrix();
        let bq = b.checked_mul(&q)?;
        let bc = b.checked_mul_vec(&c)?;

        let horizon = config.max_steps;
        let mut drift = Vec::with_capacity(horizon + 1);
        let mut spread = Vec::with_capacity(horizon + 1);
        let mut pow_row_norm = Vec::with_capacity(horizon + 1);
        drift.push(Vector::zeros(n));
        spread.push(Vector::zeros(n));

        // a_pow tracks A^i through the loop.
        let mut a_pow = Matrix::identity(n);
        for t in 0..horizon {
            pow_row_norm.push(row_norms_l2(&a_pow));
            let aibq = a_pow.checked_mul(&bq)?;
            let aibc = a_pow.checked_mul_vec(&bc)?;

            let prev_drift = &drift[t];
            drift.push(prev_drift + &aibc);

            let mut s = spread[t].clone();
            for d in 0..n {
                let control_term = aibq.row(d).norm_l1();
                let noise_term = config.epsilon * a_pow.row(d).norm_l2();
                s[d] += control_term + noise_term;
            }
            spread.push(s);

            a_pow = a_pow.checked_mul(a)?;
        }
        pow_row_norm.push(row_norms_l2(&a_pow));

        Ok(DeadlineEstimator {
            a: a.clone(),
            config,
            drift,
            spread,
            pow_row_norm,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ReachConfig {
        &self.config
    }

    /// State dimension `n`.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }

    /// The box over-approximation `R̄(x₀, t)` of the reachable set
    /// after exactly `t` steps.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`; `t` is clamped to the configured horizon.
    pub fn reach_box(&self, x0: &Vector, t: usize) -> Result<BoxSet> {
        self.reach_box_with_radius(x0, 0.0, t)
    }

    /// Like [`DeadlineEstimator::reach_box`], but the initial state is
    /// only known within a Euclidean ball of radius `r0` around `x₀`
    /// (§3.3.1 noise-in-estimate variant).
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`.
    pub fn reach_box_with_radius(&self, x0: &Vector, r0: f64, t: usize) -> Result<BoxSet> {
        self.check_state(x0)?;
        let t = t.min(self.config.max_steps);
        let mut x = x0.clone();
        for _ in 0..t {
            x = self.a.checked_mul_vec(&x)?;
        }
        Ok(self.bounds_at(&x, r0, t))
    }

    /// Estimates the detection deadline from initial state `x₀`
    /// (§3.3.2): walks `t = 0, 1, …, w_m` and returns
    /// `Deadline::Within(t − 1)` for the first `t` whose reachable box
    /// escapes the safe set, or `Deadline::Beyond` if none does.
    ///
    /// # Panics
    ///
    /// Panics when `x₀` has the wrong dimension; use
    /// [`DeadlineEstimator::checked_deadline`] for fallible callers.
    pub fn deadline(&self, x0: &Vector) -> Deadline {
        self.checked_deadline(x0, 0.0)
            .expect("state dimension must match model")
    }

    /// Fallible deadline query with an initial-state uncertainty ball
    /// of radius `r0`.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`.
    pub fn checked_deadline(&self, x0: &Vector, r0: f64) -> Result<Deadline> {
        self.check_state(x0)?;
        let mut x = x0.clone();
        for t in 0..=self.config.max_steps {
            if t > 0 {
                x = self.a.checked_mul_vec(&x)?;
            }
            if !self.contained_at(&x, r0, t) {
                // First escape at step t: the system is conservatively
                // safe through step t-1, so the deadline is t-1 (0 if
                // the initial state itself is already outside).
                return Ok(Deadline::Within(t.saturating_sub(1)));
            }
        }
        Ok(Deadline::Beyond)
    }

    /// Whether the system started at `x₀` is conservatively safe for
    /// at least `t` steps (Definition 3.1 applied stepwise).
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::DimensionMismatch`] for a wrong-length
    /// `x₀`.
    pub fn is_conservatively_safe(&self, x0: &Vector, t: usize) -> Result<bool> {
        self.check_state(x0)?;
        let t = t.min(self.config.max_steps);
        let mut x = x0.clone();
        for step in 0..=t {
            if step > 0 {
                x = self.a.checked_mul_vec(&x)?;
            }
            if !self.contained_at(&x, 0.0, step) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn check_state(&self, x0: &Vector) -> Result<()> {
        if x0.len() != self.state_dim() {
            return Err(ReachError::DimensionMismatch {
                expected: self.state_dim(),
                actual: x0.len(),
            });
        }
        Ok(())
    }

    /// Builds the explicit bounds box at step `t` given `A^t x₀`
    /// already computed.
    fn bounds_at(&self, at_x0: &Vector, r0: f64, t: usize) -> BoxSet {
        let n = self.state_dim();
        let drift = &self.drift[t];
        let spread = &self.spread[t];
        let pow_norm = &self.pow_row_norm[t];
        let lo: Vec<f64> = (0..n)
            .map(|d| at_x0[d] + drift[d] - spread[d] - r0 * pow_norm[d])
            .collect();
        let hi: Vec<f64> = (0..n)
            .map(|d| at_x0[d] + drift[d] + spread[d] + r0 * pow_norm[d])
            .collect();
        BoxSet::from_bounds(&lo, &hi).expect("lo <= hi by construction")
    }

    /// Containment check without allocating the bounds box.
    fn contained_at(&self, at_x0: &Vector, r0: f64, t: usize) -> bool {
        let n = self.state_dim();
        let drift = &self.drift[t];
        let spread = &self.spread[t];
        let pow_norm = &self.pow_row_norm[t];
        let safe = &self.config.safe_set;
        (0..n).all(|d| {
            let center = at_x0[d] + drift[d];
            let half = spread[d] + r0 * pow_norm[d];
            let iv = safe.interval(d);
            center - half >= iv.lo() && center + half <= iv.hi()
        })
    }
}

/// Euclidean norms of each row of `m`.
fn row_norms_l2(m: &Matrix) -> Vector {
    Vector::from_fn(m.rows(), |d| m.row(d).norm_l2())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pure integrator: x_{t+1} = x_t + u_t, |u| <= 1.
    fn integrator(max_steps: usize, safe: f64) -> DeadlineEstimator {
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-safe], &[safe]).unwrap(),
            max_steps,
        )
        .unwrap();
        DeadlineEstimator::new(&a, &b, cfg).unwrap()
    }

    #[test]
    fn config_validation() {
        let bounded = BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap();
        let safe = BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap();
        assert!(matches!(
            ReachConfig::new(BoxSet::entire(1), 0.0, safe.clone(), 10),
            Err(ReachError::InvalidControlBox { .. })
        ));
        assert!(matches!(
            ReachConfig::new(bounded.clone(), -1.0, safe.clone(), 10),
            Err(ReachError::InvalidNoiseBound { .. })
        ));
        assert!(matches!(
            ReachConfig::new(bounded.clone(), 0.0, safe.clone(), 0),
            Err(ReachError::ZeroHorizon)
        ));
        assert!(ReachConfig::new(bounded, 0.0, safe, 10).is_ok());
    }

    #[test]
    fn estimator_shape_validation() {
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap(),
            10,
        )
        .unwrap();
        // Rectangular A.
        assert!(
            DeadlineEstimator::new(&Matrix::zeros(1, 2), &Matrix::zeros(1, 1), cfg.clone())
                .is_err()
        );
        // B row mismatch.
        assert!(
            DeadlineEstimator::new(&Matrix::identity(1), &Matrix::zeros(2, 1), cfg.clone())
                .is_err()
        );
        // Control box vs B columns.
        assert!(
            DeadlineEstimator::new(&Matrix::identity(1), &Matrix::zeros(1, 2), cfg.clone())
                .is_err()
        );
        // Safe set vs state dim.
        let cfg2 = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-5.0, -5.0], &[5.0, 5.0]).unwrap(),
            10,
        )
        .unwrap();
        assert!(DeadlineEstimator::new(
            &Matrix::identity(1),
            &Matrix::from_rows(&[&[1.0]]).unwrap(),
            cfg2
        )
        .is_err());
    }

    #[test]
    fn integrator_reach_box_grows_linearly() {
        let est = integrator(20, 100.0);
        let r3 = est.reach_box(&Vector::zeros(1), 3).unwrap();
        assert!((r3.interval(0).lo() + 3.0).abs() < 1e-12);
        assert!((r3.interval(0).hi() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn integrator_deadline_matches_geometry() {
        let est = integrator(100, 5.0);
        // From 0: |x_t| <= t; escape at t = 6 → deadline 5.
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Within(5));
        // From 3: escape at t = 3 (3+3 > 5) → deadline 2.
        assert_eq!(
            est.deadline(&Vector::from_slice(&[3.0])),
            Deadline::Within(2)
        );
        // From 5.5 (already unsafe): deadline 0.
        assert_eq!(
            est.deadline(&Vector::from_slice(&[5.5])),
            Deadline::Within(0)
        );
    }

    #[test]
    fn horizon_caps_search() {
        let est = integrator(4, 100.0);
        // Escape would happen at t = 101, far past the horizon 4.
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Beyond);
    }

    #[test]
    fn noise_inflates_bounds() {
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[0.0], &[0.0]).unwrap(), // no control authority
            0.5,
            BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(),
            20,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
        let r4 = est.reach_box(&Vector::zeros(1), 4).unwrap();
        // Four noise balls of radius 0.5: ±2.
        assert!((r4.interval(0).hi() - 2.0).abs() < 1e-12);
        // Escape at t = 5 → deadline 4.
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Within(4));
    }

    #[test]
    fn initial_radius_tightens_deadline() {
        let est = integrator(100, 5.0);
        let x0 = Vector::from_slice(&[3.0]);
        let exact = est.checked_deadline(&x0, 0.0).unwrap();
        let fuzzy = est.checked_deadline(&x0, 1.0).unwrap();
        assert!(fuzzy.is_tighter_than(exact));
        // Radius 1 around 3: worst case starts at 4, escape at t=2 → 1.
        assert_eq!(fuzzy, Deadline::Within(1));
    }

    #[test]
    fn contraction_gives_beyond() {
        // Strongly stable system with tiny inputs never escapes.
        let a = Matrix::diagonal(&[0.5]);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-0.1], &[0.1]).unwrap(),
            0.01,
            BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(),
            200,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
        assert_eq!(est.deadline(&Vector::zeros(1)), Deadline::Beyond);
        assert!(est.is_conservatively_safe(&Vector::zeros(1), 200).unwrap());
    }

    #[test]
    fn unsafe_start_is_not_safe() {
        let est = integrator(10, 5.0);
        assert!(!est
            .is_conservatively_safe(&Vector::from_slice(&[6.0]), 0)
            .unwrap());
        assert!(est
            .is_conservatively_safe(&Vector::from_slice(&[0.0]), 4)
            .unwrap());
    }

    #[test]
    fn reach_box_includes_drift_from_asymmetric_control() {
        // Control in [0, 2]: center 1 per step drifts the box upward.
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[0.0], &[2.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-100.0], &[100.0]).unwrap(),
            10,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
        let r3 = est.reach_box(&Vector::zeros(1), 3).unwrap();
        // After 3 steps: x in [0, 6] (each step adds [0, 2]).
        assert!((r3.interval(0).lo() - 0.0).abs() < 1e-12);
        assert!((r3.interval(0).hi() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_dimensional_partial_safe_set() {
        // Only the first dimension is safety-constrained.
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0], &[0.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-3.0, f64::NEG_INFINITY], &[3.0, f64::INFINITY]).unwrap(),
            50,
        )
        .unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();
        assert_eq!(est.deadline(&Vector::zeros(2)), Deadline::Within(3));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let est = integrator(10, 5.0);
        assert!(est.checked_deadline(&Vector::zeros(2), 0.0).is_err());
        assert!(est.reach_box(&Vector::zeros(2), 1).is_err());
        assert!(est.is_conservatively_safe(&Vector::zeros(2), 1).is_err());
    }

    #[test]
    fn reach_box_t_clamped_to_horizon() {
        let est = integrator(5, 100.0);
        let r = est.reach_box(&Vector::zeros(1), 50).unwrap();
        assert!((r.interval(0).hi() - 5.0).abs() < 1e-12);
    }
}
