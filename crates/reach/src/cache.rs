use std::collections::{HashMap, VecDeque};

use awsad_linalg::Vector;

use crate::{Deadline, DeadlineEstimator, DeadlineScratch, Result};

/// Configuration of a [`DeadlineCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Quantization step applied per state dimension when forming the
    /// cache key.
    ///
    /// `0.0` (the default) keys on the exact bit pattern of the
    /// trusted state: hits only occur when the same state recurs
    /// exactly, and cached answers are **identical** to uncached
    /// queries — detection decisions are unchanged.
    ///
    /// A positive quantum `q` snaps each coordinate to its nearest
    /// multiple of `q`, so nearby states share one entry. To stay
    /// *sound*, the cached deadline is computed from the snapped
    /// representative with the initial-state uncertainty radius
    /// inflated by `q·√n/2` — every state in the bin lies inside that
    /// ball, so the cached deadline is conservative (never later than
    /// the true deadline) for the whole bin. Larger `q` → higher hit
    /// rate, but up-to-`q·√n/2`-worth of extra pessimism in the
    /// deadline and therefore smaller detection windows.
    pub quantum: f64,
    /// Maximum number of retained entries; the oldest entry is evicted
    /// (FIFO) once the bound is reached.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            quantum: 0.0,
            capacity: 4096,
        }
    }
}

impl CacheConfig {
    /// An exact-key cache (quantum 0) with the given capacity.
    pub fn exact(capacity: usize) -> Self {
        CacheConfig {
            quantum: 0.0,
            capacity,
        }
    }

    /// A quantized cache with the given bin width and capacity.
    pub fn quantized(quantum: f64, capacity: usize) -> Self {
        CacheConfig { quantum, capacity }
    }
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran the full deadline search.
    pub misses: u64,
    /// Entries evicted to honor the capacity bound.
    pub evictions: u64,
    /// Entries currently retained.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any query.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoization layer over [`DeadlineEstimator::checked_deadline`].
///
/// The deadline search is the dominant per-step cost of the adaptive
/// detector — `O(w_m · n²)` per query — yet consecutive control steps
/// frequently query near-identical trusted states (steady-state
/// operation, convergent regulation). The cache maps a (quantized)
/// trusted state to its deadline, bounded by a FIFO eviction policy.
///
/// See [`CacheConfig::quantum`] for the exactness/soundness contract.
#[derive(Debug, Clone)]
pub struct DeadlineCache {
    config: CacheConfig,
    entries: HashMap<Vec<u64>, Deadline>,
    order: VecDeque<Vec<u64>>,
    stats: CacheStats,
    /// Reusable key buffer so hit-path lookups allocate nothing.
    key_scratch: Vec<u64>,
}

/// Builds the cache key for `(x0, r0)` into `key` (cleared first):
/// per-dimension quantized bins when `quantum > 0`, exact f64 bit
/// patterns otherwise, with `r0`'s bits appended.
fn build_key(quantum: f64, x0: &Vector, r0: f64, key: &mut Vec<u64>) {
    key.clear();
    key.reserve(x0.len() + 1);
    for d in 0..x0.len() {
        if quantum > 0.0 {
            key.push((x0[d] / quantum).round() as i64 as u64);
        } else {
            key.push(x0[d].to_bits());
        }
    }
    key.push(r0.to_bits());
}

impl DeadlineCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let capacity = config.capacity.max(1);
        DeadlineCache {
            config: CacheConfig { capacity, ..config },
            entries: HashMap::with_capacity(capacity.min(1024)),
            order: VecDeque::new(),
            stats: CacheStats::default(),
            key_scratch: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Effectiveness counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            len: self.entries.len(),
            ..self.stats
        }
    }

    /// The deadline from `x0` with initial-state radius `r0`, answered
    /// from the cache when possible.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ReachError::DimensionMismatch`] for a
    /// wrong-length `x0`.
    pub fn deadline(
        &mut self,
        estimator: &DeadlineEstimator,
        x0: &Vector,
        r0: f64,
    ) -> Result<Deadline> {
        let mut scratch = DeadlineScratch::new();
        self.deadline_with(estimator, x0, r0, &mut scratch)
    }

    /// Like [`DeadlineCache::deadline`], but misses run the
    /// allocation-free walk on caller-held scratch — on a hit the
    /// lookup itself allocates nothing (the key is built in a reusable
    /// buffer), so a warm cache keeps the detect path heap-quiet.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ReachError::DimensionMismatch`] for a
    /// wrong-length `x0`.
    pub fn deadline_with(
        &mut self,
        estimator: &DeadlineEstimator,
        x0: &Vector,
        r0: f64,
        scratch: &mut DeadlineScratch,
    ) -> Result<Deadline> {
        build_key(self.config.quantum, x0, r0, &mut self.key_scratch);
        if let Some(&hit) = self.entries.get(self.key_scratch.as_slice()) {
            self.stats.hits += 1;
            return Ok(hit);
        }
        self.stats.misses += 1;
        let q = self.config.quantum;
        let deadline = if q > 0.0 {
            // Evaluate at the bin's snapped representative with the
            // radius inflated to cover the whole bin (soundness: every
            // state keyed here lies within q·√n/2 of the
            // representative).
            let snapped = Vector::from_fn(x0.len(), |d| (x0[d] / q).round() * q);
            let inflation = 0.5 * q * (x0.len() as f64).sqrt();
            estimator.checked_deadline_with(&snapped, r0 + inflation, scratch)?
        } else {
            estimator.checked_deadline_with(x0, r0, scratch)?
        };
        let key = self.key_scratch.clone();
        self.insert(key, deadline);
        Ok(deadline)
    }

    /// The lookup half of [`DeadlineCache::deadline_with`], split out
    /// for callers that resolve misses in bulk: builds the key and
    /// returns the cached deadline, counting a hit — or counts a miss
    /// and returns `None`, leaving the computation to the caller.
    ///
    /// A caller that answers the miss must evaluate it exactly as
    /// [`DeadlineCache::deadline_with`] would (for an exact-mode cache,
    /// `quantum == 0`: a plain walk from `(x0, r0)`) and hand the
    /// result back through [`DeadlineCache::insert_computed`] with the
    /// same `(x0, r0)`. The pair then reproduces `deadline_with`'s
    /// cache state and statistics exactly: one miss counted here, no
    /// extra count at insert. The runtime's batch planner uses this to
    /// fold many sessions' misses into one batched walk; it only
    /// batches exact-mode caches, since a quantized miss must be
    /// re-evaluated at its snapped representative with an inflated
    /// radius.
    pub fn lookup(&mut self, x0: &Vector, r0: f64) -> Option<Deadline> {
        build_key(self.config.quantum, x0, r0, &mut self.key_scratch);
        if let Some(&hit) = self.entries.get(self.key_scratch.as_slice()) {
            self.stats.hits += 1;
            return Some(hit);
        }
        self.stats.misses += 1;
        None
    }

    /// Stores a deadline the caller computed for a
    /// [`DeadlineCache::lookup`] miss on the same `(x0, r0)`. Counts
    /// nothing — the miss was already counted by the lookup — so
    /// `lookup` + compute + `insert_computed` is stat-identical and
    /// state-identical to one [`DeadlineCache::deadline_with`] call.
    pub fn insert_computed(&mut self, x0: &Vector, r0: f64, deadline: Deadline) {
        build_key(self.config.quantum, x0, r0, &mut self.key_scratch);
        let key = self.key_scratch.clone();
        self.insert(key, deadline);
    }

    /// Speculatively fills the cache for a batch of states with one
    /// [`DeadlineEstimator::deadline_batch`] walk.
    ///
    /// States already cached (or duplicated within `states`) are
    /// skipped; the rest are evaluated together — in quantized mode at
    /// their snapped representatives with the usual radius inflation,
    /// so a prewarmed entry is bit-identical to the one a cache miss
    /// would have produced. Each computed entry counts as a miss
    /// (the later lookup that consumes it then counts as a hit, which
    /// keeps hit-rate accounting aligned with the scalar miss path).
    ///
    /// Returns the number of entries computed.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ReachError::DimensionMismatch`] if any state
    /// has the wrong length; nothing is inserted in that case.
    pub fn prewarm(
        &mut self,
        estimator: &DeadlineEstimator,
        states: &[&Vector],
        r0: f64,
    ) -> Result<usize> {
        let q = self.config.quantum;
        let mut keys: Vec<Vec<u64>> = Vec::new();
        let mut reps: Vec<Vector> = Vec::new();
        for s in states {
            build_key(q, s, r0, &mut self.key_scratch);
            if self.entries.contains_key(self.key_scratch.as_slice())
                || keys.contains(&self.key_scratch)
            {
                continue;
            }
            keys.push(self.key_scratch.clone());
            reps.push(if q > 0.0 {
                Vector::from_fn(s.len(), |d| (s[d] / q).round() * q)
            } else {
                (*s).clone()
            });
        }
        if reps.is_empty() {
            return Ok(0);
        }
        let eff_r0 = if q > 0.0 {
            r0 + 0.5 * q * (reps[0].len() as f64).sqrt()
        } else {
            r0
        };
        let deadlines = estimator.deadline_batch(&reps, eff_r0)?;
        let count = deadlines.len();
        for (key, deadline) in keys.into_iter().zip(deadlines) {
            self.stats.misses += 1;
            self.insert(key, deadline);
        }
        Ok(count)
    }

    /// Drops all entries (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    fn insert(&mut self, key: Vec<u64>, deadline: Deadline) {
        while self.entries.len() >= self.config.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
            self.stats.evictions += 1;
        }
        if self.entries.insert(key.clone(), deadline).is_none() {
            self.order.push_back(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReachConfig;
    use awsad_linalg::Matrix;
    use awsad_sets::BoxSet;

    /// Pure integrator: x_{t+1} = x_t + u_t, |u| <= 1, safe |x| <= 5.
    fn integrator() -> DeadlineEstimator {
        let a = Matrix::identity(1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let cfg = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap(),
            100,
        )
        .unwrap();
        DeadlineEstimator::new(&a, &b, cfg).unwrap()
    }

    fn v(x: f64) -> Vector {
        Vector::from_slice(&[x])
    }

    #[test]
    fn exact_mode_matches_uncached_and_counts_hits() {
        let est = integrator();
        let mut cache = DeadlineCache::new(CacheConfig::exact(64));
        for x in [0.0, 3.0, 0.0, 3.0, 0.0] {
            let cached = cache.deadline(&est, &v(x), 0.0).unwrap();
            assert_eq!(cached, est.checked_deadline(&v(x), 0.0).unwrap());
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.len, 2);
        assert!((stats.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn lookup_insert_computed_reproduces_deadline_with_exactly() {
        let est = integrator();
        let mut split = DeadlineCache::new(CacheConfig::exact(64));
        let mut fused = DeadlineCache::new(CacheConfig::exact(64));
        let mut scratch = crate::DeadlineScratch::new();
        for x in [0.0, 3.0, 0.0, -2.5, 3.0, 0.0] {
            let reference = fused.deadline_with(&est, &v(x), 0.0, &mut scratch).unwrap();
            let got = match split.lookup(&v(x), 0.0) {
                Some(hit) => hit,
                None => {
                    let d = est.checked_deadline_with(&v(x), 0.0, &mut scratch).unwrap();
                    split.insert_computed(&v(x), 0.0, d);
                    d
                }
            };
            assert_eq!(got, reference, "x={x}");
        }
        assert_eq!(split.stats(), fused.stats());
    }

    #[test]
    fn exact_mode_distinguishes_radii() {
        let est = integrator();
        let mut cache = DeadlineCache::new(CacheConfig::exact(64));
        let a = cache.deadline(&est, &v(3.0), 0.0).unwrap();
        let b = cache.deadline(&est, &v(3.0), 1.0).unwrap();
        assert!(b.is_tighter_than(a));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn quantized_mode_is_sound() {
        let est = integrator();
        let q = 0.5;
        let mut cache = DeadlineCache::new(CacheConfig::quantized(q, 64));
        // Every cached answer must be no later than the exact deadline
        // for every state in its bin.
        for i in 0..40 {
            let x = -4.0 + 0.2 * i as f64;
            let cached = cache.deadline(&est, &v(x), 0.0).unwrap();
            let exact = est.checked_deadline(&v(x), 0.0).unwrap();
            assert!(
                cached == exact || cached.is_tighter_than(exact),
                "x={x}: cached {cached} later than exact {exact}"
            );
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "bin sharing must produce hits");
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let est = integrator();
        let mut cache = DeadlineCache::new(CacheConfig::exact(4));
        for i in 0..10 {
            cache.deadline(&est, &v(i as f64 * 0.1), 0.0).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.len, 4);
        assert_eq!(stats.evictions, 6);
        // The oldest keys were evicted: re-querying them misses.
        cache.deadline(&est, &v(0.0), 0.0).unwrap();
        assert_eq!(cache.stats().misses, 11);
    }

    #[test]
    fn clear_preserves_counters() {
        let est = integrator();
        let mut cache = DeadlineCache::new(CacheConfig::exact(8));
        cache.deadline(&est, &v(1.0), 0.0).unwrap();
        cache.clear();
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let est = integrator();
        let mut cache = DeadlineCache::new(CacheConfig::default());
        assert!(cache.deadline(&est, &Vector::zeros(2), 0.0).is_err());
    }

    #[test]
    fn deadline_with_scratch_matches_plain_lookup() {
        let est = integrator();
        let mut plain = DeadlineCache::new(CacheConfig::exact(64));
        let mut scratched = DeadlineCache::new(CacheConfig::exact(64));
        let mut scratch = DeadlineScratch::new();
        for x in [0.0, 3.0, 0.0, -2.0, 3.0] {
            let a = plain.deadline(&est, &v(x), 0.0).unwrap();
            let b = scratched
                .deadline_with(&est, &v(x), 0.0, &mut scratch)
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), scratched.stats());
    }

    #[test]
    fn prewarm_turns_lookups_into_hits() {
        let est = integrator();
        let mut cache = DeadlineCache::new(CacheConfig::exact(64));
        let states = [v(0.0), v(3.0), v(0.0), v(-2.0)];
        let refs: Vec<&Vector> = states.iter().collect();
        // 4 states, 3 distinct: exactly 3 batch computations.
        assert_eq!(cache.prewarm(&est, &refs, 0.0).unwrap(), 3);
        assert_eq!(cache.stats().misses, 3);
        for s in &states {
            let cached = cache.deadline(&est, s, 0.0).unwrap();
            assert_eq!(cached, est.checked_deadline(s, 0.0).unwrap());
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 4, "all post-prewarm lookups must hit");
        assert_eq!(stats.misses, 3);
        // Prewarming again computes nothing.
        assert_eq!(cache.prewarm(&est, &refs, 0.0).unwrap(), 0);
    }

    #[test]
    fn prewarm_quantized_matches_miss_path() {
        let est = integrator();
        let q = 0.5;
        let states: Vec<Vector> = (0..10).map(|i| v(-2.0 + 0.3 * i as f64)).collect();
        let refs: Vec<&Vector> = states.iter().collect();
        let mut warmed = DeadlineCache::new(CacheConfig::quantized(q, 64));
        warmed.prewarm(&est, &refs, 0.0).unwrap();
        let mut cold = DeadlineCache::new(CacheConfig::quantized(q, 64));
        for s in &states {
            let a = warmed.deadline(&est, s, 0.0).unwrap();
            let b = cold.deadline(&est, s, 0.0).unwrap();
            assert_eq!(a, b, "prewarmed entry must equal the miss-path entry");
        }
        assert_eq!(warmed.stats().hits, states.len() as u64);
    }

    #[test]
    fn prewarm_dimension_mismatch_inserts_nothing() {
        let est = integrator();
        let mut cache = DeadlineCache::new(CacheConfig::exact(64));
        let good = v(1.0);
        let bad = Vector::zeros(2);
        assert!(cache.prewarm(&est, &[&good, &bad], 0.0).is_err());
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().misses, 0);
    }
}
