use std::fmt;

/// Result of a deadline search (§3.3).
///
/// `Within(t_d)` means the reachable-set over-approximation first
/// intersects the unsafe set at step `t_d + 1`, so an attack must be
/// detected within `t_d` steps. `Beyond` means no intersection was
/// found within the configured horizon (the maximum detection window
/// size `w_m`), so the detector may use its largest window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Deadline {
    /// The detection deadline in control steps; `Within(0)` means the
    /// very next step may already be unsafe.
    Within(usize),
    /// No unsafe intersection within the search horizon.
    Beyond,
}

impl Deadline {
    /// Converts the deadline into a detection window size, clamped to
    /// `[min_window, max_window]` (§4.2/§4.3: `w_c = t_d`, capped by
    /// the maximum window `w_m`; a floor of at least one step keeps
    /// the detector running even when the deadline is 0).
    pub fn window_size(self, min_window: usize, max_window: usize) -> usize {
        match self {
            Deadline::Within(t_d) => t_d.clamp(min_window, max_window),
            Deadline::Beyond => max_window,
        }
    }

    /// The raw step count, or `None` for [`Deadline::Beyond`].
    pub fn steps(self) -> Option<usize> {
        match self {
            Deadline::Within(t) => Some(t),
            Deadline::Beyond => None,
        }
    }

    /// Whether this deadline is tighter (smaller) than `other`.
    /// `Beyond` is never tighter than anything.
    pub fn is_tighter_than(self, other: Deadline) -> bool {
        match (self, other) {
            (Deadline::Within(a), Deadline::Within(b)) => a < b,
            (Deadline::Within(_), Deadline::Beyond) => true,
            (Deadline::Beyond, _) => false,
        }
    }
}

impl fmt::Display for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Deadline::Within(t) => write!(f, "within {t} steps"),
            Deadline::Beyond => write!(f, "beyond horizon"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_size_clamps() {
        assert_eq!(Deadline::Within(10).window_size(1, 40), 10);
        assert_eq!(Deadline::Within(100).window_size(1, 40), 40);
        assert_eq!(Deadline::Within(0).window_size(1, 40), 1);
        assert_eq!(Deadline::Beyond.window_size(1, 40), 40);
    }

    #[test]
    fn steps_accessor() {
        assert_eq!(Deadline::Within(7).steps(), Some(7));
        assert_eq!(Deadline::Beyond.steps(), None);
    }

    #[test]
    fn tightness_ordering() {
        assert!(Deadline::Within(3).is_tighter_than(Deadline::Within(5)));
        assert!(!Deadline::Within(5).is_tighter_than(Deadline::Within(3)));
        assert!(Deadline::Within(100).is_tighter_than(Deadline::Beyond));
        assert!(!Deadline::Beyond.is_tighter_than(Deadline::Within(0)));
        assert!(!Deadline::Beyond.is_tighter_than(Deadline::Beyond));
    }

    #[test]
    fn display() {
        assert_eq!(Deadline::Within(4).to_string(), "within 4 steps");
        assert_eq!(Deadline::Beyond.to_string(), "beyond horizon");
    }
}
