//! Soundness of the reachable-set over-approximation: no simulated
//! trajectory under admissible control and bounded noise ever leaves
//! the reach box, and the deadline is conservative (the true system
//! cannot become unsafe at or before the deadline step).

use awsad_linalg::{Matrix, Vector};
use awsad_lti::{LtiSystem, NoiseModel, Plant};
use awsad_reach::{Deadline, DeadlineEstimator, ReachConfig};
use awsad_sets::BoxSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// A random stable-ish 2x2 system with 1 input.
fn random_system(rng: &mut StdRng) -> (Matrix, Matrix) {
    let a = &Matrix::from_fn(2, 2, |_, _| rng.random_range(-0.6..0.6))
        + &Matrix::diagonal(&[rng.random_range(0.3..0.9), rng.random_range(0.3..0.9)]);
    let b = Matrix::from_fn(2, 1, |_, _| rng.random_range(-1.0..1.0));
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trajectories_stay_inside_reach_box(seed in 0u64..10_000, eps in 0.0..0.2f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = random_system(&mut rng);
        let control_box = BoxSet::from_bounds(&[-1.5], &[1.5]).unwrap();
        let cfg = ReachConfig::new(
            control_box.clone(),
            eps,
            BoxSet::entire(2),
            25,
        ).unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();

        let sys = LtiSystem::new_discrete_fully_observable(a, b, 0.02).unwrap();
        let x0 = Vector::from_slice(&[rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)]);
        let noise = if eps > 0.0 { NoiseModel::uniform_ball(eps).unwrap() } else { NoiseModel::None };
        let mut plant = Plant::new(sys, x0.clone(), noise);

        for t in 1..=25usize {
            // Random admissible control input.
            let u = control_box.clamp(&Vector::from_slice(&[rng.random_range(-1.5..1.5)]));
            plant.step(&u, &mut rng);
            let reach = est.reach_box(&x0, t).unwrap();
            prop_assert!(
                reach.contains(plant.state()),
                "state {:?} escaped reach box {} at t={}",
                plant.state(), reach, t
            );
        }
    }

    #[test]
    fn deadline_is_conservative(seed in 0u64..10_000) {
        // The plant cannot actually become unsafe at or before the
        // deadline step, whatever admissible control acts on it.
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = random_system(&mut rng);
        let control_box = BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap();
        let safe = BoxSet::from_bounds(&[-3.0, -3.0], &[3.0, 3.0]).unwrap();
        let eps = 0.05;
        let cfg = ReachConfig::new(control_box.clone(), eps, safe.clone(), 30).unwrap();
        let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();

        let x0 = Vector::from_slice(&[rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)]);
        if !safe.contains(&x0) {
            return Ok(()); // start must be safe for the property to apply
        }
        let t_d = match est.deadline(&x0) {
            Deadline::Within(t) => t,
            Deadline::Beyond => 30,
        };

        // Adversarial-ish rollout: bang-bang control toward the nearest
        // unsafe face, plus worst-case-scaled noise.
        let sys = LtiSystem::new_discrete_fully_observable(a, b, 0.02).unwrap();
        let mut plant = Plant::new(sys, x0, NoiseModel::uniform_ball(eps).unwrap());
        for t in 1..=t_d {
            let s = plant.state().clone();
            let dir = if s[0] >= 0.0 { 1.0 } else { -1.0 };
            let u = Vector::from_slice(&[dir]);
            plant.step(&u, &mut rng);
            prop_assert!(
                safe.contains(plant.state()),
                "became unsafe at t={} <= deadline {}",
                t, t_d
            );
        }
    }
}

#[test]
fn deadline_shrinks_as_state_approaches_unsafe_boundary() {
    // Vehicle-turning-like scalar lag: the closer the state to the
    // boundary, the smaller the deadline — the monotonicity the
    // adaptive window protocol exploits.
    let a = Matrix::diagonal(&[0.96]);
    let b = Matrix::from_rows(&[&[0.04]]).unwrap();
    let cfg = ReachConfig::new(
        BoxSet::from_bounds(&[-3.0], &[3.0]).unwrap(),
        0.075,
        BoxSet::from_bounds(&[-2.0], &[2.0]).unwrap(),
        100,
    )
    .unwrap();
    let est = DeadlineEstimator::new(&a, &b, cfg).unwrap();

    let mut prev = None;
    for x in [0.0, 0.5, 1.0, 1.5, 1.9] {
        let d = est.deadline(&Vector::from_slice(&[x]));
        if let (Some(p), Deadline::Within(t)) = (prev, d) {
            let pt = match p {
                Deadline::Within(t) => t,
                Deadline::Beyond => usize::MAX,
            };
            assert!(t <= pt, "deadline grew from {pt} to {t} at x={x}");
        }
        prev = Some(d);
    }
    // Near the boundary the deadline must actually be finite and small.
    match est.deadline(&Vector::from_slice(&[1.9])) {
        Deadline::Within(t) => assert!(t < 20, "deadline {t} suspiciously large near boundary"),
        Deadline::Beyond => panic!("expected finite deadline near the boundary"),
    }
}

/// Polytope-estimator soundness: under admissible control and bounded
/// noise, no trajectory violates a safe face at or before the
/// estimated deadline.
#[test]
fn polytope_deadline_is_conservative() {
    use awsad_reach::PolytopeDeadlineEstimator;
    use awsad_sets::{Halfspace, Polytope};

    let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 0.95]]).unwrap();
    let b = Matrix::from_rows(&[&[0.0], &[0.1]]).unwrap();
    let control = BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap();
    let eps = 0.02;
    // Coupled face: x + 2 v <= 3, plus a box face x <= 3.
    let safe = Polytope::new(vec![
        Halfspace::new(Vector::from_slice(&[1.0, 0.0]), 3.0).unwrap(),
        Halfspace::new(Vector::from_slice(&[1.0, 2.0]), 3.0).unwrap(),
    ])
    .unwrap();
    let est = PolytopeDeadlineEstimator::new(&a, &b, control, eps, safe.clone(), 50).unwrap();

    let mut rng = StdRng::seed_from_u64(1234);
    for trial in 0..50 {
        let x0 = Vector::from_slice(&[rng.random_range(-1.0..2.0), rng.random_range(-0.5..0.5)]);
        if !safe.contains(&x0) {
            continue;
        }
        let t_d = match est.deadline(&x0) {
            Deadline::Within(t) => t,
            Deadline::Beyond => 50,
        };
        // Aggressive rollout toward the faces.
        let sys = LtiSystem::new_discrete_fully_observable(a.clone(), b.clone(), 0.1).unwrap();
        let mut plant = Plant::new(sys, x0, NoiseModel::uniform_ball(eps).unwrap());
        for t in 1..=t_d {
            plant.step(&Vector::from_slice(&[1.0]), &mut rng);
            assert!(
                safe.contains(plant.state()),
                "trial {trial}: violated a face at t={t} <= deadline {t_d}"
            );
        }
    }
}
