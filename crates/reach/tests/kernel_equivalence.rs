//! Bit-level equivalence of the three deadline-walk implementations.
//!
//! The allocation-free scalar path (`checked_deadline_with`), the
//! batched path (`deadline_batch`) and the seed's per-step walk
//! (`reference_deadline`) must agree on the `Deadline` for every
//! query — and the flat-table `reach_box` bounds must be bit-for-bit
//! identical to a from-scratch reconstruction of the seed's
//! `Vec<Vector>` tables. This is what lets `DeadlineCache` exact-key
//! semantics and the pinned `results/*.csv` survive the kernel
//! rewrite.

use awsad_linalg::{Matrix, Vector};
use awsad_reach::{Deadline, DeadlineEstimator, DeadlineScratch, ReachConfig};
use awsad_sets::BoxSet;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const MODELS: usize = 200;
const STATES_PER_MODEL: usize = 4;

/// A random 2–5 dimensional model: roughly half stable, half unstable
/// (spectral radius above 1), with occasional unbounded safe
/// dimensions to exercise the ±∞ admissible-box folds.
struct RandomModel {
    a: Matrix,
    b: Matrix,
    cfg: ReachConfig,
    states: Vec<Vector>,
    r0: f64,
}

fn random_model(rng: &mut StdRng) -> RandomModel {
    let n = rng.random_range(2..=5usize);
    let m = rng.random_range(1..=2usize);
    let raw = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
    // norm_inf bounds the spectral radius, so `target` splits the
    // draw into contractive and expansive systems.
    let target = rng.random_range(0.5..1.1);
    let a = raw.scale(target / raw.norm_inf().max(1e-6));
    let b = Matrix::from_fn(n, m, |_, _| rng.random_range(-1.0..1.0));

    let (ulo, uhi): (Vec<f64>, Vec<f64>) = (0..m)
        .map(|_| {
            let lo = rng.random_range(-0.5..0.1);
            (lo, lo + rng.random_range(0.0..0.5))
        })
        .unzip();
    let epsilon = if rng.random_range(0.0..1.0) < 0.5 {
        0.0
    } else {
        rng.random_range(0.0..0.05)
    };
    let (slo, shi): (Vec<f64>, Vec<f64>) = (0..n)
        .map(|_| {
            if rng.random_range(0.0..1.0) < 0.1 {
                (f64::NEG_INFINITY, f64::INFINITY)
            } else {
                let center = rng.random_range(-1.0..1.0);
                let half = rng.random_range(0.5..3.0);
                (center - half, center + half)
            }
        })
        .unzip();
    let max_steps = rng.random_range(10..=40usize);
    let cfg = ReachConfig::new(
        BoxSet::from_bounds(&ulo, &uhi).unwrap(),
        epsilon,
        BoxSet::from_bounds(&slo, &shi).unwrap(),
        max_steps,
    )
    .unwrap();
    let states = (0..STATES_PER_MODEL)
        .map(|_| Vector::from_fn(n, |_| rng.random_range(-3.0..3.0)))
        .collect();
    let r0 = if rng.random_range(0.0..1.0) < 0.5 {
        0.0
    } else {
        rng.random_range(0.0..0.3)
    };
    RandomModel {
        a,
        b,
        cfg,
        states,
        r0,
    }
}

/// The seed's table construction, verbatim (owned `Vector` rows,
/// `Vec<Vector>` tables), used to cross-check the estimator's flat
/// tables through its `reach_box` output.
fn seed_tables(
    a: &Matrix,
    b: &Matrix,
    cfg: &ReachConfig,
) -> (Vec<Vector>, Vec<Vector>, Vec<Vector>) {
    let n = a.rows();
    let c = cfg.control_box().center();
    let q = cfg.control_box().scaling_matrix();
    let bq = b.checked_mul(&q).unwrap();
    let bc = b.checked_mul_vec(&c).unwrap();
    let horizon = cfg.max_steps();
    let mut drift = Vec::with_capacity(horizon + 1);
    let mut spread = Vec::with_capacity(horizon + 1);
    let mut pow_row_norm = Vec::with_capacity(horizon + 1);
    drift.push(Vector::zeros(n));
    spread.push(Vector::zeros(n));
    let row_norms_l2 = |m: &Matrix| Vector::from_fn(m.rows(), |d| m.row(d).norm_l2());
    let mut a_pow = Matrix::identity(n);
    for t in 0..horizon {
        pow_row_norm.push(row_norms_l2(&a_pow));
        let aibq = a_pow.checked_mul(&bq).unwrap();
        let aibc = a_pow.checked_mul_vec(&bc).unwrap();
        let prev_drift = &drift[t];
        drift.push(prev_drift + &aibc);
        let mut s = spread[t].clone();
        for d in 0..n {
            let control_term = aibq.row(d).norm_l1();
            let noise_term = cfg.epsilon() * a_pow.row(d).norm_l2();
            s[d] += control_term + noise_term;
        }
        spread.push(s);
        a_pow = a_pow.checked_mul(a).unwrap();
    }
    pow_row_norm.push(row_norms_l2(&a_pow));
    (drift, spread, pow_row_norm)
}

#[test]
fn all_three_walks_and_reach_boxes_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
    let mut scratch = DeadlineScratch::new();
    let mut beyond = 0usize;
    let mut within = 0usize;
    for model_idx in 0..MODELS {
        let model = random_model(&mut rng);
        let est = DeadlineEstimator::new(&model.a, &model.b, model.cfg.clone()).unwrap();

        // Deadlines: batch vs scratch scalar vs seed reference.
        let batch = est.deadline_batch(&model.states, model.r0).unwrap();
        for (s, b) in model.states.iter().zip(&batch) {
            let reference = est.reference_deadline(s, model.r0).unwrap();
            let scalar = est.checked_deadline(s, model.r0).unwrap();
            let scalar_scratch = est
                .checked_deadline_with(s, model.r0, &mut scratch)
                .unwrap();
            assert_eq!(scalar, reference, "model {model_idx}: scalar vs reference");
            assert_eq!(
                scalar_scratch, reference,
                "model {model_idx}: scratch vs reference"
            );
            assert_eq!(*b, reference, "model {model_idx}: batch vs reference");
            match reference {
                Deadline::Beyond => beyond += 1,
                Deadline::Within(_) => within += 1,
            }
        }

        // Reach boxes: flat tables vs the seed's Vec<Vector> tables,
        // bit-for-bit at every horizon step.
        let (drift, spread, pow_row_norm) = seed_tables(&model.a, &model.b, &model.cfg);
        let n = est.state_dim();
        let x0 = &model.states[0];
        let mut at_x0 = x0.clone();
        for t in 0..=model.cfg.max_steps() {
            if t > 0 {
                at_x0 = est_a_mul(&model.a, &at_x0);
            }
            let rb = est.reach_box_with_radius(x0, model.r0, t).unwrap();
            for d in 0..n {
                let lo = at_x0[d] + drift[t][d] - spread[t][d] - model.r0 * pow_row_norm[t][d];
                let hi = at_x0[d] + drift[t][d] + spread[t][d] + model.r0 * pow_row_norm[t][d];
                assert_eq!(
                    rb.interval(d).lo().to_bits(),
                    lo.to_bits(),
                    "model {model_idx} t={t} d={d}: reach_box lo differs"
                );
                assert_eq!(
                    rb.interval(d).hi().to_bits(),
                    hi.to_bits(),
                    "model {model_idx} t={t} d={d}: reach_box hi differs"
                );
            }
        }
    }
    // The draw must actually exercise both outcomes to mean anything.
    assert!(beyond > 20, "too few Beyond outcomes: {beyond}");
    assert!(within > 20, "too few Within outcomes: {within}");
}

fn est_a_mul(a: &Matrix, x: &Vector) -> Vector {
    a.checked_mul_vec(x).unwrap()
}
