//! End-to-end loopback tests for the readiness-based server.
//!
//! The load-bearing guarantees proven here:
//!
//! * the `AdaptiveStep` stream a client receives from [`NetServer`]
//!   is **byte-identical** to stepping a local `DetectionEngine` on
//!   the same pinned scenario — on both poller backends;
//! * unmodified `awsad_serve` clients (blocking and reconnecting)
//!   drive the new server, including snapshot/restore across a
//!   kill-and-restart;
//! * frames torn across arbitrarily many wakeups decode to the same
//!   replies as whole frames, and the resumes are counted;
//! * pipelined requests answer strictly in order with correlation
//!   ids echoed;
//! * protocol errors, session quotas, TTL eviction, and connection
//!   isolation behave exactly like the blocking server.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use awsad_core::{AdaptiveDetector, AdaptiveStep, DetectorConfig};
use awsad_models::Simulator;
use awsad_net::{NetServer, NetServerConfig};
use awsad_runtime::{DetectionEngine, EngineConfig, Tick, TickOutcome};
use awsad_serve::client::{Client, ClientError};
use awsad_serve::reconnect::{ReconnectingClient, RetryPolicy};
use awsad_serve::wire::{
    read_envelope, write_frame_corr, ErrorCode, Frame, SessionSpec, WireTick, DEFAULT_MAX_FRAME_LEN,
};

/// The pinned scenario: vehicle turning (Table 1 row 2) under a
/// deterministic trace that regulates for a while, then takes a bias
/// jump which must trip alarms. Pure arithmetic — no RNG.
fn pinned_trace(len: usize) -> Vec<WireTick> {
    let model = Simulator::VehicleTurning.build();
    (0..len)
        .map(|t| {
            let mut estimate = model.x0.clone().into_vec();
            estimate[0] += 0.01 * ((t % 4) as f64);
            if t >= len / 2 {
                estimate[0] += 0.9;
            }
            WireTick {
                estimate,
                input: vec![0.0; model.system.input_dim()],
            }
        })
        .collect()
}

/// The same scenario stepped through a local engine (the PR 1 path).
fn direct_engine_steps(trace: &[WireTick]) -> Vec<AdaptiveStep> {
    let model = Simulator::VehicleTurning.build();
    let w_m = model.default_max_window;
    let det_cfg = DetectorConfig::new(model.threshold.clone(), w_m).unwrap();
    let detector = AdaptiveDetector::new(det_cfg, model.deadline_estimator(w_m).unwrap()).unwrap();
    let logger = model.data_logger(w_m);
    let engine = DetectionEngine::new(EngineConfig::default());
    let (session, outcomes) = engine.add_session(logger, detector);
    for tick in trace {
        session
            .submit(Tick {
                estimate: awsad_linalg::Vector::from_slice(&tick.estimate),
                input: awsad_linalg::Vector::from_slice(&tick.input),
            })
            .unwrap();
    }
    engine.drain();
    outcomes.try_iter().map(|o: TickOutcome| o.step).collect()
}

fn wait_for(mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn two_shard_config() -> NetServerConfig {
    NetServerConfig {
        shards: 2,
        ..NetServerConfig::default()
    }
}

#[test]
fn remote_stream_is_byte_identical_on_both_backends() {
    for force_poll in [false, true] {
        let config = NetServerConfig {
            force_poll,
            ..two_shard_config()
        };
        let server = NetServer::bind("127.0.0.1:0", config).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let session = client
            .open_session(&SessionSpec::model_defaults(2))
            .unwrap();
        assert_eq!(session.state_dim, 1);

        let trace = pinned_trace(120);
        let mut outcomes = Vec::with_capacity(trace.len());
        for chunk in trace.chunks(10) {
            outcomes.extend(client.tick_batch(session.id, chunk).unwrap());
        }
        let steps: Vec<AdaptiveStep> = outcomes.iter().map(|o| o.to_step()).collect();
        assert_eq!(
            steps,
            direct_engine_steps(&trace),
            "backend force_poll={force_poll}: remote stream must equal direct stepping"
        );
        assert!(
            outcomes.iter().any(|o| o.alarm()),
            "pinned scenario must trip at least one alarm"
        );
        client.close_session(session.id).unwrap();
        server.shutdown();
    }
}

#[test]
fn pipelined_requests_answer_in_order_with_corr_echo() {
    let server = NetServer::bind("127.0.0.1:0", two_shard_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Open a session first (one round trip so we know its id).
    write_frame_corr(
        &mut stream,
        &Frame::OpenSession(SessionSpec::model_defaults(2)),
        Some(1),
    )
    .unwrap();
    let env = read_envelope(&mut stream, DEFAULT_MAX_FRAME_LEN).unwrap();
    assert_eq!(env.corr, Some(1));
    let Frame::SessionOpened { session, .. } = env.frame else {
        panic!("expected SessionOpened, got {:?}", env.frame);
    };

    // Now pipeline a burst without reading a single reply: ticks
    // interleaved with other request kinds, each with its own corr.
    let trace = pinned_trace(8);
    for (i, tick) in trace.iter().enumerate() {
        write_frame_corr(
            &mut stream,
            &Frame::Tick {
                session,
                ticks: vec![tick.clone()],
            },
            Some(100 + i as u64),
        )
        .unwrap();
        write_frame_corr(&mut stream, &Frame::MetricsQuery, Some(200 + i as u64)).unwrap();
    }
    stream.flush().unwrap();

    // Replies must come back strictly in request order, corr echoed.
    for i in 0..trace.len() as u64 {
        let env = read_envelope(&mut stream, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(env.corr, Some(100 + i), "tick reply out of order");
        let Frame::TickOutcomes { outcomes, .. } = env.frame else {
            panic!("expected TickOutcomes, got {:?}", env.frame);
        };
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].seq, i, "outcome stream desynchronized");
        let env = read_envelope(&mut stream, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(env.corr, Some(200 + i), "metrics reply out of order");
        assert!(matches!(env.frame, Frame::MetricsReply(_)));
    }
    server.shutdown();
}

#[test]
fn torn_frames_resume_mid_frame_and_are_counted() {
    let server = NetServer::bind("127.0.0.1:0", two_shard_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();

    // A second, raw connection drips one frame a few bytes at a time
    // with real pauses, so the shard observes many wakeups per frame.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    let hello = Frame::Hello {
        client: "torn byte dripper".into(),
    };
    let payload = hello.encode_with_corr(Some(42));
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&payload);
    for chunk in bytes.chunks(3) {
        raw.write_all(chunk).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(4));
    }
    let env = read_envelope(&mut raw, DEFAULT_MAX_FRAME_LEN).unwrap();
    assert_eq!(env.corr, Some(42));
    assert!(matches!(env.frame, Frame::HelloAck { .. }));

    // The torn frame was completed by mid-frame resume, and the
    // append-only metrics fields report it alongside the shard count.
    assert!(server.partial_frame_resumes() >= 1);
    let wm = client.metrics().unwrap();
    assert_eq!(wm.shards, 2);
    assert!(wm.partial_frame_resumes >= 1);

    // The dripping never perturbed the well-behaved connection.
    let outcome = client
        .tick(session.id, &pinned_trace(1)[0].estimate, &[0.0])
        .unwrap();
    assert_eq!(outcome.seq, 0);
    server.shutdown();
}

#[test]
fn malformed_frame_kills_only_its_connection() {
    let server = NetServer::bind("127.0.0.1:0", two_shard_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();

    // Garbage with a plausible length prefix on a second connection.
    let mut evil = TcpStream::connect(server.local_addr()).unwrap();
    let garbage = [0u8, 0, 0, 8, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33];
    evil.write_all(&garbage).unwrap();
    // The server answers with a typed error frame, then closes.
    let env = read_envelope(&mut evil, DEFAULT_MAX_FRAME_LEN).unwrap();
    let Frame::Error { code, message } = env.frame else {
        panic!("expected Error, got {:?}", env.frame);
    };
    assert_eq!(code, ErrorCode::Internal);
    assert!(message.starts_with("protocol violation, closing connection:"));
    wait_for(|| {
        let t = server.transport_metrics();
        t.decode_errors == 1 && t.connections_dropped == 1
    });

    // The honest connection is untouched.
    let outcome = client
        .tick(session.id, &pinned_trace(1)[0].estimate, &[0.0])
        .unwrap();
    assert_eq!(outcome.seq, 0);
    server.shutdown();
}

#[test]
fn protocol_misuse_yields_typed_errors_without_killing_the_connection() {
    let server = NetServer::bind("127.0.0.1:0", two_shard_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    match client.open_session(&SessionSpec::model_defaults(9)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadModel),
        other => panic!("expected BadModel, got {other:?}"),
    }
    match client.tick(123_456, &[0.0], &[0.0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    match client.tick(session.id, &[0.0, 0.0, 0.0, 0.0], &[0.0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::DimensionMismatch),
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    // The connection survived all of it.
    let outcome = client
        .tick(session.id, &pinned_trace(1)[0].estimate, &[0.0])
        .unwrap();
    assert_eq!(outcome.seq, 0);

    // Another connection cannot see this connection's session.
    let mut other = Client::connect(server.local_addr()).unwrap();
    match other.tick(session.id, &pinned_trace(1)[0].estimate, &[0.0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn session_quota_is_enforced_per_connection() {
    let mut config = two_shard_config();
    config.base.max_sessions_per_connection = 2;
    let server = NetServer::bind("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let spec = SessionSpec::model_defaults(2);
    let a = client.open_session(&spec).unwrap();
    let _b = client.open_session(&spec).unwrap();
    match client.open_session(&spec) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::SessionLimit),
        other => panic!("expected SessionLimit, got {other:?}"),
    }
    // Closing one frees quota.
    client.close_session(a.id).unwrap();
    client.open_session(&spec).unwrap();
    server.shutdown();
}

#[test]
fn idle_sessions_are_evicted_by_ttl() {
    let mut config = two_shard_config();
    config.base.session_ttl = Some(Duration::from_millis(60));
    let server = NetServer::bind("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    wait_for(|| server.transport_metrics().sessions_evicted == 1);
    match client.tick(session.id, &pinned_trace(1)[0].estimate, &[0.0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected UnknownSession after eviction, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn snapshot_restore_resumes_byte_identically() {
    let server = NetServer::bind("127.0.0.1:0", two_shard_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let spec = SessionSpec::model_defaults(2);
    let trace = pinned_trace(120);

    let session = client.open_session(&spec).unwrap();
    let mut outcomes = Vec::new();
    for tick in &trace[..60] {
        outcomes.push(
            client
                .tick(session.id, &tick.estimate, &tick.input)
                .unwrap(),
        );
    }
    let state = client.snapshot_session(session.id).unwrap();
    client.close_session(session.id).unwrap();

    let resumed = client.restore_session(&spec, &state).unwrap();
    assert_ne!(resumed.id, session.id, "restore allocates a fresh id");
    for tick in &trace[60..] {
        outcomes.push(
            client
                .tick(resumed.id, &tick.estimate, &tick.input)
                .unwrap(),
        );
    }
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.seq, i as u64, "seq discontinuity at {i}");
    }
    let steps: Vec<AdaptiveStep> = outcomes.iter().map(|o| o.to_step()).collect();
    assert_eq!(steps, direct_engine_steps(&trace));
    server.shutdown();
}

#[test]
fn reconnecting_client_survives_net_server_kill_and_restart() {
    let config = two_shard_config();
    let server = NetServer::bind("127.0.0.1:0", config.clone()).unwrap();
    let addr = server.local_addr();

    let policy = RetryPolicy {
        max_retries: 40,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(100),
        seed: 7,
    };
    let mut rc = ReconnectingClient::connect(addr, policy).unwrap();
    let session = rc.open_session(&SessionSpec::model_defaults(2)).unwrap();

    let trace = pinned_trace(120);
    let mut outcomes = Vec::new();
    let mut server = Some(server);
    for (i, chunk) in trace.chunks(10).enumerate() {
        if i == 6 {
            let old = server.take().unwrap();
            old.shutdown();
            drop(old);
            server = Some(NetServer::bind(addr, config.clone()).unwrap());
        }
        outcomes.extend(rc.tick_batch(session.id, chunk).unwrap());
    }
    assert!(rc.reconnects() >= 1, "the kill must force a reconnect");
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.seq, i as u64, "seq discontinuity at {i}");
    }
    let steps: Vec<AdaptiveStep> = outcomes.iter().map(|o| o.to_step()).collect();
    assert_eq!(steps, direct_engine_steps(&trace));
    server.unwrap().shutdown();
}

#[test]
fn metrics_merge_aggregates_sessions_across_connections() {
    let server = NetServer::bind("127.0.0.1:0", two_shard_config()).unwrap();
    let spec = SessionSpec::model_defaults(2);
    let tick = &pinned_trace(1)[0];

    let mut clients: Vec<Client> = (0..3)
        .map(|_| Client::connect(server.local_addr()).unwrap())
        .collect();
    let mut total_ticks = 0u64;
    for (i, c) in clients.iter_mut().enumerate() {
        let s = c.open_session(&spec).unwrap();
        for _ in 0..=i {
            c.tick(s.id, &tick.estimate, &tick.input).unwrap();
            total_ticks += 1;
        }
    }
    // 1+2+3 ticks across three connections; the merged engine view
    // must account every one, whichever shard served it.
    let wm = clients[0].metrics().unwrap();
    assert_eq!(wm.shards, 2);
    assert_eq!(wm.sessions_active, 3);
    assert_eq!(wm.ticks_submitted, total_ticks);
    assert_eq!(wm.ticks_processed, total_ticks);
    assert_eq!(server.engine_metrics().ticks_processed, total_ticks);
    // frames: per client: 1 hello + 1 open + ticks + 1 metrics query.
    let t = server.transport_metrics();
    assert_eq!(t.connections_opened, 3);
    assert_eq!(t.decode_errors, 0);
    assert_eq!(t.connections_dropped, 0);
    assert_eq!(t.frames_in, 3 + 3 + total_ticks + 1);
    assert_eq!(t.frames_out, t.frames_in);
    server.shutdown();
}

#[test]
fn empty_tick_batch_answers_immediately() {
    let server = NetServer::bind("127.0.0.1:0", two_shard_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    let outcomes = client.tick_batch(session.id, &[]).unwrap();
    assert!(outcomes.is_empty());
    // The connection still works afterwards.
    let outcome = client
        .tick(session.id, &pinned_trace(1)[0].estimate, &[0.0])
        .unwrap();
    assert_eq!(outcome.seq, 0);
    server.shutdown();
}

#[test]
fn clean_close_is_not_a_drop_and_shutdown_is_idempotent() {
    let server = NetServer::bind("127.0.0.1:0", two_shard_config()).unwrap();
    {
        let mut client = Client::connect(server.local_addr()).unwrap();
        let session = client
            .open_session(&SessionSpec::model_defaults(2))
            .unwrap();
        client.close_session(session.id).unwrap();
    } // drops the client: clean EOF at a frame boundary
    wait_for(|| server.transport_metrics().connections_opened == 1);
    // Give the shard a beat to observe the close, then check it was
    // not misclassified as a drop.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(server.transport_metrics().connections_dropped, 0);
    server.shutdown();
    server.shutdown(); // idempotent
    assert!(
        TcpStream::connect(server.local_addr()).is_err()
            || TcpStream::connect(server.local_addr()).is_err(),
        "port should stop accepting after shutdown"
    );
}
