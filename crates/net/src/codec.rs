//! Incremental, buffer-pooled framing for nonblocking sockets.
//!
//! The blocking server can park a thread until a frame completes; an
//! event loop cannot. [`FrameAssembler`] is the wire protocol's
//! length-prefix layer restated as a resumable state machine: bytes
//! are read straight off the socket **into the frame's final payload
//! buffer** (no staging buffer, no memmove when a frame arrives torn
//! across wakeups — resuming just continues filling at the saved
//! offset), and a completed payload is handed out as an owned `Vec`
//! for in-place [`awsad_serve::wire::Frame::decode_enveloped`].
//!
//! Payload buffers come from a per-shard [`BufferPool`] and return to
//! it after the frame is handled, so a steady-state connection churns
//! zero allocations on the read path.
//!
//! [`WriteQueue`] is the mirror image for replies: encoded frames are
//! queued as (length-prefix, payload) pairs and flushed with a single
//! vectored write (`writev(2)` via
//! [`std::io::Write::write_vectored`]), so a burst of pipelined
//! replies coalesces into one syscall without copying payloads into a
//! contiguous staging buffer.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::time::Instant;

use awsad_serve::wire::WireError;

/// Recycles payload buffers between frames.
///
/// `get` hands out a zeroed buffer of exactly the requested length
/// (reusing capacity when available); `put` takes a handled payload
/// back. Both the pooled-buffer count and the retained capacity are
/// bounded, so a single huge frame cannot pin its allocation forever.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_pooled: usize,
    max_retained_capacity: usize,
}

impl BufferPool {
    /// A pool keeping at most `max_pooled` buffers of at most
    /// `max_retained_capacity` bytes each.
    pub fn new(max_pooled: usize, max_retained_capacity: usize) -> BufferPool {
        BufferPool {
            free: Vec::new(),
            max_pooled,
            max_retained_capacity,
        }
    }

    /// A buffer of exactly `len` zeroed bytes.
    pub fn get(&mut self, len: usize) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => vec![0; len],
        }
    }

    /// Returns a handled payload for reuse.
    pub fn put(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.max_pooled && buf.capacity() <= self.max_retained_capacity {
            self.free.push(buf);
        }
    }

    /// Buffers currently idle in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

impl Default for BufferPool {
    /// 32 buffers of at most 64 KiB retained — enough to absorb a
    /// burst of typical frames without holding megabytes per shard.
    fn default() -> BufferPool {
        BufferPool::new(32, 64 * 1024)
    }
}

/// Where the assembler is within the current frame.
#[derive(Debug)]
enum ReadState {
    /// Accumulating the 4-byte big-endian length prefix.
    Prefix { buf: [u8; 4], got: usize },
    /// Filling the payload buffer (already validated against the
    /// frame-size limit and allocated at final size).
    Payload { buf: Vec<u8>, got: usize },
}

/// Why [`FrameAssembler::read_available`] stopped.
#[derive(Debug)]
pub enum ReadStatus {
    /// The socket has no more bytes right now (`EAGAIN`); resume on
    /// the next readiness event.
    WouldBlock,
    /// The peer closed cleanly **at a frame boundary**.
    Closed,
    /// The peer closed mid-frame or violated the framing layer
    /// (oversized declared length). The connection is poisoned.
    Protocol(WireError),
    /// Transport error from the socket itself.
    Io(io::Error),
}

/// Resumable frame accumulation for one connection.
///
/// Invariants the torn-frame fuzzer holds this to:
///
/// * a frame split at **any** byte boundary across any number of
///   reads yields payload bytes identical to a single-shot read;
/// * all partial-frame state lives inside this per-connection value —
///   nothing is shared, so garbage on one connection cannot perturb
///   another's decode;
/// * the size limit is enforced on the declared length **before** the
///   payload allocation, exactly like the blocking server's
///   `read_envelope`.
#[derive(Debug)]
pub struct FrameAssembler {
    max_frame_len: u32,
    state: ReadState,
    /// When the first byte of the in-progress frame arrived; `None`
    /// between frames. Drives the slow-loris `frame_deadline` sweep.
    frame_started: Option<Instant>,
    /// Wakeup generation at the current frame's first byte, used to
    /// detect frames spanning multiple readiness events.
    started_generation: u64,
    generation: u64,
    resumed_frames: u64,
}

impl FrameAssembler {
    /// An assembler enforcing `max_frame_len` on declared payload
    /// lengths.
    pub fn new(max_frame_len: u32) -> FrameAssembler {
        FrameAssembler {
            max_frame_len,
            state: ReadState::Prefix {
                buf: [0; 4],
                got: 0,
            },
            frame_started: None,
            started_generation: 0,
            generation: 0,
            resumed_frames: 0,
        }
    }

    /// When the in-progress frame's first byte arrived (`None` at a
    /// frame boundary). The caller's sweep compares this against the
    /// configured `frame_deadline`.
    pub fn mid_frame_since(&self) -> Option<Instant> {
        self.frame_started
    }

    /// Completed frames whose bytes spanned more than one call to
    /// [`FrameAssembler::read_available`] — i.e. frames that arrived
    /// torn across readiness wakeups and were resumed mid-frame.
    pub fn resumed_frames(&self) -> u64 {
        self.resumed_frames
    }

    /// Reads whatever the socket has, appending every completed
    /// payload to `out` (buffers drawn from `pool`; the caller returns
    /// them after decoding). Stops at `EAGAIN`, clean close, protocol
    /// violation, or transport error — never blocks, never panics on
    /// hostile lengths.
    pub fn read_available(
        &mut self,
        stream: &mut impl Read,
        pool: &mut BufferPool,
        out: &mut Vec<Vec<u8>>,
    ) -> ReadStatus {
        self.generation = self.generation.wrapping_add(1);
        loop {
            match &mut self.state {
                ReadState::Prefix { buf, got } => {
                    debug_assert!(*got < 4);
                    match stream.read(&mut buf[*got..]) {
                        Ok(0) => {
                            return if *got == 0 && self.frame_started.is_none() {
                                ReadStatus::Closed
                            } else {
                                ReadStatus::Protocol(WireError::Truncated)
                            };
                        }
                        Ok(n) => {
                            if *got == 0 && self.frame_started.is_none() {
                                self.frame_started = Some(Instant::now());
                                self.started_generation = self.generation;
                            }
                            *got += n;
                            if *got == 4 {
                                let len = u32::from_be_bytes(*buf);
                                if len > self.max_frame_len {
                                    return ReadStatus::Protocol(WireError::FrameTooLarge {
                                        len,
                                        max: self.max_frame_len,
                                    });
                                }
                                self.state = ReadState::Payload {
                                    buf: pool.get(len as usize),
                                    got: 0,
                                };
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return ReadStatus::WouldBlock
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return ReadStatus::Io(e),
                    }
                }
                ReadState::Payload { buf, got } => {
                    if *got == buf.len() {
                        self.complete(out);
                        continue;
                    }
                    match stream.read(&mut buf[*got..]) {
                        Ok(0) => return ReadStatus::Protocol(WireError::Truncated),
                        Ok(n) => {
                            *got += n;
                            if *got == buf.len() {
                                self.complete(out);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return ReadStatus::WouldBlock
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return ReadStatus::Io(e),
                    }
                }
            }
        }
    }

    /// Finishes the current frame: moves the payload out, resets to
    /// prefix accumulation, and accounts a mid-frame resume if the
    /// frame's bytes spanned multiple wakeups.
    fn complete(&mut self, out: &mut Vec<Vec<u8>>) {
        let ReadState::Payload { buf, .. } = std::mem::replace(
            &mut self.state,
            ReadState::Prefix {
                buf: [0; 4],
                got: 0,
            },
        ) else {
            unreachable!("complete() is only reached from the payload state");
        };
        if self.started_generation != self.generation {
            self.resumed_frames += 1;
        }
        self.frame_started = None;
        out.push(buf);
    }
}

/// Pending reply bytes for one connection: a queue of buffers plus a
/// cursor into the head buffer, flushed with vectored writes.
#[derive(Debug, Default)]
pub struct WriteQueue {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of the head buffer already written.
    head_off: usize,
    queued_bytes: usize,
}

/// Cap on iovecs per `writev` — Linux's `UIO_MAXIOV` is 1024; 64
/// already amortizes the syscall completely for reply bursts.
const MAX_IOV: usize = 64;

impl WriteQueue {
    /// Queues one encoded frame as its 4-byte length prefix plus the
    /// payload, as two iovec entries — the payload is never copied
    /// into a staging buffer.
    pub fn push_frame(&mut self, payload: Vec<u8>) {
        let prefix = (payload.len() as u32).to_be_bytes().to_vec();
        self.queued_bytes += prefix.len() + payload.len();
        self.bufs.push_back(prefix);
        self.bufs.push_back(payload);
    }

    /// Bytes not yet accepted by the socket.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Whether everything has been flushed.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Writes as much as the socket will take, vectored. Returns
    /// `Ok(true)` when the queue drained, `Ok(false)` when the socket
    /// filled up (`EAGAIN` — caller should watch for writability),
    /// and any real transport error verbatim.
    pub fn flush(&mut self, stream: &mut impl Write) -> io::Result<bool> {
        while !self.bufs.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.bufs.len().min(MAX_IOV));
            for (i, buf) in self.bufs.iter().take(MAX_IOV).enumerate() {
                let from = if i == 0 { self.head_off } else { 0 };
                slices.push(IoSlice::new(&buf[from..]));
            }
            match stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(mut n) => {
                    self.queued_bytes -= n;
                    while n > 0 {
                        let head_len = self.bufs[0].len() - self.head_off;
                        if n >= head_len {
                            n -= head_len;
                            self.head_off = 0;
                            self.bufs.pop_front();
                        } else {
                            self.head_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_serve::wire::Frame;

    /// A socket simulator delivering the byte stream as "wakeup
    /// segments": all bytes of one segment are available within one
    /// readiness window (possibly over several `read` calls, as real
    /// sockets do), with exactly one `WouldBlock` between segments —
    /// so segment boundaries model frames torn across wakeups.
    struct ChunkedReader {
        data: Vec<u8>,
        pos: usize,
        /// Segment lengths; the remainder after the list forms one
        /// final implicit segment.
        segments: Vec<usize>,
        seg_idx: usize,
        /// Bytes still deliverable in the current segment.
        seg_left: usize,
        /// `WouldBlock` pending before the next segment starts.
        gated: bool,
    }

    impl ChunkedReader {
        fn new(data: Vec<u8>, segments: Vec<usize>) -> ChunkedReader {
            let seg_left = segments.first().copied().unwrap_or(data.len());
            ChunkedReader {
                data,
                pos: 0,
                segments,
                seg_idx: 0,
                seg_left,
                gated: true, // the first segment needs its wakeup too
            }
        }
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.data.len() {
                return Ok(0);
            }
            if self.gated {
                self.gated = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "next wakeup"));
            }
            if self.seg_left == 0 {
                // Segment exhausted: arm the gate and advance.
                self.seg_idx += 1;
                self.seg_left = self
                    .segments
                    .get(self.seg_idx)
                    .copied()
                    .unwrap_or(self.data.len() - self.pos);
                self.gated = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "next wakeup"));
            }
            let n = self.seg_left.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            self.seg_left -= n;
            Ok(n)
        }
    }

    fn frame_bytes(frame: &Frame) -> Vec<u8> {
        let payload = frame.encode();
        let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Drives the assembler over `reader` until close, collecting
    /// every completed payload.
    fn collect_all(reader: &mut ChunkedReader, assembler: &mut FrameAssembler) -> Vec<Vec<u8>> {
        let mut pool = BufferPool::default();
        let mut out = Vec::new();
        loop {
            match assembler.read_available(reader, &mut pool, &mut out) {
                ReadStatus::WouldBlock => continue,
                ReadStatus::Closed => return out,
                other => panic!("unexpected status {other:?}"),
            }
        }
    }

    #[test]
    fn every_split_point_yields_identical_payloads() {
        let frame = Frame::Hello {
            client: "torn-frame probe".into(),
        };
        let bytes = frame_bytes(&frame);
        let reference = frame.encode();
        for split in 1..bytes.len() {
            let mut reader = ChunkedReader::new(bytes.clone(), vec![split]);
            let mut assembler = FrameAssembler::new(1 << 20);
            let payloads = collect_all(&mut reader, &mut assembler);
            assert_eq!(payloads.len(), 1, "split at {split}");
            assert_eq!(payloads[0], reference, "split at {split}");
            // Torn across two wakeups: exactly one resume accounted
            // (WouldBlock between the two chunks forces a new
            // read_available call).
            assert_eq!(assembler.resumed_frames(), 1, "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_delivery_matches_single_shot() {
        let frame = Frame::Tick {
            session: 3,
            ticks: vec![awsad_serve::wire::WireTick {
                estimate: vec![0.25, -1.5],
                input: vec![0.125],
            }],
        };
        let bytes = frame_bytes(&frame);
        let chunks = vec![1; bytes.len()];
        let mut reader = ChunkedReader::new(bytes, chunks);
        let mut assembler = FrameAssembler::new(1 << 20);
        let payloads = collect_all(&mut reader, &mut assembler);
        assert_eq!(payloads, vec![frame.encode()]);
        assert_eq!(assembler.resumed_frames(), 1);
    }

    #[test]
    fn back_to_back_frames_in_one_read_all_complete() {
        let frames = [
            Frame::MetricsQuery,
            Frame::Hello { client: "a".into() },
            Frame::CloseSession { session: 9 },
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&frame_bytes(f));
        }
        let mut reader = ChunkedReader::new(bytes, vec![]);
        let mut assembler = FrameAssembler::new(1 << 20);
        let payloads = collect_all(&mut reader, &mut assembler);
        assert_eq!(
            payloads,
            frames.iter().map(|f| f.encode()).collect::<Vec<_>>()
        );
        // One wakeup delivered everything: nothing was resumed.
        assert_eq!(assembler.resumed_frames(), 0);
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.push(0xaa);
        let mut reader = ChunkedReader::new(bytes, vec![]);
        let mut assembler = FrameAssembler::new(1 << 20);
        let mut pool = BufferPool::default();
        let mut out = Vec::new();
        loop {
            match assembler.read_available(&mut reader, &mut pool, &mut out) {
                ReadStatus::WouldBlock => continue,
                ReadStatus::Protocol(WireError::FrameTooLarge { len, max }) => {
                    assert_eq!(len, u32::MAX);
                    assert_eq!(max, 1 << 20);
                    break;
                }
                other => panic!("expected FrameTooLarge, got {other:?}"),
            }
        }
        assert!(out.is_empty());
    }

    #[test]
    fn eof_mid_frame_is_truncation_not_clean_close() {
        let bytes = frame_bytes(&Frame::MetricsQuery);
        for cut in 1..bytes.len() {
            let mut reader = ChunkedReader::new(bytes[..cut].to_vec(), vec![]);
            let mut assembler = FrameAssembler::new(1 << 20);
            let mut pool = BufferPool::default();
            let mut out = Vec::new();
            loop {
                match assembler.read_available(&mut reader, &mut pool, &mut out) {
                    ReadStatus::WouldBlock => continue,
                    ReadStatus::Protocol(WireError::Truncated) => break,
                    other => panic!("cut {cut}: expected Truncated, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn mid_frame_timer_arms_on_first_byte_and_clears_on_completion() {
        let bytes = frame_bytes(&Frame::MetricsQuery);
        let mut assembler = FrameAssembler::new(1 << 20);
        assert!(assembler.mid_frame_since().is_none());
        let mut reader = ChunkedReader::new(bytes.clone(), vec![2]);
        let mut pool = BufferPool::default();
        let mut out = Vec::new();
        // First wakeup: two bytes of prefix — timer armed.
        loop {
            match assembler.read_available(&mut reader, &mut pool, &mut out) {
                ReadStatus::WouldBlock if out.is_empty() && reader.pos > 0 => break,
                ReadStatus::WouldBlock => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(assembler.mid_frame_since().is_some());
        // Remaining bytes: frame completes — timer disarmed.
        loop {
            match assembler.read_available(&mut reader, &mut pool, &mut out) {
                ReadStatus::WouldBlock if !out.is_empty() => break,
                ReadStatus::Closed => break,
                ReadStatus::WouldBlock => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(out.len(), 1);
        assert!(assembler.mid_frame_since().is_none());
    }

    #[test]
    fn write_queue_vectored_flush_preserves_byte_order() {
        // A "socket" accepting at most 7 bytes per write: exercises
        // partial-iovec advancement across flush calls.
        struct Throttled {
            accepted: Vec<u8>,
            budget_per_call: usize,
        }
        impl Write for Throttled {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(self.budget_per_call);
                self.accepted.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
                let mut budget = self.budget_per_call;
                let mut wrote = 0;
                for b in bufs {
                    if budget == 0 {
                        break;
                    }
                    let n = b.len().min(budget);
                    self.accepted.extend_from_slice(&b[..n]);
                    wrote += n;
                    budget -= n;
                }
                Ok(wrote)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let frames = [
            Frame::SessionClosed { session: 1 },
            Frame::Hello {
                client: "burst".into(),
            },
            Frame::MetricsQuery,
        ];
        let mut queue = WriteQueue::default();
        let mut expected = Vec::new();
        for f in &frames {
            let payload = f.encode();
            expected.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            expected.extend_from_slice(&payload);
            queue.push_frame(payload);
        }
        assert_eq!(queue.queued_bytes(), expected.len());

        let mut sink = Throttled {
            accepted: Vec::new(),
            budget_per_call: 7,
        };
        while !queue.flush(&mut sink).unwrap() || !queue.is_empty() {}
        assert_eq!(sink.accepted, expected);
        assert_eq!(queue.queued_bytes(), 0);
    }

    #[test]
    fn buffer_pool_reuses_and_bounds() {
        let mut pool = BufferPool::new(2, 16);
        let a = pool.get(8);
        let ptr = a.as_ptr() as usize;
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.get(4);
        assert_eq!(b.as_ptr() as usize, ptr, "capacity was reused");
        assert_eq!(b, vec![0; 4], "reused buffer is re-zeroed");
        pool.put(b);
        pool.put(vec![0; 8]);
        pool.put(vec![0; 8]); // over the count bound: dropped
        assert_eq!(pool.pooled(), 2);
        pool.put(vec![0; 64]); // over the capacity bound: dropped
        assert_eq!(pool.pooled(), 2);
    }
}
