//! The readiness-based detection server: a small pool of I/O shards,
//! each running one event loop over one [`crate::sys::Poller`].
//!
//! # Shard model
//!
//! Every shard owns, exclusively and without locks:
//!
//! * a clone of the listening socket (all clones share one file
//!   description, so the kernel load-balances accepts across whichever
//!   shards are awake);
//! * a slab of connection states with incremental frame decode
//!   ([`crate::codec::FrameAssembler`]) and vectored reply writes
//!   ([`crate::codec::WriteQueue`]);
//! * its **own** [`DetectionEngine`], so a session's ticks never cross
//!   a shard boundary or contend on a cross-shard lock;
//! * a shard-local session registry keyed by wire session id.
//!
//! Sessions are pinned to shards by a stable function of the session
//! id: shard `k` of `n` allocates ids `k, k + n, k + 2n, …`, so
//! `id % n` names the owning shard forever. Since a session is only
//! reachable from the connection that opened it, and a connection
//! lives on exactly one shard, no request can ever need a session
//! another shard owns — the pinning is total, not a cache policy.
//!
//! # Readiness state machine
//!
//! The loop is level-triggered: a handler that stops mid-work (a full
//! request queue, a write that hit `EAGAIN`) is simply re-notified on
//! the next wait. Per readiness event a connection advances through
//! read → decode → enqueue requests → serve → queue replies → flush;
//! a `Tick` batch parks as the connection's single in-flight engine
//! batch, and the engine's drain doorbell
//! ([`DetectionEngine::set_drain_notifier`] writing one byte into the
//! shard's wake pipe) re-enters the loop to collect outcomes — the
//! event loop never blocks on the engine.
//!
//! Backpressure is the request-queue bound: a connection with
//! [`REQUEST_QUEUE_CAP`] undecoded requests stops being read, which
//! fills the kernel socket buffer, which stalls the sender — TCP
//! doing the throttling, exactly like the blocking server's bounded
//! engine queue but one layer down.
//!
//! # Protocol fidelity
//!
//! The wire behavior is the blocking server's, bit for bit: same
//! frames, same correlation-id echo, same error codes and messages,
//! same `frame_deadline` slow-loris bound, same TTL eviction
//! semantics, same session-ownership rules. Every existing client
//! works unmodified; the six-path differential oracle in
//! `awsad-testkit` holds the two servers to byte-identical streams.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use awsad_linalg::{Matrix, Vector};
use awsad_runtime::{DetectionEngine, RuntimeMetrics, SessionHandle, Tick, TickOutcome};
use awsad_serve::server::{
    session_parts_for_spec, wire_metrics, ReplicationUpdate, ServerConfig, TransportMetrics,
};
use awsad_serve::wire::{
    ErrorCode, Frame, RingMember, SessionSpec, WireOutcome, WireSessionState, WireTick,
};

use crate::codec::{BufferPool, FrameAssembler, ReadStatus, WriteQueue};
use crate::sys::{Interest, Poller, PollerBackend};

/// Decoded-but-unserved requests a connection may hold before the
/// shard stops reading it (TCP backpressure takes over from there).
pub const REQUEST_QUEUE_CAP: usize = 32;

/// Poller token of the shard's listener clone.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the shard's wake pipe (engine doorbell + shutdown).
const TOKEN_WAKE: u64 = 1;
/// Connection tokens start here; the low 32 bits are `slot + 2`, the
/// high 32 bits a generation counter so an event raced against slot
/// reuse can be recognized as stale and dropped.
const TOKEN_CONN_BASE: u64 = 2;

/// Cadence of the maintenance sweep (frame deadline, session TTL,
/// outcome timeout) — also the poller wait bound, so sweeps run even
/// on a silent shard.
const SWEEP_INTERVAL: Duration = Duration::from_millis(50);

/// Construction parameters for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Protocol-level configuration, shared verbatim with the
    /// blocking server: engine shape (applied **per shard**), frame
    /// size limit, outcome timeout, per-connection session limit,
    /// server name, session TTL, and frame deadline.
    /// `read_timeout` is ignored — a readiness loop has no blocking
    /// reads to bound.
    pub base: ServerConfig,
    /// I/O shard count; `0` (the default) sizes to available
    /// parallelism, clamped to `1..=4` (each shard also carries its
    /// engine's workers, so shard count is not the whole story).
    pub shards: usize,
    /// Force the portable `poll(2)` backend even where epoll is
    /// available (diagnostics and differential testing).
    pub force_poll: bool,
    /// Connections one shard will hold; an accept beyond this is
    /// closed immediately (counted in `connections_dropped`).
    pub max_connections_per_shard: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            base: ServerConfig::default(),
            shards: 0,
            force_poll: false,
            max_connections_per_shard: 16 * 1024,
        }
    }
}

impl NetServerConfig {
    /// The shard count `bind` will actually use.
    pub fn resolved_shards(&self) -> usize {
        if self.shards != 0 {
            return self.shards;
        }
        thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(1, 4)
    }
}

/// Per-shard transport counters; summed across shards for
/// `MetricsQuery` and [`NetServer::transport_metrics`].
#[derive(Debug, Default)]
struct ShardStats {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    decode_errors: AtomicU64,
    connections_opened: AtomicU64,
    connections_dropped: AtomicU64,
    sessions_evicted: AtomicU64,
    recalibrations_rejected: AtomicU64,
    partial_frame_resumes: AtomicU64,
}

/// The slice of a shard other threads may see: its engine (for
/// cross-shard metrics merges) and its counters.
struct ShardShared {
    engine: DetectionEngine,
    stats: ShardStats,
}

/// One backup copy held for a remote primary's session, keyed by the
/// cluster-wide replica key. Server-wide (any shard's connection may
/// replicate or promote it), mirroring the blocking server.
struct ReplicaEntry {
    generation: u64,
    spec: SessionSpec,
    state: WireSessionState,
}

/// State shared by all shards and the [`NetServer`] handle.
struct NetShared {
    config: NetServerConfig,
    shards: Vec<Arc<ShardShared>>,
    shutdown: AtomicBool,
    /// Backup copies this server holds for remote primaries'
    /// sessions, waiting to be promoted on failover.
    replicas: Mutex<HashMap<u64, ReplicaEntry>>,
    /// Highest ring epoch accepted via [`Frame::RingUpdate`].
    ring_epoch: AtomicU64,
}

impl NetShared {
    /// Cross-shard engine metrics: per-shard snapshots folded with
    /// [`RuntimeMetrics::merged`].
    fn merged_engine_metrics(&self) -> RuntimeMetrics {
        self.shards.iter().fold(RuntimeMetrics::zero(), |acc, s| {
            acc.merged(&s.engine.metrics())
        })
    }

    /// Cross-shard transport counters, summed.
    fn summed_transport(&self) -> TransportMetrics {
        let mut t = TransportMetrics::default();
        for s in &self.shards {
            t.frames_in += s.stats.frames_in.load(Ordering::Relaxed);
            t.frames_out += s.stats.frames_out.load(Ordering::Relaxed);
            t.decode_errors += s.stats.decode_errors.load(Ordering::Relaxed);
            t.connections_opened += s.stats.connections_opened.load(Ordering::Relaxed);
            t.connections_dropped += s.stats.connections_dropped.load(Ordering::Relaxed);
            t.sessions_evicted += s.stats.sessions_evicted.load(Ordering::Relaxed);
            t.recalibrations_rejected += s.stats.recalibrations_rejected.load(Ordering::Relaxed);
        }
        t
    }

    /// Total frames completed mid-frame across all shards.
    fn summed_resumes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stats.partial_frame_resumes.load(Ordering::Relaxed))
            .sum()
    }
}

/// A running readiness-based detection server. Dropping it (or
/// calling [`NetServer::shutdown`]) wakes every shard and joins them.
pub struct NetServer {
    local_addr: SocketAddr,
    backend: PollerBackend,
    shared: Arc<NetShared>,
    /// One write end per shard wake pipe, for shutdown nudges.
    wakers: Vec<UnixStream>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("backend", &self.backend.name())
            .field("shards", &self.shared.shards.len())
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (port 0 for ephemeral) and starts the shard pool.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/clone and poller construction failures.
    pub fn bind(addr: impl ToSocketAddrs, config: NetServerConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let nshards = config.resolved_shards();
        let shards: Vec<Arc<ShardShared>> = (0..nshards)
            .map(|_| {
                Arc::new(ShardShared {
                    engine: DetectionEngine::new(config.base.engine.clone()),
                    stats: ShardStats::default(),
                })
            })
            .collect();
        let shared = Arc::new(NetShared {
            config,
            shards,
            shutdown: AtomicBool::new(false),
            replicas: Mutex::new(HashMap::new()),
            ring_epoch: AtomicU64::new(0),
        });

        let mut wakers = Vec::with_capacity(nshards);
        let mut threads = Vec::with_capacity(nshards);
        let mut backend = PollerBackend::Poll;
        for idx in 0..nshards {
            let poller = Poller::new(shared.config.force_poll)?;
            backend = poller.backend();
            let (wake_rx, wake_tx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            // The engine's drain doorbell: rings the shard awake when
            // outcomes become collectable. Nonblocking — a full pipe
            // already holds a pending wake, so a dropped byte is fine.
            let doorbell = wake_tx.try_clone()?;
            shared.shards[idx].engine.set_drain_notifier(move || {
                let _ = (&doorbell).write(&[1]);
            });
            wakers.push(wake_tx);
            let shard = Shard::new(
                idx,
                nshards,
                Arc::clone(&shared),
                poller,
                listener.try_clone()?,
                wake_rx,
            );
            threads.push(
                thread::Builder::new()
                    .name(format!("awsad-net-shard-{idx}"))
                    .spawn(move || shard.run())
                    .expect("spawn shard thread"),
            );
        }
        Ok(NetServer {
            local_addr,
            backend,
            shared,
            wakers,
            threads: Mutex::new(threads),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The readiness backend the shards are running on.
    pub fn backend(&self) -> PollerBackend {
        self.backend
    }

    /// Number of I/O shards (each with its own engine).
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Cross-shard engine counters, folded with
    /// [`RuntimeMetrics::merged`].
    pub fn engine_metrics(&self) -> RuntimeMetrics {
        self.shared.merged_engine_metrics()
    }

    /// Cross-shard transport counters, summed.
    pub fn transport_metrics(&self) -> TransportMetrics {
        self.shared.summed_transport()
    }

    /// Frames that arrived torn across readiness wakeups and were
    /// completed by mid-frame resume, across all shards.
    pub fn partial_frame_resumes(&self) -> u64 {
        self.shared.summed_resumes()
    }

    /// Stops every shard: connections close, sessions drop (queued
    /// ticks still drain on each shard's engine), threads join.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            let _ = (&*w).write(&[1]);
        }
        let threads: Vec<_> = self
            .threads
            .lock()
            .expect("shard thread handles lock")
            .drain(..)
            .collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One open session on a shard. Unlike the blocking server's
/// registry entry there are no locks: the owning shard thread is the
/// only toucher.
struct NetSession {
    /// Token of the connection that opened it; any other connection's
    /// lookup answers `UnknownSession`, exactly as if absent.
    owner: u64,
    state_dim: usize,
    input_dim: usize,
    /// Retained for replication egress: the backup rebuilds the
    /// detector stack from this spec at promotion time.
    spec: SessionSpec,
    last_used: Instant,
    /// An engine batch is in flight — the TTL sweep must not evict
    /// (the analogue of the blocking server's `try_lock` skip).
    busy: bool,
    handle: SessionHandle,
    outcomes: mpsc::Receiver<TickOutcome>,
}

/// A `Tick` batch submitted to the engine, awaiting its outcomes. At
/// most one exists per connection, which preserves the blocking
/// server's strict request→reply ordering.
struct PendingBatch {
    /// Wire session id the reply will name.
    session: u64,
    corr: Option<u64>,
    expected: usize,
    outcomes: Vec<WireOutcome>,
    since: Instant,
}

/// Per-connection state in the shard slab.
struct Conn {
    stream: TcpStream,
    token: u64,
    assembler: FrameAssembler,
    /// `assembler.resumed_frames()` already published to the shard
    /// counter (delta accounting).
    resumes_reported: u64,
    writes: WriteQueue,
    requests: VecDeque<awsad_serve::wire::Envelope>,
    pending: Option<PendingBatch>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Peer closed its write side cleanly at a frame boundary; serve
    /// what's queued, flush, then close without counting a drop.
    read_eof: bool,
    /// Fatal protocol error: the error frame is queued; close once it
    /// flushes (or the flush fails).
    poisoned: bool,
    /// This connection's teardown has already been counted in
    /// `connections_dropped`.
    drop_counted: bool,
    /// Sessions currently owned (O(1) session-limit check).
    sessions_open: usize,
}

/// What serving one request produced.
//
// `Frame` is large (MetricsReply carries every runtime counter), but a
// `Served` lives only from `serve_frame` to the match in the caller —
// boxing the frame would buy nothing except an allocation per request
// on the serve hot path.
#[allow(clippy::large_enum_variant)]
enum Served {
    /// An immediate reply frame.
    Reply(Frame),
    /// A `Tick` batch went to the engine; the reply forms when the
    /// outcomes arrive.
    Batch(PendingBatch),
}

/// One I/O shard: poller, listener clone, wake pipe, connection slab,
/// session registry, buffer pool — all exclusively owned.
struct Shard {
    nshards: usize,
    shared: Arc<NetShared>,
    shard: Arc<ShardShared>,
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: Vec<Option<Conn>>,
    free_slots: Vec<usize>,
    conns_active: usize,
    sessions: HashMap<u64, NetSession>,
    /// Next wire session id: starts at `idx`, steps by `nshards`, so
    /// `id % nshards == idx` pins the session here for life.
    next_session_id: u64,
    /// Generation stamp for connection tokens.
    next_gen: u64,
    pool: BufferPool,
    /// Scratch: completed payloads from the current read.
    payloads: Vec<Vec<u8>>,
    /// Scratch: events from the current wait.
    events: Vec<crate::sys::Event>,
    last_sweep: Instant,
}

impl Shard {
    fn new(
        idx: usize,
        nshards: usize,
        shared: Arc<NetShared>,
        poller: Poller,
        listener: TcpListener,
        wake_rx: UnixStream,
    ) -> Shard {
        let shard = Arc::clone(&shared.shards[idx]);
        Shard {
            nshards,
            shared,
            shard,
            poller,
            listener,
            wake_rx,
            conns: Vec::new(),
            free_slots: Vec::new(),
            conns_active: 0,
            sessions: HashMap::new(),
            next_session_id: idx as u64,
            next_gen: 0,
            pool: BufferPool::default(),
            payloads: Vec::new(),
            events: Vec::new(),
            last_sweep: Instant::now(),
        }
    }

    fn run(mut self) {
        if self
            .poller
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
            || self
                .poller
                .register(self.wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)
                .is_err()
        {
            return;
        }
        let mut events = Vec::new();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            if self.poller.wait(&mut events, SWEEP_INTERVAL).is_err() {
                // EBADF-class failures are unrecoverable for the loop;
                // EINTR already surfaces as an empty wait.
                break;
            }
            std::mem::swap(&mut self.events, &mut events);
            let mut pump = false;
            for i in 0..self.events.len() {
                let ev = self.events[i];
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => {
                        self.drain_wake_pipe();
                        pump = true;
                    }
                    token => self.conn_event(token),
                }
            }
            self.events.clear();
            std::mem::swap(&mut self.events, &mut events);
            if pump {
                self.pump_all();
            }
            if self.last_sweep.elapsed() >= SWEEP_INTERVAL {
                self.sweep();
                self.last_sweep = Instant::now();
            }
        }
        // Shutdown: deregister and drop everything; each session
        // handle's Drop closes it and the engine drains what's queued.
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close_conn(slot, false);
            }
        }
    }

    /// Accepts until `EAGAIN`. All shards share the listener's file
    /// description, so whichever shards wake race for each pending
    /// connection; losers see `EAGAIN` and move on.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns_active >= self.shared.config.max_connections_per_shard {
                        self.shard
                            .stats
                            .connections_dropped
                            .fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.shard
                        .stats
                        .connections_opened
                        .fetch_add(1, Ordering::Relaxed);
                    self.insert_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient failure (e.g. EMFILE): give up this
                // readiness round; level triggering re-offers it.
                Err(_) => return,
            }
        }
    }

    fn insert_conn(&mut self, stream: TcpStream) {
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.next_gen = self.next_gen.wrapping_add(1);
        let token = (slot as u64 + TOKEN_CONN_BASE) | ((self.next_gen & 0xffff_ffff) << 32);
        let fd = stream.as_raw_fd();
        let conn = Conn {
            stream,
            token,
            assembler: FrameAssembler::new(self.shared.config.base.max_frame_len),
            resumes_reported: 0,
            writes: WriteQueue::default(),
            requests: VecDeque::new(),
            pending: None,
            interest: Interest::READ,
            read_eof: false,
            poisoned: false,
            drop_counted: false,
            sessions_open: 0,
        };
        if self.poller.register(fd, token, Interest::READ).is_err() {
            // Poller rejected the fd; the stream drops and closes.
            self.shard
                .stats
                .connections_dropped
                .fetch_add(1, Ordering::Relaxed);
            self.free_slots.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        self.conns_active += 1;
    }

    /// Maps a poller token to its slab slot, discarding stale events
    /// (a slot reused after close gets a fresh generation).
    fn slot_of(&self, token: u64) -> Option<usize> {
        let slot = (token & 0xffff_ffff).checked_sub(TOKEN_CONN_BASE)? as usize;
        match self.conns.get(slot) {
            Some(Some(c)) if c.token == token => Some(slot),
            _ => None,
        }
    }

    fn conn_event(&mut self, token: u64) {
        let Some(slot) = self.slot_of(token) else {
            return;
        };
        // Readable work first: even a connection the peer already
        // hung up on may hold complete frames worth serving.
        self.read_ready(slot);
        if self.conns[slot].is_some() {
            self.advance(slot);
        }
    }

    /// Reads whatever the socket has, decodes completed frames into
    /// the request queue, and classifies the stop condition.
    fn read_ready(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().expect("live conn");
        if conn.poisoned || conn.read_eof || conn.requests.len() >= REQUEST_QUEUE_CAP {
            return;
        }
        let status =
            conn.assembler
                .read_available(&mut conn.stream, &mut self.pool, &mut self.payloads);
        let resumes = conn.assembler.resumed_frames();
        if resumes != conn.resumes_reported {
            self.shard
                .stats
                .partial_frame_resumes
                .fetch_add(resumes - conn.resumes_reported, Ordering::Relaxed);
            conn.resumes_reported = resumes;
        }
        for payload in self.payloads.drain(..) {
            if !conn.poisoned {
                match Frame::decode_enveloped(&payload) {
                    Ok(env) => {
                        self.shard.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                        conn.requests.push_back(env);
                    }
                    Err(err) => poison(conn, &self.shard.stats, &err),
                }
            }
            self.pool.put(payload);
        }
        match status {
            ReadStatus::WouldBlock => {}
            ReadStatus::Closed => conn.read_eof = true,
            ReadStatus::Protocol(err) => {
                if !conn.poisoned {
                    poison(conn, &self.shard.stats, &err);
                }
            }
            ReadStatus::Io(_) => {
                let count = !self.shared.shutdown.load(Ordering::SeqCst);
                self.close_conn(slot, count);
            }
        }
    }

    /// Serves queued requests, collects a completed pending batch,
    /// flushes, updates poller interest, and closes if the connection
    /// has nothing left to live for.
    fn advance(&mut self, slot: usize) {
        self.serve_requests(slot);
        if self.conns[slot].is_none() {
            return;
        }
        self.flush(slot);
        if self.conns[slot].is_none() {
            return;
        }
        let conn = self.conns[slot].as_mut().expect("live conn");
        let done_writing = conn.writes.is_empty();
        if conn.poisoned && done_writing {
            // Error frame delivered; teardown was already counted.
            self.close_conn(slot, false);
            return;
        }
        if conn.read_eof && done_writing && conn.requests.is_empty() && conn.pending.is_none() {
            // Clean close at a frame boundary: not a drop.
            self.close_conn(slot, false);
            return;
        }
        let want = Interest {
            readable: !conn.read_eof && !conn.poisoned && conn.requests.len() < REQUEST_QUEUE_CAP,
            writable: !done_writing,
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            let token = conn.token;
            conn.interest = want;
            if self.poller.reregister(fd, token, want).is_err() {
                self.close_conn(slot, !self.shared.shutdown.load(Ordering::SeqCst));
            }
        }
    }

    /// Serves requests in arrival order until the queue empties or a
    /// `Tick` batch parks as the in-flight pending batch (strict
    /// request→reply ordering: nothing overtakes an unanswered Tick).
    fn serve_requests(&mut self, slot: usize) {
        loop {
            let env = {
                let conn = self.conns[slot].as_mut().expect("live conn");
                if conn.pending.is_some() || conn.poisoned {
                    return;
                }
                match conn.requests.pop_front() {
                    Some(env) => env,
                    None => return,
                }
            };
            let token = self.conns[slot].as_ref().expect("live conn").token;
            match self.serve_frame(token, env.frame) {
                Served::Reply(reply) => self.queue_reply(slot, &reply, env.corr),
                Served::Batch(mut batch) => {
                    batch.corr = env.corr;
                    if let Some(sess) = self.sessions.get_mut(&batch.session) {
                        sess.busy = true;
                    }
                    self.conns[slot].as_mut().expect("live conn").pending = Some(batch);
                    // Outcomes may already be waiting (the doorbell
                    // can beat us here); collect eagerly.
                    self.pump_conn(slot);
                }
            }
        }
    }

    /// Encodes and queues a reply, counting `frames_out` before the
    /// bytes can possibly hit the wire (same observer contract as the
    /// blocking server). The request's correlation id is echoed;
    /// legacy corr-less requests get legacy corr-less replies.
    fn queue_reply(&mut self, slot: usize, reply: &Frame, corr: Option<u64>) {
        self.shard.stats.frames_out.fetch_add(1, Ordering::Relaxed);
        let conn = self.conns[slot].as_mut().expect("live conn");
        conn.writes.push_frame(reply.encode_with_corr(corr));
    }

    /// Flushes a connection's write queue; a transport failure tears
    /// the connection down.
    fn flush(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().expect("live conn");
        if conn.writes.is_empty() {
            return;
        }
        if conn.writes.flush(&mut conn.stream).is_err() {
            let count = !conn.drop_counted && !self.shared.shutdown.load(Ordering::SeqCst);
            self.close_conn(slot, count);
        }
    }

    /// Collects outcomes for every connection with an in-flight
    /// batch. Runs once per loop iteration after the doorbell rang —
    /// coalesced, so a burst of engine drains costs one pass.
    fn pump_all(&mut self) {
        for slot in 0..self.conns.len() {
            if matches!(&self.conns[slot], Some(c) if c.pending.is_some()) {
                self.pump_conn(slot);
                if self.conns[slot].is_some() {
                    self.advance(slot);
                }
            }
        }
    }

    /// Drains available outcomes into `slot`'s pending batch; when
    /// complete, queues the `TickOutcomes` reply and serves whatever
    /// requests queued up behind it.
    fn pump_conn(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().expect("live conn");
        let Some(pending) = conn.pending.as_mut() else {
            return;
        };
        let Some(sess) = self.sessions.get_mut(&pending.session) else {
            // The session vanished under the batch (shutdown path);
            // the outcome-timeout sweep will answer.
            return;
        };
        while pending.outcomes.len() < pending.expected {
            match sess.outcomes.try_recv() {
                Ok(outcome) => pending.outcomes.push(WireOutcome::from_outcome(&outcome)),
                Err(_) => break,
            }
        }
        if pending.outcomes.len() < pending.expected {
            return;
        }
        let batch = conn.pending.take().expect("pending batch");
        sess.busy = false;
        sess.last_used = Instant::now();
        if let Some(sink) = &self.shared.config.base.replication {
            // The batch's outcomes are all in hand, so the session
            // queue is drained and this snapshot captures exactly the
            // post-batch state — same egress point as the blocking
            // server's run_ticks.
            let snapshot = sess.handle.snapshot();
            let lag = sink.replicate(ReplicationUpdate {
                session: batch.session,
                generation: snapshot.generation,
                spec: sess.spec.clone(),
                state: WireSessionState::from_snapshot(&snapshot),
            });
            self.shard.engine.record_replication(lag);
        }
        let reply = Frame::TickOutcomes {
            session: batch.session,
            outcomes: batch.outcomes,
        };
        self.queue_reply(slot, &reply, batch.corr);
        self.serve_requests(slot);
    }

    /// Drains the wake pipe (engine doorbell and shutdown nudges are
    /// both just bytes; what matters is that the loop woke).
    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// The maintenance sweep: slow-loris frame deadlines, outcome
    /// timeouts, and session TTL eviction. Also a pump safety net —
    /// the doorbell is at-least-once, but a missed edge only ever
    /// costs one sweep interval of reply latency.
    fn sweep(&mut self) {
        self.pump_all();
        let frame_deadline = self.shared.config.base.frame_deadline;
        let outcome_timeout = self.shared.config.base.outcome_timeout;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            // A peer stalled mid-frame past the deadline is dropped —
            // the readiness analogue of the blocking reader's armed
            // timer.
            if matches!(conn.assembler.mid_frame_since(), Some(since) if since.elapsed() >= frame_deadline)
            {
                self.close_conn(slot, !self.shared.shutdown.load(Ordering::SeqCst));
                continue;
            }
            // An engine batch past the outcome deadline answers
            // `Timeout`, exactly like the blocking server's
            // `recv_timeout` expiring.
            if matches!(conn.pending.as_ref(), Some(p) if p.since.elapsed() >= outcome_timeout) {
                let conn = self.conns[slot].as_mut().expect("live conn");
                let batch = conn.pending.take().expect("pending batch");
                if let Some(sess) = self.sessions.get_mut(&batch.session) {
                    sess.busy = false;
                }
                let reply = error(
                    ErrorCode::Timeout,
                    format!(
                        "engine produced {}/{} outcomes in time",
                        batch.outcomes.len(),
                        batch.expected
                    ),
                );
                self.queue_reply(slot, &reply, batch.corr);
                self.advance(slot);
            }
        }
        if let Some(ttl) = self.shared.config.base.session_ttl {
            let expired: Vec<u64> = self
                .sessions
                .iter()
                .filter(|(_, s)| !s.busy && s.last_used.elapsed() >= ttl)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                if let Some(sess) = self.sessions.remove(&id) {
                    self.shard
                        .stats
                        .sessions_evicted
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(slot) = self.slot_of(sess.owner) {
                        let conn = self.conns[slot].as_mut().expect("live conn");
                        conn.sessions_open = conn.sessions_open.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Tears a connection down: poller deregistration **before** the
    /// fd closes (a closed fd in a poll set is undefined-ish:
    /// POLLNVAL at best), session cleanup, slab slot recycling.
    fn close_conn(&mut self, slot: usize, count_drop: bool) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if count_drop && !conn.drop_counted {
            self.shard
                .stats
                .connections_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
        if conn.sessions_open > 0 {
            // Dropping the entries closes the sessions; the engine
            // still drains whatever was queued.
            self.sessions.retain(|_, s| s.owner != conn.token);
        }
        self.conns_active -= 1;
        self.free_slots.push(slot);
    }

    /// Serves one request frame. Mirrors the blocking server's
    /// `handle_frame` case for case — same codes, same messages — so
    /// clients cannot tell the servers apart.
    fn serve_frame(&mut self, conn_token: u64, frame: Frame) -> Served {
        match frame {
            Frame::Hello { client: _ } => Served::Reply(Frame::HelloAck {
                server: self.shared.config.base.server_name.clone(),
            }),
            Frame::OpenSession(spec) => self.open_session(conn_token, &spec, None),
            // A wire-level restore starts a fresh snapshot lineage
            // (generation 0), same as the blocking server.
            Frame::RestoreSession { spec, state } => {
                self.open_session(conn_token, &spec, Some((&state, 0)))
            }
            Frame::Tick { session, ticks } => self.start_ticks(conn_token, session, ticks),
            Frame::SnapshotSession { session } => {
                Served::Reply(self.snapshot_session(conn_token, session))
            }
            Frame::Recalibrate {
                session,
                state_dim,
                input_dim,
                a,
                b,
            } => Served::Reply(
                self.recalibrate_session(conn_token, session, state_dim, input_dim, &a, &b),
            ),
            Frame::CloseSession { session } => {
                let reply = match self.sessions.get(&session) {
                    Some(s) if s.owner == conn_token => {
                        if let Some(sess) = self.sessions.remove(&session) {
                            if let Some(slot) = self.slot_of(conn_token) {
                                let conn = self.conns[slot].as_mut().expect("live conn");
                                conn.sessions_open = conn.sessions_open.saturating_sub(1);
                            }
                            drop(sess);
                        }
                        Frame::SessionClosed { session }
                    }
                    _ => error(ErrorCode::UnknownSession, format!("session {session}")),
                };
                Served::Reply(reply)
            }
            Frame::MetricsQuery => {
                // The one cross-shard read: fold every shard's engine
                // snapshot and sum the transport counters, then fill
                // the append-only shard fields.
                let mut wm = wire_metrics(
                    &self.shared.merged_engine_metrics(),
                    &self.shared.summed_transport(),
                );
                wm.shards = self.nshards as u64;
                wm.partial_frame_resumes = self.shared.summed_resumes();
                Served::Reply(Frame::MetricsReply(wm))
            }
            Frame::ReplicateSnapshot {
                key,
                generation,
                spec,
                state,
            } => Served::Reply(self.store_replica(key, generation, spec, state)),
            Frame::PromoteSession { key } => self.promote_session(conn_token, key),
            Frame::RingUpdate { epoch, members } => {
                Served::Reply(self.ring_update(epoch, &members))
            }
            Frame::HelloAck { .. }
            | Frame::SessionOpened { .. }
            | Frame::TickOutcomes { .. }
            | Frame::SessionClosed { .. }
            | Frame::MetricsReply(_)
            | Frame::SessionSnapshot { .. }
            | Frame::RecalibrateAck { .. }
            | Frame::ReplicateAck { .. }
            | Frame::Error { .. } => Served::Reply(error(
                ErrorCode::Internal,
                "reply-direction frame is not a valid request",
            )),
        }
    }

    /// Accepts (or rejects as stale) one replicated snapshot — same
    /// codes and messages as the blocking server.
    fn store_replica(
        &mut self,
        key: u64,
        generation: u64,
        spec: SessionSpec,
        state: WireSessionState,
    ) -> Frame {
        let mut replicas = self.shared.replicas.lock().expect("replica store lock");
        if let Some(existing) = replicas.get(&key) {
            if existing.generation >= generation {
                return error(
                    ErrorCode::BadSnapshot,
                    format!(
                        "stale replica generation {generation} for key {key} (holding {})",
                        existing.generation
                    ),
                );
            }
        }
        replicas.insert(
            key,
            ReplicaEntry {
                generation,
                spec,
                state,
            },
        );
        Frame::ReplicateAck { key, generation }
    }

    /// Turns the stored replica under `key` into a live session on
    /// *this* shard's engine, owned by the requesting connection. The
    /// replica is consumed; the reply echoes the restored state.
    fn promote_session(&mut self, conn_token: u64, key: u64) -> Served {
        let entry = {
            let mut replicas = self.shared.replicas.lock().expect("replica store lock");
            match replicas.remove(&key) {
                Some(entry) => entry,
                None => {
                    return Served::Reply(error(
                        ErrorCode::UnknownSession,
                        format!("replica {key}"),
                    ))
                }
            }
        };
        let served = self.open_session(
            conn_token,
            &entry.spec,
            Some((&entry.state, entry.generation)),
        );
        let Served::Reply(Frame::SessionOpened { session, .. }) = served else {
            // The restore failed; put the replica back so a retry can
            // still promote it.
            self.shared
                .replicas
                .lock()
                .expect("replica store lock")
                .insert(key, entry);
            return served;
        };
        self.shard.engine.record_failover();
        Served::Reply(Frame::SessionSnapshot {
            session,
            state: entry.state,
        })
    }

    /// Accepts a ring-membership update, ignoring stale epochs.
    fn ring_update(&mut self, epoch: u64, members: &[RingMember]) -> Frame {
        let current = self
            .shared
            .ring_epoch
            .fetch_max(epoch, Ordering::SeqCst)
            .max(epoch);
        if current == epoch {
            if let Some(sink) = &self.shared.config.base.replication {
                sink.ring_update(epoch, members);
            }
        }
        Frame::ReplicateAck {
            key: 0,
            generation: current,
        }
    }

    fn open_session(
        &mut self,
        conn_token: u64,
        spec: &SessionSpec,
        restore: Option<(&WireSessionState, u64)>,
    ) -> Served {
        let limit = self.shared.config.base.max_sessions_per_connection;
        let Some(slot) = self.slot_of(conn_token) else {
            return Served::Reply(error(ErrorCode::Internal, "connection gone"));
        };
        if self.conns[slot].as_ref().expect("live conn").sessions_open >= limit {
            return Served::Reply(error(
                ErrorCode::SessionLimit,
                format!("connection already holds {limit} sessions"),
            ));
        }
        let (logger, detector, state_dim, input_dim) = match session_parts_for_spec(spec) {
            Ok(parts) => parts,
            Err((code, msg)) => return Served::Reply(error(code, msg)),
        };
        let (handle, outcomes) = match restore {
            None => self.shard.engine.add_session(logger, detector),
            Some((state, generation)) => {
                let mut snapshot = state.to_snapshot();
                snapshot.generation = generation;
                match self
                    .shard
                    .engine
                    .restore_session(logger, detector, &snapshot)
                {
                    Ok(pair) => pair,
                    Err(e) => {
                        return Served::Reply(error(
                            ErrorCode::BadSnapshot,
                            format!("restore: {e}"),
                        ))
                    }
                }
            }
        };
        // Wire ids are shard-allocated (engine-internal ids restart
        // at zero per shard and may collide across shards): this id
        // satisfies `id % nshards == shard index` forever.
        let id = self.next_session_id;
        self.next_session_id += self.nshards as u64;
        self.sessions.insert(
            id,
            NetSession {
                owner: conn_token,
                state_dim,
                input_dim,
                spec: spec.clone(),
                last_used: Instant::now(),
                busy: false,
                handle,
                outcomes,
            },
        );
        self.conns[slot].as_mut().expect("live conn").sessions_open += 1;
        Served::Reply(Frame::SessionOpened {
            session: id,
            state_dim: state_dim as u32,
            input_dim: input_dim as u32,
        })
    }

    /// Validates and submits a `Tick` batch. Whole-batch dimension
    /// validation happens before anything is submitted (a
    /// half-submitted batch would desynchronize the outcome stream).
    fn start_ticks(&mut self, conn_token: u64, session: u64, ticks: Vec<WireTick>) -> Served {
        let Some(sess) = self.sessions.get_mut(&session) else {
            return Served::Reply(error(
                ErrorCode::UnknownSession,
                format!("session {session}"),
            ));
        };
        if sess.owner != conn_token {
            // Another connection's session answers exactly like a
            // missing one: ids must not leak across clients.
            return Served::Reply(error(
                ErrorCode::UnknownSession,
                format!("session {session}"),
            ));
        }
        sess.last_used = Instant::now();
        for (i, tick) in ticks.iter().enumerate() {
            if tick.estimate.len() != sess.state_dim || tick.input.len() != sess.input_dim {
                return Served::Reply(error(
                    ErrorCode::DimensionMismatch,
                    format!(
                        "tick {i}: got estimate/input dims {}/{}, session wants {}/{}",
                        tick.estimate.len(),
                        tick.input.len(),
                        sess.state_dim,
                        sess.input_dim
                    ),
                ));
            }
        }
        let n = ticks.len();
        for tick in ticks {
            // Under the Block policy a saturated session queue parks
            // the shard here briefly — the same backpressure the
            // blocking server applies, compressed into the submit.
            // Degrade never parks.
            if sess
                .handle
                .submit(Tick {
                    estimate: Vector::from_vec(tick.estimate),
                    input: Vector::from_vec(tick.input),
                })
                .is_err()
            {
                return Served::Reply(error(
                    ErrorCode::UnknownSession,
                    "session closed under batch",
                ));
            }
        }
        Served::Batch(PendingBatch {
            session,
            corr: None, // filled by the caller from the envelope
            expected: n,
            outcomes: Vec::with_capacity(n),
            since: Instant::now(),
        })
    }

    fn snapshot_session(&mut self, conn_token: u64, session: u64) -> Frame {
        let Some(sess) = self.sessions.get_mut(&session) else {
            return error(ErrorCode::UnknownSession, format!("session {session}"));
        };
        if sess.owner != conn_token {
            return error(ErrorCode::UnknownSession, format!("session {session}"));
        }
        sess.last_used = Instant::now();
        // Strict request→reply ordering means the session's prior
        // batch (if any) already delivered its outcomes, so this only
        // waits for queue drain — effectively instant.
        let snapshot = sess.handle.snapshot();
        Frame::SessionSnapshot {
            session,
            state: WireSessionState::from_snapshot(&snapshot),
        }
    }

    /// Swaps the session's plant model in place — same codes, same
    /// messages, and the same replication egress as the blocking
    /// server's `recalibrate_session`.
    fn recalibrate_session(
        &mut self,
        conn_token: u64,
        session: u64,
        state_dim: u32,
        input_dim: u32,
        a: &[f64],
        b: &[f64],
    ) -> Frame {
        let Some(sess) = self.sessions.get_mut(&session) else {
            return error(ErrorCode::UnknownSession, format!("session {session}"));
        };
        if sess.owner != conn_token {
            return error(ErrorCode::UnknownSession, format!("session {session}"));
        }
        sess.last_used = Instant::now();
        let reject = |stats: &ShardStats, msg: String| {
            stats
                .recalibrations_rejected
                .fetch_add(1, Ordering::Relaxed);
            error(ErrorCode::DimensionMismatch, msg)
        };
        if state_dim as usize != sess.state_dim || input_dim as usize != sess.input_dim {
            return reject(
                &self.shard.stats,
                format!(
                    "recalibrate declares dims {state_dim}/{input_dim}, session wants {}/{}",
                    sess.state_dim, sess.input_dim
                ),
            );
        }
        let n = state_dim as usize;
        let m = input_dim as usize;
        let a = Matrix::from_row_major(n, n, a.to_vec()).expect("A validated on decode");
        let b = Matrix::from_row_major(n, m, b.to_vec()).expect("B validated on decode");
        // Strict request→reply ordering means no batch is in flight,
        // so the engine-side quiescence wait is effectively instant.
        let recal_count = match sess.handle.recalibrate(&a, &b) {
            Ok(count) => count,
            Err(e) => return reject(&self.shard.stats, format!("recalibrate: {e}")),
        };
        if let Some(sink) = &self.shared.config.base.replication {
            let snapshot = sess.handle.snapshot();
            let lag = sink.replicate(ReplicationUpdate {
                session,
                generation: snapshot.generation,
                spec: sess.spec.clone(),
                state: WireSessionState::from_snapshot(&snapshot),
            });
            self.shard.engine.record_replication(lag);
        }
        Frame::RecalibrateAck {
            session,
            recal_count,
        }
    }
}

/// Marks a connection fatally desynchronized: counts the decode error
/// and the drop, queues the explanatory error frame (best effort —
/// delivery races the peer), and flags the connection for
/// close-after-flush.
fn poison(conn: &mut Conn, stats: &ShardStats, err: &dyn std::fmt::Display) {
    stats.decode_errors.fetch_add(1, Ordering::Relaxed);
    stats.connections_dropped.fetch_add(1, Ordering::Relaxed);
    stats.frames_out.fetch_add(1, Ordering::Relaxed);
    let reply = error(
        ErrorCode::Internal,
        format!("protocol violation, closing connection: {err}"),
    );
    conn.writes.push_frame(reply.encode());
    conn.poisoned = true;
    conn.drop_counted = true;
    conn.requests.clear();
}

fn error(code: ErrorCode, message: impl Into<String>) -> Frame {
    Frame::Error {
        code,
        message: message.into(),
    }
}
