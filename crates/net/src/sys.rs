//! Readiness primitives without a `libc` crate: raw `epoll(7)` on
//! Linux and portable `poll(2)` everywhere else, both reached through
//! thin `extern "C"` declarations. `std` already links the platform C
//! library, so declaring the three epoll entry points (plus `poll`)
//! ourselves adds **zero** dependencies — the symbols resolve against
//! what is already in the address space.
//!
//! Everything unsafe in this crate lives in this module, behind the
//! safe [`Poller`] facade: a level-triggered readiness queue with
//! `u64` tokens, an explicit backend choice, and `io::Error`
//! reporting straight from `errno` (via
//! [`std::io::Error::last_os_error`]).
//!
//! Level-triggered is a deliberate correctness choice over
//! edge-triggered: a connection handler that stops mid-work (bounded
//! batch, paused reads) is re-notified on the next wait instead of
//! needing a drain-until-`EAGAIN` contract at every call site.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Bytes (or an accept, or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket's send buffer has room again.
    pub writable: bool,
    /// Error or hangup condition; the owner should read to collect
    /// the actual error/EOF rather than guessing.
    pub closed: bool,
}

/// Which readiness backend a [`Poller`] is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerBackend {
    /// Raw `epoll(7)` — Linux only, O(ready) wakeups.
    Epoll,
    /// Portable `poll(2)` — O(registered) per wait, used as the
    /// non-Linux fallback and for differential testing on Linux.
    Poll,
}

impl PollerBackend {
    /// The backend's human-readable name (diagnostics, bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            PollerBackend::Epoll => "epoll",
            PollerBackend::Poll => "poll",
        }
    }
}

/// Interest flags for a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Watch for readability.
    pub readable: bool,
    /// Watch for writability.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction (descriptor stays registered; hangup/error
    /// conditions are still reported by both backends).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod epoll {
    //! The three raw entry points plus the ABI structs they need.
    //! `epoll_event` is packed on x86-64 (the kernel ABI predates the
    //! arch's 8-byte alignment rules) and naturally aligned elsewhere
    //! — the same dance glibc's `__EPOLL_PACKED` does.

    use super::*;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;

    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// An owned epoll instance; closed on drop via [`OwnedFd`].
    #[derive(Debug)]
    pub struct Epoll {
        fd: std::os::fd::OwnedFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `fd` is a freshly created descriptor we own.
            let fd = unsafe { std::os::fd::OwnedFd::from_raw_fd(fd) };
            Ok(Epoll { fd })
        }

        fn raw(&self) -> i32 {
            use std::os::fd::AsRawFd as _;
            self.fd.as_raw_fd()
        }

        pub fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.raw(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&self, buf: &mut Vec<EpollEvent>, timeout_ms: i32) -> io::Result<usize> {
            // SAFETY: the buffer's spare length is passed as
            // `maxevents`; the kernel writes at most that many
            // entries, and we only `set_len` to what it reported.
            let n = unsafe {
                epoll_wait(
                    self.raw(),
                    buf.as_mut_ptr(),
                    buf.capacity() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            // SAFETY: the kernel initialized the first `n` entries.
            unsafe { buf.set_len(n as usize) };
            Ok(n as usize)
        }
    }

    use std::os::fd::FromRawFd as _;
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod pollsys {
    //! `poll(2)` — POSIX, so one declaration covers every Unix.

    use super::*;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid slice for the duration of the call;
        // the kernel writes only `revents` within it.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        ep: epoll::Epoll,
        buf: Vec<epoll::EpollEvent>,
    },
    Poll {
        /// Registered descriptors with their tokens and interest;
        /// rebuilt into a `pollfd` array on each wait.
        entries: Vec<(RawFd, u64, Interest)>,
    },
}

/// A safe, backend-agnostic readiness queue.
///
/// Register descriptors with a `u64` token, then [`Poller::wait`] for
/// [`Event`]s carrying those tokens back. Both backends are
/// level-triggered and both report error/hangup conditions even under
/// [`Interest::NONE`].
pub struct Poller {
    backend: Backend,
    which: PollerBackend,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.which.name())
            .finish()
    }
}

/// How many events one epoll_wait call can deliver. Level-triggered
/// semantics make the cap harmless: anything still ready reappears on
/// the next wait.
const WAIT_CAPACITY: usize = 1024;

impl Poller {
    /// Creates a poller on the best backend: epoll on Linux, `poll(2)`
    /// elsewhere. `force_poll` selects the fallback even on Linux (the
    /// differential tests run both backends against the same traffic).
    pub fn new(force_poll: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        if !force_poll {
            return Ok(Poller {
                backend: Backend::Epoll {
                    ep: epoll::Epoll::new()?,
                    buf: Vec::with_capacity(WAIT_CAPACITY),
                },
                which: PollerBackend::Epoll,
            });
        }
        let _ = force_poll;
        Ok(Poller {
            backend: Backend::Poll {
                entries: Vec::new(),
            },
            which: PollerBackend::Poll,
        })
    }

    /// Which backend this poller runs.
    pub fn backend(&self) -> PollerBackend {
        self.which
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { ep, .. } => {
                ep.ctl(epoll::EPOLL_CTL_ADD, fd, epoll_mask(interest), token)
            }
            Backend::Poll { entries } => {
                entries.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Updates `fd`'s token and interest.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { ep, .. } => {
                ep.ctl(epoll::EPOLL_CTL_MOD, fd, epoll_mask(interest), token)
            }
            Backend::Poll { entries } => {
                for entry in entries.iter_mut() {
                    if entry.0 == fd {
                        *entry = (fd, token, interest);
                        return Ok(());
                    }
                }
                Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "fd was never registered",
                ))
            }
        }
    }

    /// Stops watching `fd`. Must be called **before** the descriptor
    /// is closed (a closed fd silently vanishes from epoll but would
    /// poison a `poll(2)` set with POLLNVAL).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { ep, .. } => ep.ctl(epoll::EPOLL_CTL_DEL, fd, 0, 0),
            Backend::Poll { entries } => {
                entries.retain(|(f, _, _)| *f != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` elapses, appending the ready set to `events`
    /// (cleared first). A spurious empty return (signal interruption)
    /// is reported as success with zero events.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { ep, buf } => {
                buf.clear();
                ep.wait(buf, timeout_ms)?;
                for ev in buf.iter() {
                    let bits = ev.events;
                    events.push(Event {
                        token: ev.data,
                        readable: bits & (epoll::EPOLLIN | epoll::EPOLLRDHUP) != 0,
                        writable: bits & epoll::EPOLLOUT != 0,
                        closed: bits & (epoll::EPOLLERR | epoll::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { entries } => {
                let mut fds: Vec<pollsys::PollFd> = entries
                    .iter()
                    .map(|(fd, _, interest)| pollsys::PollFd {
                        fd: *fd,
                        events: poll_mask(*interest),
                        revents: 0,
                    })
                    .collect();
                let n = pollsys::poll_fds(&mut fds, timeout_ms)?;
                if n == 0 {
                    return Ok(());
                }
                for (slot, (_, token, _)) in fds.iter().zip(entries.iter()) {
                    let re = slot.revents;
                    if re == 0 {
                        continue;
                    }
                    events.push(Event {
                        token: *token,
                        readable: re & pollsys::POLLIN != 0,
                        writable: re & pollsys::POLLOUT != 0,
                        closed: re & (pollsys::POLLERR | pollsys::POLLHUP) != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = epoll::EPOLLRDHUP;
    if interest.readable {
        mask |= epoll::EPOLLIN;
    }
    if interest.writable {
        mask |= epoll::EPOLLOUT;
    }
    mask
}

fn poll_mask(interest: Interest) -> i16 {
    let mut mask = 0;
    if interest.readable {
        mask |= pollsys::POLLIN;
    }
    if interest.writable {
        mask |= pollsys::POLLOUT;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::fd::AsRawFd as _;
    use std::os::unix::net::UnixStream;

    fn backends() -> Vec<bool> {
        if cfg!(target_os = "linux") {
            vec![false, true]
        } else {
            vec![true]
        }
    }

    #[test]
    fn both_backends_report_readability_and_tokens() {
        for force_poll in backends() {
            let mut poller = Poller::new(force_poll).unwrap();
            let (mut a, mut b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_millis(0)).unwrap();
            assert!(events.is_empty(), "idle socket must not be readable");

            a.write_all(b"x").unwrap();
            poller.wait(&mut events, Duration::from_secs(5)).unwrap();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: unread bytes keep reporting.
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert_eq!(events.len(), 1, "level-triggered re-notification");

            let mut byte = [0u8; 1];
            b.read_exact(&mut byte).unwrap();
            poller.wait(&mut events, Duration::from_millis(0)).unwrap();
            assert!(events.is_empty(), "drained socket goes quiet");

            poller.deregister(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn reregister_toggles_write_interest() {
        for force_poll in backends() {
            let mut poller = Poller::new(force_poll).unwrap();
            let (_a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();

            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_millis(0)).unwrap();
            assert!(events.is_empty(), "no write interest yet");

            poller
                .reregister(b.as_raw_fd(), 2, Interest::READ_WRITE)
                .unwrap();
            poller.wait(&mut events, Duration::from_secs(5)).unwrap();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, 2, "token updated by reregister");
            assert!(events[0].writable, "empty send buffer is writable");
        }
    }

    #[test]
    fn hangup_is_reported() {
        for force_poll in backends() {
            let mut poller = Poller::new(force_poll).unwrap();
            let (a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
            drop(a);
            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_secs(5)).unwrap();
            assert_eq!(events.len(), 1);
            assert!(
                events[0].readable || events[0].closed,
                "peer close must surface as readable EOF or hangup"
            );
        }
    }
}
