//! Readiness-based (epoll) detection serving for AWSAD: the same wire
//! protocol as [`awsad_serve`], rehosted on an event loop that scales
//! to tens of thousands of concurrent connections.
//!
//! The blocking server (`awsad_serve::server::Server`) spends one OS
//! thread per connection — perfect clarity, bounded scale. This crate
//! keeps every byte of its protocol behavior (frames, correlation-id
//! echo, error codes and messages, `frame_deadline`, TTL eviction,
//! snapshot/restore) and replaces only the hosting model:
//!
//! * [`sys`] — a std-only readiness abstraction: raw `epoll` on Linux
//!   through thin syscall shims (no `libc` crate — std already links
//!   the symbols), with a portable `poll(2)` fallback, behind one safe
//!   [`sys::Poller`] type. Level-triggered by design.
//! * [`codec`] — incremental frame decode that resumes mid-frame
//!   across wakeups with zero payload copies ([`codec::FrameAssembler`]
//!   reads straight into the pooled final buffer), plus vectored
//!   reply writes ([`codec::WriteQueue`] → `writev(2)`).
//! * [`server`] — [`server::NetServer`]: a small pool of I/O shards,
//!   each owning a listener share, a connection slab, and its **own**
//!   [`awsad_runtime::DetectionEngine`], with sessions pinned to
//!   shards by a stable function of the session id. No cross-shard
//!   locks anywhere on the tick path; the one cross-shard operation
//!   is the `MetricsQuery` merge.
//!
//! Every existing client — `awsad_serve::client::Client`,
//! `awsad_serve::reconnect::ReconnectingClient` — works against this
//! server unmodified; the `awsad-testkit` six-path differential
//! oracle holds both servers to byte-identical outcome streams.
//!
//! # Quickstart
//!
//! ```
//! use awsad_net::{NetServer, NetServerConfig};
//! use awsad_serve::client::Client;
//! use awsad_serve::wire::SessionSpec;
//!
//! let server = NetServer::bind("127.0.0.1:0", NetServerConfig::default()).unwrap();
//! // The identical client code drives either server.
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let session = client.open_session(&SessionSpec::model_defaults(1)).unwrap();
//! let outcome = client.tick(session.id, &[0.0, 0.0, 0.0], &[0.0]).unwrap();
//! assert_eq!(outcome.seq, 0);
//! client.close_session(session.id).unwrap();
//! server.shutdown();
//! ```

#![deny(missing_docs)]
// Unsafe is confined to the syscall shims in [`sys`]; every other
// module is `forbid`-clean by construction (the workspace denies it,
// and `sys` opts back in per-module with a documented contract).
#![deny(unsafe_code)]

pub mod codec;
pub mod server;
pub mod sys;

pub use codec::{BufferPool, FrameAssembler, ReadStatus, WriteQueue};
pub use server::{NetServer, NetServerConfig, REQUEST_QUEUE_CAP};
pub use sys::{Event, Interest, Poller, PollerBackend};
