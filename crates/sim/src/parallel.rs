use awsad_models::CpsModel;

use crate::{run_cell, AttackKind, CellResult, EpisodeConfig};

/// One Monte-Carlo job: a model, an attack kind, and the seeds/config
/// to run it with.
#[derive(Debug, Clone)]
pub struct CellJob {
    /// The plant + detection configuration to simulate.
    pub model: CpsModel,
    /// The attack scenario.
    pub attack: AttackKind,
    /// Number of seeded episodes.
    pub runs: usize,
    /// Episode configuration.
    pub config: EpisodeConfig,
    /// Base seed (episode `i` uses `base_seed + i`).
    pub base_seed: u64,
}

impl CellJob {
    /// Creates a job with the model's default episode configuration.
    pub fn new(model: CpsModel, attack: AttackKind, runs: usize, base_seed: u64) -> Self {
        let config = EpisodeConfig::for_model(&model);
        CellJob {
            model,
            attack,
            runs,
            config,
            base_seed,
        }
    }
}

/// Runs a batch of Monte-Carlo cells across OS threads, one thread per
/// job (cells are the natural parallel grain: episodes within a cell
/// share nothing but are sequential so their seed pairing stays
/// stable). Results come back in job order.
///
/// This is the engine behind the `table2` binary; it is exposed so
/// downstream users can evaluate their own model × attack grids with
/// the same machinery.
///
/// # Example
///
/// ```
/// use awsad_models::Simulator;
/// use awsad_sim::{run_cells_parallel, AttackKind, CellJob};
///
/// let jobs: Vec<CellJob> = [AttackKind::Bias, AttackKind::Replay]
///     .into_iter()
///     .map(|k| CellJob::new(Simulator::VehicleTurning.build(), k, 3, 500))
///     .collect();
/// let results = run_cells_parallel(jobs);
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].attack, AttackKind::Bias);
/// ```
pub fn run_cells_parallel(jobs: Vec<CellJob>) -> Vec<CellResult> {
    let mut results: Vec<Option<CellResult>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs.len());
        for job in &jobs {
            handles.push(scope.spawn(move || {
                run_cell(&job.model, job.attack, job.runs, &job.config, job.base_seed)
            }));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("cell worker panicked"));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_models::Simulator;

    #[test]
    fn parallel_matches_sequential() {
        let model = Simulator::VehicleTurning.build();
        let jobs: Vec<CellJob> = AttackKind::attacks()
            .into_iter()
            .map(|k| CellJob::new(model.clone(), k, 4, 900))
            .collect();
        let parallel = run_cells_parallel(jobs.clone());
        for (job, got) in jobs.iter().zip(parallel.iter()) {
            let expected = run_cell(&job.model, job.attack, job.runs, &job.config, job.base_seed);
            assert_eq!(*got, expected, "{:?} diverged", job.attack);
        }
    }

    #[test]
    fn results_preserve_job_order() {
        let jobs = vec![
            CellJob::new(Simulator::VehicleTurning.build(), AttackKind::Replay, 2, 1),
            CellJob::new(Simulator::VehicleTurning.build(), AttackKind::Bias, 2, 2),
        ];
        let results = run_cells_parallel(jobs);
        assert_eq!(results[0].attack, AttackKind::Replay);
        assert_eq!(results[1].attack, AttackKind::Bias);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_cells_parallel(Vec::new()).is_empty());
    }
}
