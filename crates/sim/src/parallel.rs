use awsad_models::CpsModel;
use awsad_runtime::WorkerPool;

use crate::{run_cell, AttackKind, CellResult, EpisodeConfig};

/// One Monte-Carlo job: a model, an attack kind, and the seeds/config
/// to run it with.
#[derive(Debug, Clone)]
pub struct CellJob {
    /// The plant + detection configuration to simulate.
    pub model: CpsModel,
    /// The attack scenario.
    pub attack: AttackKind,
    /// Number of seeded episodes.
    pub runs: usize,
    /// Episode configuration.
    pub config: EpisodeConfig,
    /// Base seed (episode `i` uses `base_seed + i`).
    pub base_seed: u64,
}

impl CellJob {
    /// Creates a job with the model's default episode configuration.
    pub fn new(model: CpsModel, attack: AttackKind, runs: usize, base_seed: u64) -> Self {
        let config = EpisodeConfig::for_model(&model);
        CellJob {
            model,
            attack,
            runs,
            config,
            base_seed,
        }
    }
}

/// Runs a batch of Monte-Carlo cells on an `awsad-runtime`
/// [`WorkerPool`] sized to the machine (cells are the natural parallel
/// grain: episodes within a cell share nothing but are sequential so
/// their seed pairing stays stable). Results come back in job order.
///
/// Unlike the previous thread-per-job implementation, concurrency is
/// bounded by the CPU count however large the batch is; excess jobs
/// queue on the pool. Use [`run_cells_on`] to share or size the pool
/// yourself.
///
/// This is the engine behind the `table2` binary; it is exposed so
/// downstream users can evaluate their own model × attack grids with
/// the same machinery.
///
/// # Example
///
/// ```
/// use awsad_models::Simulator;
/// use awsad_sim::{run_cells_parallel, AttackKind, CellJob};
///
/// let jobs: Vec<CellJob> = [AttackKind::Bias, AttackKind::Replay]
///     .into_iter()
///     .map(|k| CellJob::new(Simulator::VehicleTurning.build(), k, 3, 500))
///     .collect();
/// let results = run_cells_parallel(jobs);
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].attack, AttackKind::Bias);
/// ```
pub fn run_cells_parallel(jobs: Vec<CellJob>) -> Vec<CellResult> {
    run_cells_on(&WorkerPool::new(0), jobs)
}

/// Runs a batch of Monte-Carlo cells on a caller-provided pool,
/// returning results in job order. A panic inside a cell propagates to
/// the caller after the pool survives it.
pub fn run_cells_on(pool: &WorkerPool, jobs: Vec<CellJob>) -> Vec<CellResult> {
    pool.run_ordered(jobs, |job: CellJob| {
        run_cell(&job.model, job.attack, job.runs, &job.config, job.base_seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_models::Simulator;

    #[test]
    fn parallel_matches_sequential() {
        let model = Simulator::VehicleTurning.build();
        let jobs: Vec<CellJob> = AttackKind::attacks()
            .into_iter()
            .map(|k| CellJob::new(model.clone(), k, 4, 900))
            .collect();
        let parallel = run_cells_parallel(jobs.clone());
        for (job, got) in jobs.iter().zip(parallel.iter()) {
            let expected = run_cell(&job.model, job.attack, job.runs, &job.config, job.base_seed);
            assert_eq!(*got, expected, "{:?} diverged", job.attack);
        }
    }

    #[test]
    fn results_preserve_job_order() {
        let jobs = vec![
            CellJob::new(Simulator::VehicleTurning.build(), AttackKind::Replay, 2, 1),
            CellJob::new(Simulator::VehicleTurning.build(), AttackKind::Bias, 2, 2),
        ];
        let results = run_cells_parallel(jobs);
        assert_eq!(results[0].attack, AttackKind::Replay);
        assert_eq!(results[1].attack, AttackKind::Bias);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_cells_parallel(Vec::new()).is_empty());
    }

    #[test]
    fn hundred_jobs_complete_in_order_on_four_workers() {
        // Regression for the pool rewiring: far more jobs than workers
        // must all complete, in job order, with bounded concurrency.
        let pool = WorkerPool::new(4);
        let model = Simulator::VehicleTurning.build();
        let mut config = EpisodeConfig::for_model(&model);
        config.steps = 40; // keep each cell cheap
        let attacks = AttackKind::attacks();
        let jobs: Vec<CellJob> = (0..100)
            .map(|i| CellJob {
                model: model.clone(),
                attack: attacks[i % attacks.len()],
                runs: 1,
                config: config.clone(),
                base_seed: 1000 + i as u64,
            })
            .collect();
        let results = run_cells_on(&pool, jobs.clone());
        assert_eq!(results.len(), 100);
        for (i, (job, got)) in jobs.iter().zip(results.iter()).enumerate() {
            assert_eq!(got.attack, job.attack, "slot {i} out of order");
            let expected = run_cell(&job.model, job.attack, job.runs, &job.config, job.base_seed);
            assert_eq!(*got, expected, "slot {i} diverged");
        }
    }
}
