//! Closed-loop simulation and Monte-Carlo experiment harness for the
//! AWSAD evaluation (§6 of the DAC'22 paper).
//!
//! The crate reproduces the paper's experimental methodology:
//!
//! * [`run_episode`] — one closed-loop run of a benchmark model under
//!   a sensor attack, with the adaptive detector, the fixed-window
//!   comparison arm and the CUSUM / every-step baselines all observing
//!   the *same* trajectory;
//! * [`EpisodeMetrics`] — false-positive rate, detection delay and
//!   deadline-miss classification of a finished episode;
//! * [`AttackKind`] / [`sample_attack`] — the paper's three attack
//!   scenarios with per-model randomized parameters;
//! * [`run_cell`] — one Table 2 cell: `runs` seeded episodes of one
//!   (simulator, attack) pair, counting `#FP` experiments (FP rate
//!   above 10%) and `#DM` deadline misses for both strategies;
//! * [`run_window_sweep`] — the Fig. 7 profiling sweep establishing
//!   the false-positive / false-negative trade-off across fixed
//!   window sizes.
//!
//! # Example
//!
//! ```
//! use awsad_models::Simulator;
//! use awsad_sim::{AttackKind, EpisodeConfig, run_cell};
//!
//! let model = Simulator::VehicleTurning.build();
//! let cfg = EpisodeConfig::for_model(&model);
//! let cell = run_cell(&model, AttackKind::Bias, 5, &cfg, 42);
//! // The adaptive arm must not miss more deadlines than the fixed arm.
//! assert!(cell.adaptive.deadline_misses <= cell.fixed.deadline_misses);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod benign;
mod episode;
mod metrics;
mod montecarlo;
mod output_feedback;
mod parallel;
mod scenario;
mod sweep;

pub use benign::{run_benign_cell, BenignCellResult, BenignStats};
pub use episode::{run_episode, EpisodeConfig, EpisodeResult};
pub use metrics::{evaluate, EpisodeMetrics, FP_RATE_LIMIT};
pub use montecarlo::{run_cell, CellResult, StrategyStats};
pub use output_feedback::{design_output_observer, run_output_feedback_episode};
pub use parallel::{run_cells_on, run_cells_parallel, CellJob};
pub use scenario::{sample_attack, sample_ramp_bias, AttackKind, SampledAttack};
pub use sweep::{run_window_sweep, SweepPoint};
