use std::fmt;

use awsad_attack::{
    AttackWindow, BiasAttack, DelayAttack, NoAttack, RampAttack, ReplayAttack, SensorAttack,
};
use awsad_control::Reference;
use awsad_linalg::Vector;
use awsad_models::CpsModel;
use rand::{Rng, RngExt as _};

/// The paper's attack scenarios (§6.1.1), plus the benign case used
/// for pure false-positive measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// No attack: every alarm is false.
    None,
    /// Bias attack: sensor data replaced by offset values.
    Bias,
    /// Delay attack: stale measurements delivered to the controller.
    Delay,
    /// Replay attack: previously recorded measurements delivered.
    Replay,
}

impl AttackKind {
    /// The three genuine attacks, in the paper's order.
    pub fn attacks() -> [AttackKind; 3] {
        [AttackKind::Bias, AttackKind::Delay, AttackKind::Replay]
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttackKind::None => "None",
            AttackKind::Bias => "Bias",
            AttackKind::Delay => "Delay",
            AttackKind::Replay => "Replay",
        })
    }
}

/// A concrete attack instance drawn from a model's
/// [`AttackProfile`](awsad_models::AttackProfile), together with the
/// reference signal the episode should run (delay/replay scenarios
/// pair the attack with a setpoint change the stale data conceals).
pub struct SampledAttack {
    /// The attack object to interpose on the sensor channel.
    pub attack: Box<dyn SensorAttack + Send>,
    /// The attack onset step.
    pub onset: Option<usize>,
    /// Reference for the primary PID channel during this episode.
    pub reference: Reference,
}

impl fmt::Debug for SampledAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SampledAttack")
            .field("attack", &self.attack.name())
            .field("onset", &self.onset)
            .field("reference", &self.reference)
            .finish()
    }
}

/// Draws a concrete attack of the given kind from the model's attack
/// profile (§6.1: each of the 100 experiments per case randomizes the
/// attack parameters).
///
/// * **Bias**: a constant offset ([`BiasAttack`]) of magnitude
///   uniform in the profile's `bias_range`, pointed toward the nearer
///   unsafe boundary, onset uniform in `onset_range`. The magnitudes
///   sit in the model's *stealthy band*: large enough that a small
///   (deadline-tight) window trips on the onset discontinuity, small
///   enough that a `w_m`-sized window dilutes it below `τ` — the
///   regime where the delay/usability trade-off the paper studies is
///   actually exercised (outside the band every window size agrees).
///   See [`sample_ramp_bias`] for the incremental variant used by the
///   stealth ablation.
/// * **Delay**: lag uniform in `delay_range`; the reference steps by
///   `reference_step` one step after the onset, so the controller
///   maneuvers on stale data.
/// * **Replay**: records `replay_len` steps of steady pre-attack data
///   and replays them from the onset; the same reference step makes
///   the stale replay consequential.
pub fn sample_attack(model: &CpsModel, kind: AttackKind, rng: &mut impl Rng) -> SampledAttack {
    let profile = &model.attack_profile;
    let nominal = model.pid_channels[0].reference.clone();
    match kind {
        AttackKind::None => SampledAttack {
            attack: Box::new(NoAttack),
            onset: None,
            reference: nominal,
        },
        AttackKind::Bias => {
            let onset = sample_range(rng, profile.onset_range);
            let duration = sample_range(rng, profile.duration_range).max(1);
            let magnitude = sample_magnitude(rng, profile.bias_range);
            let mut bias = Vector::zeros(model.state_dim());
            bias[profile.target_dim] = magnitude * bias_direction(model);
            SampledAttack {
                attack: Box::new(BiasAttack::new(
                    AttackWindow::new(onset, Some(duration)),
                    bias,
                )),
                onset: Some(onset),
                reference: nominal,
            }
        }
        AttackKind::Delay => {
            let onset = sample_range(rng, profile.onset_range);
            let duration = sample_range(rng, profile.duration_range).max(1);
            let delay = sample_range(rng, profile.delay_range).max(1);
            SampledAttack {
                attack: Box::new(DelayAttack::new(
                    AttackWindow::new(onset, Some(duration)),
                    delay,
                )),
                onset: Some(onset),
                reference: stepped_reference(model, onset),
            }
        }
        AttackKind::Replay => {
            let onset = sample_range(rng, profile.onset_range);
            let duration = sample_range(rng, profile.duration_range).max(1);
            let len = profile.replay_len.max(1).min(onset.max(1));
            let record_start = onset - len;
            SampledAttack {
                attack: Box::new(ReplayAttack::new(
                    AttackWindow::new(onset, Some(duration)),
                    record_start,
                    len,
                )),
                onset: Some(onset),
                reference: stepped_reference(model, onset),
            }
        }
    }
}

/// Draws the *stealthy ramp* variant of the bias attack: the same
/// total offset as [`sample_attack`]'s bias, but grown incrementally
/// over `ramp_time_range` steps so there is no onset discontinuity at
/// all. Used by the stealth ablation to show what happens when the
/// attacker also hides the onset: detection must come from the
/// accumulated drift, which only small (deadline-driven) windows
/// amplify above threshold in time.
pub fn sample_ramp_bias(model: &CpsModel, rng: &mut impl Rng) -> SampledAttack {
    let profile = &model.attack_profile;
    let onset = sample_range(rng, profile.onset_range);
    let magnitude = sample_magnitude(rng, profile.bias_range);
    let ramp_steps = sample_range(rng, profile.ramp_time_range).max(1);
    let hold = sample_range(rng, profile.duration_range).max(1);
    let mut slope = Vector::zeros(model.state_dim());
    slope[profile.target_dim] = magnitude * bias_direction(model) / ramp_steps as f64;
    SampledAttack {
        attack: Box::new(RampAttack::new(
            AttackWindow::new(onset, Some(ramp_steps + hold)),
            slope,
            ramp_steps,
        )),
        onset: Some(onset),
        reference: model.pid_channels[0].reference.clone(),
    }
}

fn sample_magnitude(rng: &mut impl Rng, (lo, hi): (f64, f64)) -> f64 {
    if lo >= hi {
        lo
    } else {
        rng.random_range(lo..hi)
    }
}

/// The setpoint step paired with delay/replay attacks: the reference
/// moves by `reference_step` one step after the attack begins, so the
/// stale data conceals an ongoing maneuver from its start.
fn stepped_reference(model: &CpsModel, onset: usize) -> Reference {
    let before = model.primary_reference(0);
    Reference::step(
        before,
        before + model.attack_profile.reference_step,
        onset + 1,
    )
}

/// Bias sign that pushes the *true* state toward the nearer unsafe
/// boundary: the controller regulates the measured value to the
/// reference, so the true state moves opposite to the sensor bias.
fn bias_direction(model: &CpsModel) -> f64 {
    let dim = model.attack_profile.target_dim;
    let iv = model.safe_set.interval(dim);
    let r = model.primary_reference(0);
    let margin_up = iv.hi() - r;
    let margin_down = r - iv.lo();
    // Negative sensor bias drives the true state up.
    if margin_up <= margin_down {
        -1.0
    } else {
        1.0
    }
}

fn sample_range(rng: &mut impl Rng, (lo, hi): (usize, usize)) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_models::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_has_no_onset() {
        let model = Simulator::VehicleTurning.build();
        let mut rng = StdRng::seed_from_u64(0);
        let s = sample_attack(&model, AttackKind::None, &mut rng);
        assert_eq!(s.onset, None);
        assert_eq!(s.attack.name(), "none");
    }

    #[test]
    fn bias_respects_profile_ranges() {
        let model = Simulator::AircraftPitch.build();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = sample_attack(&model, AttackKind::Bias, &mut rng);
            let onset = s.onset.unwrap();
            let (lo, hi) = model.attack_profile.onset_range;
            assert!(onset >= lo && onset <= hi);
            assert_eq!(s.attack.name(), "bias");
        }
    }

    #[test]
    fn bias_direction_pushes_toward_near_boundary() {
        // Vehicle: ref 1.0, boundaries ±2 → up is nearer → bias < 0.
        let model = Simulator::VehicleTurning.build();
        assert_eq!(bias_direction(&model), -1.0);
    }

    #[test]
    fn delay_pairs_with_reference_step() {
        let model = Simulator::VehicleTurning.build();
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_attack(&model, AttackKind::Delay, &mut rng);
        let onset = s.onset.unwrap();
        let before = s.reference.value(onset, model.dt());
        let after = s.reference.value(onset + 1, model.dt());
        assert!((after - before - model.attack_profile.reference_step).abs() < 1e-12);
    }

    #[test]
    fn replay_records_before_onset() {
        let model = Simulator::RlcCircuit.build();
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_attack(&model, AttackKind::Replay, &mut rng);
        assert_eq!(s.attack.name(), "replay");
        assert!(s.onset.unwrap() >= model.attack_profile.onset_range.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = Simulator::AircraftPitch.build();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            sample_attack(&model, AttackKind::Delay, &mut rng).onset
        };
        assert_eq!(draw(9), draw(9));
    }

    #[test]
    fn attacks_list_is_papers_order() {
        let names: Vec<String> = AttackKind::attacks()
            .iter()
            .map(|k| k.to_string())
            .collect();
        assert_eq!(names, vec!["Bias", "Delay", "Replay"]);
    }
}
