use awsad_attack::{AttackWindow, BiasAttack};
use awsad_linalg::Vector;
use awsad_models::CpsModel;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use crate::{run_episode, EpisodeConfig, FP_RATE_LIMIT};

/// One point of the Fig. 7 profiling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Window size of the fixed detector.
    pub window: usize,
    /// Number of experiments whose pre-attack FP rate exceeded 10%.
    pub fp_experiments: usize,
    /// Number of experiments whose attack was never detected.
    pub fn_experiments: usize,
}

/// Reproduces the Fig. 7 profiling experiment: a short constant-bias
/// pulse (the paper uses 15 control steps on the aircraft pitch
/// simulator), `runs` experiments per window size, counting
/// false-positive and false-negative *experiments* per size.
///
/// `bias_magnitude_range` controls the pulse height. The profiling
/// wants magnitudes around `τ·w` for the interesting window sizes so
/// the FN count actually rises with the window (tiny windows always
/// catch the pulse, large windows dilute it) — pass a range of a few
/// to a few tens of `τ`, not the safety-threatening magnitudes of the
/// Table 2 attacks.
///
/// Each experiment simulates the closed loop **once** and evaluates
/// every window size on the same residual stream via prefix sums —
/// the window detector is a pure function of the residuals, so this
/// is exact and keeps the 100-experiment × 100-window sweep fast.
pub fn run_window_sweep(
    model: &CpsModel,
    windows: &[usize],
    runs: usize,
    attack_len: usize,
    bias_magnitude_range: (f64, f64),
    cfg: &EpisodeConfig,
    base_seed: u64,
) -> Vec<SweepPoint> {
    let n = model.state_dim();
    let mut points: Vec<SweepPoint> = windows
        .iter()
        .map(|&w| SweepPoint {
            window: w,
            fp_experiments: 0,
            fn_experiments: 0,
        })
        .collect();

    for i in 0..runs {
        let seed = base_seed.wrapping_add(i as u64);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF16_7EED);
        let profile = &model.attack_profile;
        let onset = if profile.onset_range.0 >= profile.onset_range.1 {
            profile.onset_range.0
        } else {
            rng.random_range(profile.onset_range.0..=profile.onset_range.1)
        };
        let magnitude = if bias_magnitude_range.0 >= bias_magnitude_range.1 {
            bias_magnitude_range.0
        } else {
            rng.random_range(bias_magnitude_range.0..bias_magnitude_range.1)
        };
        let mut bias = Vector::zeros(n);
        bias[profile.target_dim] = -magnitude;
        let mut attack = BiasAttack::new(AttackWindow::new(onset, Some(attack_len)), bias);

        let result = run_episode(model, &mut attack, None, cfg, seed);
        let steps = result.residuals.len();

        // Prefix sums per dimension for O(1) window means.
        let mut prefix = vec![vec![0.0f64; steps + 1]; n];
        for t in 0..steps {
            for (d, pref) in prefix.iter_mut().enumerate() {
                pref[t + 1] = pref[t] + result.residuals[t][d];
            }
        }
        // Paper normalization: window sum over [t-w, t] divided by w
        // (clamped to 1), matching DataLogger::window_mean.
        let mean_exceeds = |t: usize, w: usize| -> bool {
            let start = t.saturating_sub(w);
            let divisor = (t - start).max(1) as f64;
            (0..n).any(|d| {
                let sum = prefix[d][t + 1] - prefix[d][start];
                sum / divisor > model.threshold[d]
            })
        };

        for point in points.iter_mut() {
            let w = point.window;
            // FP rate over pre-onset steps.
            let fp = (0..onset).filter(|&t| mean_exceeds(t, w)).count();
            if fp as f64 / onset as f64 > FP_RATE_LIMIT {
                point.fp_experiments += 1;
            }
            // FN: no alarm from onset to the end of the episode.
            let detected = (onset..steps).any(|t| mean_exceeds(t, w));
            if !detected {
                point.fn_experiments += 1;
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_models::Simulator;

    #[test]
    fn sweep_shows_fp_fn_tradeoff() {
        // The paper's Fig. 7 shape: FPs decrease and FNs increase with
        // the window size. Check end-to-end with a small run count.
        let model = Simulator::AircraftPitch.build();
        let cfg = EpisodeConfig::for_model(&model);
        let windows = [0usize, 5, 20, 60, 100];
        let tau = model.threshold[2];
        let points = run_window_sweep(&model, &windows, 12, 15, (5.0 * tau, 30.0 * tau), &cfg, 900);
        assert_eq!(points.len(), windows.len());
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            first.fp_experiments >= last.fp_experiments,
            "FP must not increase with window size ({} -> {})",
            first.fp_experiments,
            last.fp_experiments
        );
        assert!(
            first.fn_experiments <= last.fn_experiments,
            "FN must not decrease with window size ({} -> {})",
            first.fn_experiments,
            last.fn_experiments
        );
        // Tiny windows see the noise: some FP experiments must exist.
        assert!(first.fp_experiments > 0, "w=0 produced no FP experiments");
        // Tiny windows never miss a 15-step bias.
        assert_eq!(first.fn_experiments, 0);
    }

    #[test]
    fn sweep_is_reproducible() {
        let model = Simulator::AircraftPitch.build();
        let cfg = EpisodeConfig::for_model(&model);
        let a = run_window_sweep(&model, &[0, 40], 4, 15, (0.06, 0.36), &cfg, 33);
        let b = run_window_sweep(&model, &[0, 40], 4, 15, (0.06, 0.36), &cfg, 33);
        assert_eq!(a, b);
    }
}
