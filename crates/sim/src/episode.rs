use awsad_attack::SensorAttack;
use awsad_control::{Controller, PidController, Reference};
use awsad_core::{
    AdaptiveDetector, CusumDetector, DataLogger, DetectorConfig, EveryStepDetector, EwmaDetector,
    FixedWindowDetector, ResidualDetector,
};
use awsad_linalg::Vector;
use awsad_lti::NoiseModel;
use awsad_models::CpsModel;
use awsad_reach::Deadline;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of one closed-loop episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeConfig {
    /// Number of control steps to simulate.
    pub steps: usize,
    /// Maximum detection window `w_m` (§4.3).
    pub max_window: usize,
    /// Window size of the fixed-window comparison arm.
    pub fixed_window: usize,
    /// Bound of the uniform sensor-noise ball added to measurements
    /// (the paper: "we consider noise in our experiments").
    pub measurement_noise: f64,
    /// Initial-state uncertainty radius passed to the deadline
    /// estimator (§3.3.1); usually equals `measurement_noise`.
    pub initial_radius: f64,
    /// Whether the adaptive detector runs complementary detection on
    /// window shrink (disable only for the ablation).
    pub complementary: bool,
    /// How often the adaptive detector re-queries the reachability
    /// estimator (1 = every step, the paper's protocol; larger values
    /// age the cached deadline conservatively between queries).
    pub reestimation_period: usize,
    /// Fraction of the conservative uncertainty bound `ε` the plant's
    /// *actual* process noise uses. The reachability analysis always
    /// assumes the full bound (sound over-approximation); real
    /// disturbances rarely fill a worst-case bound, and simulating
    /// them at the bound would make the nominal residual level sit at
    /// the detection threshold.
    pub process_noise_scale: f64,
}

impl EpisodeConfig {
    /// Sensible defaults for a model: `w_m` from the model's profile,
    /// the fixed arm at `w_m`, the model's calibrated sensor noise
    /// (whose single samples occasionally exceed `τ` while window
    /// means stay below — the usability trade-off the paper studies),
    /// and an episode long enough for onset + attack consequences.
    pub fn for_model(model: &CpsModel) -> Self {
        EpisodeConfig {
            steps: model.attack_profile.onset_range.1
                + model
                    .attack_profile
                    .duration_range
                    .1
                    .max(model.attack_profile.ramp_time_range.1)
                + 300,
            max_window: model.default_max_window,
            fixed_window: model.default_max_window,
            measurement_noise: model.sensor_noise,
            initial_radius: model.sensor_noise,
            complementary: true,
            reestimation_period: 1,
            process_noise_scale: 0.5,
        }
    }
}

/// Everything recorded during one closed-loop episode. All per-step
/// vectors have length `steps`.
#[derive(Debug, Clone)]
pub struct EpisodeResult {
    /// True plant states `x_t` (never visible to the detectors).
    pub states: Vec<Vector>,
    /// State estimates `x̄_t` after attack and sensor noise.
    pub estimates: Vec<Vector>,
    /// Control inputs `u_t` computed from the estimates. Together with
    /// `estimates` this is exactly the tick stream the detectors saw,
    /// so an episode can be replayed through a fresh logger/detector
    /// (or an `awsad-runtime` session) step for step.
    pub inputs: Vec<Vector>,
    /// Residuals `z_t` from the data logger.
    pub residuals: Vec<Vector>,
    /// Adaptive window size `w_c` chosen at each step.
    pub windows: Vec<usize>,
    /// Estimated detection deadline at each step (`None` = beyond the
    /// horizon).
    pub deadlines: Vec<Option<usize>>,
    /// Adaptive-detector alarms (current or complementary).
    pub adaptive_alarms: Vec<bool>,
    /// Fixed-window-detector alarms.
    pub fixed_alarms: Vec<bool>,
    /// CUSUM baseline alarms.
    pub cusum_alarms: Vec<bool>,
    /// Every-step baseline alarms.
    pub every_step_alarms: Vec<bool>,
    /// EWMA baseline alarms (λ chosen to match the fixed window's
    /// effective length).
    pub ewma_alarms: Vec<bool>,
    /// Reference value of the primary channel at each step.
    pub references: Vec<f64>,
    /// Attack onset, copied from the scenario (`None` = benign run).
    pub attack_onset: Option<usize>,
    /// One past the last attacked step (`None` = benign or open-ended).
    pub attack_end: Option<usize>,
    /// First step at which the *true* state left the safe set, if any.
    pub unsafe_entry: Option<usize>,
    /// The detection deadline `t_d` estimated at the attack onset
    /// (`None` when benign, or when the estimate was beyond the
    /// horizon). Detection later than `onset + t_d` counts as a
    /// deadline miss (Table 2's `#DM`).
    pub onset_deadline: Option<usize>,
}

impl EpisodeResult {
    /// First adaptive alarm at or after `from`.
    pub fn first_adaptive_alarm(&self, from: usize) -> Option<usize> {
        self.adaptive_alarms[from.min(self.adaptive_alarms.len())..]
            .iter()
            .position(|&a| a)
            .map(|i| i + from)
    }

    /// First fixed-window alarm at or after `from`.
    pub fn first_fixed_alarm(&self, from: usize) -> Option<usize> {
        self.fixed_alarms[from.min(self.fixed_alarms.len())..]
            .iter()
            .position(|&a| a)
            .map(|i| i + from)
    }
}

/// Runs one closed-loop episode: plant + PID + sensor attack +
/// data logger + all four detectors on the same trajectory.
///
/// The step order matches the paper's system model: at step `t` the
/// sensors measure `x_t`, the attack tampers with the measurement,
/// the controller computes `u_t` from the (possibly corrupted)
/// estimate, the logger/detectors run, and the plant advances to
/// `x_{t+1}` under process noise.
///
/// Determinism: all randomness (process noise, sensor noise) comes
/// from a single `StdRng` seeded with `seed`, so identical calls give
/// identical episodes — the Monte-Carlo harness compares strategies on
/// *paired* trajectories.
///
/// # Panics
///
/// Panics only on internal inconsistencies of `model` (the built-in
/// models are validated by their unit tests).
pub fn run_episode(
    model: &CpsModel,
    attack: &mut dyn SensorAttack,
    reference: Option<Reference>,
    cfg: &EpisodeConfig,
    seed: u64,
) -> EpisodeResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = model.state_dim();

    let process_radius = model.epsilon * cfg.process_noise_scale.clamp(0.0, 1.0);
    let process_noise = if process_radius > 0.0 {
        NoiseModel::uniform_ball(process_radius).expect("non-negative noise")
    } else {
        NoiseModel::None
    };
    let mut plant = awsad_lti::Plant::new(model.system.clone(), model.x0.clone(), process_noise);
    let mut pid: PidController = model.controller().expect("validated model");
    if let Some(r) = reference {
        // The scenario may override the primary channel's setpoint
        // (delay/replay pair the attack with a maneuver).
        let mut channels = model.pid_channels.clone();
        channels[0].reference = r;
        pid = PidController::new(channels, model.control_limits.clone(), model.dt())
            .expect("validated model");
    }

    let det_cfg =
        DetectorConfig::new(model.threshold.clone(), cfg.max_window).expect("validated model");
    let mut logger: DataLogger = model.data_logger(cfg.max_window);
    let mut adaptive = AdaptiveDetector::new(
        det_cfg.clone(),
        model
            .deadline_estimator(cfg.max_window)
            .expect("validated model"),
    )
    .expect("validated model");
    adaptive.set_initial_radius(cfg.initial_radius);
    adaptive.set_complementary_enabled(cfg.complementary);
    adaptive.set_reestimation_period(cfg.reestimation_period.max(1));
    let fixed = FixedWindowDetector::new(&det_cfg, cfg.fixed_window);
    let mut cusum = CusumDetector::new(model.threshold.clone(), model.threshold.scale(5.0))
        .expect("validated model");
    let mut every_step = EveryStepDetector::new(model.threshold.clone());
    // EWMA with an effective window matching the fixed arm:
    // lambda = 2 / (w + 2)  <=>  effective window = w + 1 samples.
    let lambda = 2.0 / (cfg.fixed_window as f64 + 2.0);
    let mut ewma =
        EwmaDetector::new(lambda, model.threshold.clone()).expect("validated parameters");

    let sensor_noise = if cfg.measurement_noise > 0.0 {
        NoiseModel::uniform_ball(cfg.measurement_noise).expect("non-negative noise")
    } else {
        NoiseModel::None
    };

    let mut out = EpisodeResult {
        states: Vec::with_capacity(cfg.steps),
        estimates: Vec::with_capacity(cfg.steps),
        inputs: Vec::with_capacity(cfg.steps),
        residuals: Vec::with_capacity(cfg.steps),
        windows: Vec::with_capacity(cfg.steps),
        deadlines: Vec::with_capacity(cfg.steps),
        adaptive_alarms: Vec::with_capacity(cfg.steps),
        fixed_alarms: Vec::with_capacity(cfg.steps),
        cusum_alarms: Vec::with_capacity(cfg.steps),
        every_step_alarms: Vec::with_capacity(cfg.steps),
        ewma_alarms: Vec::with_capacity(cfg.steps),
        references: Vec::with_capacity(cfg.steps),
        attack_onset: attack.onset(),
        attack_end: attack.end(),
        unsafe_entry: None,
        onset_deadline: None,
    };

    for t in 0..cfg.steps {
        let x_true = plant.state().clone();
        if out.unsafe_entry.is_none() && !model.safe_set.contains(&x_true) {
            out.unsafe_entry = Some(t);
        }

        // Sense (fully observable), add sensor noise, then tamper.
        let noisy = &plant.measure() + &sensor_noise.sample(n, &mut rng);
        let estimate = attack.tamper(t, &noisy);

        // Control on the (possibly corrupted) estimate.
        let u = pid.control(t, &estimate);

        // Log and detect.
        let entry = logger.record(estimate.clone(), u.clone());
        let residual = entry.residual.clone();
        let adaptive_out = adaptive.step(&logger);
        let fixed_alarm = fixed.step(&logger);
        let cusum_alarm = cusum.observe(t, &residual);
        let every_alarm = every_step.observe(t, &residual);
        let ewma_alarm = ewma.observe(t, &residual);

        out.states.push(x_true);
        out.estimates.push(estimate);
        out.inputs.push(u.clone());
        out.residuals.push(residual);
        out.windows.push(adaptive_out.window);
        out.deadlines.push(match adaptive_out.deadline {
            Deadline::Within(d) => Some(d),
            Deadline::Beyond => None,
        });
        out.adaptive_alarms.push(adaptive_out.alarm());
        out.fixed_alarms.push(fixed_alarm);
        out.cusum_alarms.push(cusum_alarm);
        out.every_step_alarms.push(every_alarm);
        out.ewma_alarms.push(ewma_alarm);
        out.references
            .push(pid.channels()[0].reference.value(t, model.dt()));

        // Physics.
        plant.step(&u, &mut rng);
    }
    if let Some(onset) = out.attack_onset {
        out.onset_deadline = out.deadlines.get(onset).copied().flatten();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_attack, AttackKind};
    use awsad_attack::NoAttack;
    use awsad_models::Simulator;

    #[test]
    fn benign_episode_mostly_quiet_and_safe() {
        let model = Simulator::VehicleTurning.build();
        let cfg = EpisodeConfig::for_model(&model);
        let mut attack = NoAttack;
        let r = run_episode(&model, &mut attack, None, &cfg, 7);
        assert_eq!(r.states.len(), cfg.steps);
        assert_eq!(r.unsafe_entry, None, "benign run must stay safe");
        // Alarms can happen (noise), but must be rare for the fixed
        // arm at w_m.
        let fixed_rate = r.fixed_alarms.iter().filter(|&&a| a).count() as f64 / cfg.steps as f64;
        assert!(fixed_rate < 0.05, "fixed FP rate {fixed_rate}");
    }

    #[test]
    fn episodes_are_deterministic() {
        let model = Simulator::RlcCircuit.build();
        let cfg = EpisodeConfig::for_model(&model);
        let mut rng = StdRng::seed_from_u64(3);
        let s1 = sample_attack(&model, AttackKind::Bias, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let s2 = sample_attack(&model, AttackKind::Bias, &mut rng);
        let mut a1 = s1.attack;
        let mut a2 = s2.attack;
        let r1 = run_episode(&model, a1.as_mut(), Some(s1.reference), &cfg, 11);
        let r2 = run_episode(&model, a2.as_mut(), Some(s2.reference), &cfg, 11);
        assert_eq!(r1.states.last(), r2.states.last());
        assert_eq!(r1.adaptive_alarms, r2.adaptive_alarms);
    }

    #[test]
    fn bias_attack_detected_within_deadline() {
        let model = Simulator::VehicleTurning.build();
        let cfg = EpisodeConfig::for_model(&model);
        let mut rng = StdRng::seed_from_u64(5 ^ 0x5EED_CAFE);
        let s = sample_attack(&model, AttackKind::Bias, &mut rng);
        let onset = s.onset.unwrap();
        let mut attack = s.attack;
        let r = run_episode(&model, attack.as_mut(), Some(s.reference), &cfg, 5);
        assert_eq!(r.attack_onset, Some(onset));
        assert!(r.attack_end.unwrap() > onset);
        let m = crate::evaluate(&r, &r.adaptive_alarms);
        assert!(m.detected, "adaptive detector must raise an alarm");
        assert!(
            !m.missed_deadline,
            "adaptive must catch the bias onset within the deadline (delay {:?}, deadline {:?})",
            m.detection_delay, m.deadline_step
        );
    }

    #[test]
    fn episode_records_attack_metadata() {
        let model = Simulator::VehicleTurning.build();
        let cfg = EpisodeConfig::for_model(&model);
        let mut rng = StdRng::seed_from_u64(7 ^ 0x5EED_CAFE);
        let s = sample_attack(&model, AttackKind::Bias, &mut rng);
        let onset = s.onset.unwrap();
        let end = s.attack.end().unwrap();
        let mut atk = s.attack;
        let r = run_episode(&model, atk.as_mut(), Some(s.reference), &cfg, 7);
        assert_eq!(r.attack_onset, Some(onset));
        assert_eq!(r.attack_end, Some(end));
        assert!(end > onset);
        // The onset deadline must have been captured from the per-step
        // deadline stream.
        assert_eq!(r.onset_deadline, r.deadlines[onset]);
        assert!(r.onset_deadline.is_some(), "vehicle deadlines are finite");
    }

    #[test]
    fn benign_episode_has_no_attack_metadata() {
        let model = Simulator::VehicleTurning.build();
        let mut cfg = EpisodeConfig::for_model(&model);
        cfg.steps = 50;
        let mut attack = NoAttack;
        let r = run_episode(&model, &mut attack, None, &cfg, 1);
        assert_eq!(r.attack_onset, None);
        assert_eq!(r.attack_end, None);
        assert_eq!(r.onset_deadline, None);
    }

    #[test]
    fn windows_stay_within_bounds() {
        let model = Simulator::AircraftPitch.build();
        let cfg = EpisodeConfig::for_model(&model);
        let mut attack = NoAttack;
        let r = run_episode(&model, &mut attack, None, &cfg, 2);
        assert!(r.windows.iter().all(|&w| w <= cfg.max_window));
    }

    #[test]
    fn first_alarm_helpers() {
        let model = Simulator::VehicleTurning.build();
        let cfg = EpisodeConfig {
            steps: 50,
            ..EpisodeConfig::for_model(&model)
        };
        let mut attack = NoAttack;
        let mut r = run_episode(&model, &mut attack, None, &cfg, 1);
        r.adaptive_alarms.iter_mut().for_each(|a| *a = false);
        r.adaptive_alarms[30] = true;
        assert_eq!(r.first_adaptive_alarm(0), Some(30));
        assert_eq!(r.first_adaptive_alarm(31), None);
        assert_eq!(r.first_adaptive_alarm(30), Some(30));
    }
}
