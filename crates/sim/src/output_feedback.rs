use awsad_attack::SensorAttack;
use awsad_control::{steady_kalman_gain, ControlError, Controller, PidController, Reference};
use awsad_core::{
    AdaptiveDetector, CusumDetector, DataLogger, DetectorConfig, EveryStepDetector, EwmaDetector,
    FixedWindowDetector, ResidualDetector,
};
use awsad_linalg::{Matrix, Vector};
use awsad_lti::{LtiSystem, NoiseModel, Observer};
use awsad_models::CpsModel;
use awsad_reach::Deadline;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{EpisodeConfig, EpisodeResult};

/// Designs a steady-state Kalman observer gain for `system` from
/// scalar noise levels: the process- and measurement-noise standard
/// deviations are expanded into isotropic covariances (with a small
/// diagonal floor so zero-noise models stay well-posed) and fed to
/// [`steady_kalman_gain`].
///
/// This is the offline observer-design step of the output-feedback
/// residual path: where the paper's evaluation assumes a fully
/// observable plant (`C = I`, the state estimate *is* the
/// measurement), a `C ≠ I` plant needs a Luenberger observer to
/// reconstruct `x̂_t` from `y_t` before the logger and detectors can
/// run at all.
///
/// # Errors
///
/// Returns [`ControlError::LqrFailure`] when the dual Riccati
/// iteration fails — e.g. an undetectable `(A, C)` pair, which is
/// exactly what a randomized output map can produce; callers are
/// expected to resample.
pub fn design_output_observer(
    system: &LtiSystem,
    process_std: f64,
    measurement_std: f64,
) -> Result<Matrix, ControlError> {
    if !(process_std.is_finite()
        && process_std >= 0.0
        && measurement_std.is_finite()
        && measurement_std >= 0.0)
    {
        return Err(ControlError::LqrFailure {
            reason: "noise levels must be finite and non-negative",
        });
    }
    let n = system.state_dim();
    let p = system.output_dim();
    let q = (process_std * process_std).max(1e-8);
    let r = (measurement_std * measurement_std).max(1e-8);
    steady_kalman_gain(
        system.a(),
        system.c(),
        &Matrix::diagonal(&vec![q; n]),
        &Matrix::diagonal(&vec![r; p]),
    )
}

/// Runs one closed-loop episode on a **partially observed** plant:
/// the sensors deliver `y_t = C x_t` (plus noise) for an arbitrary
/// output map `C ≠ I`, a Luenberger observer with a steady-state
/// Kalman gain reconstructs `x̂_t`, and the PID controller, data
/// logger and every detector consume the *reconstructed* estimate.
///
/// The attack tampers the `p`-dimensional measurement vector — wrap
/// it in [`awsad_attack::PerSensor`] to falsify individual sensors —
/// so corruption reaches the detectors only through the observer's
/// innovation, exactly as in the secure-state-estimation literature
/// the baseline zoo competes on.
///
/// The returned [`EpisodeResult`] is shape-compatible with
/// [`crate::run_episode`]: `estimates`/`inputs` are the tick stream
/// the detectors saw (replayable through an `awsad-runtime` session),
/// and all metric helpers apply unchanged.
///
/// Step order at `t`: measure `y_t = C x_t + v_t`, tamper, update the
/// observer (prediction uses `u_{t−1}`, zero at `t = 0`), control on
/// `x̂_t`, log + detect, advance the plant.
///
/// # Errors
///
/// Returns [`ControlError::LqrFailure`] when `c` does not match the
/// plant, when the observer design fails (undetectable pair), or when
/// the designed observer is not convergent.
///
/// # Panics
///
/// Panics only on internal inconsistencies of `model` (the built-in
/// models are validated by their unit tests).
pub fn run_output_feedback_episode(
    model: &CpsModel,
    c: &Matrix,
    attack: &mut dyn SensorAttack,
    reference: Option<Reference>,
    cfg: &EpisodeConfig,
    seed: u64,
) -> Result<EpisodeResult, ControlError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let observed = LtiSystem::new_discrete(
        model.system.a().clone(),
        model.system.b().clone(),
        c.clone(),
        model.dt(),
    )
    .map_err(|_| ControlError::LqrFailure {
        reason: "output map does not match the plant dimensions",
    })?;
    let p = observed.output_dim();

    let process_radius = model.epsilon * cfg.process_noise_scale.clamp(0.0, 1.0);
    // Uniform-ball noise of radius r has per-dimension variance r²/3.
    let gain = design_output_observer(
        &observed,
        process_radius / 3f64.sqrt(),
        cfg.measurement_noise / 3f64.sqrt(),
    )?;
    let mut observer = Observer::new(observed.clone(), gain, model.x0.clone())
        .expect("gain shape follows from the design");
    if !observer.is_convergent() {
        return Err(ControlError::LqrFailure {
            reason: "designed observer is not convergent",
        });
    }

    let process_noise = if process_radius > 0.0 {
        NoiseModel::uniform_ball(process_radius).expect("non-negative noise")
    } else {
        NoiseModel::None
    };
    let mut plant = awsad_lti::Plant::new(model.system.clone(), model.x0.clone(), process_noise);
    let mut pid: PidController = model.controller().expect("validated model");
    if let Some(r) = reference {
        let mut channels = model.pid_channels.clone();
        channels[0].reference = r;
        pid = PidController::new(channels, model.control_limits.clone(), model.dt())
            .expect("validated model");
    }

    let det_cfg =
        DetectorConfig::new(model.threshold.clone(), cfg.max_window).expect("validated model");
    let mut logger: DataLogger = model.data_logger(cfg.max_window);
    let mut adaptive = AdaptiveDetector::new(
        det_cfg.clone(),
        model
            .deadline_estimator(cfg.max_window)
            .expect("validated model"),
    )
    .expect("validated model");
    adaptive.set_initial_radius(cfg.initial_radius);
    adaptive.set_complementary_enabled(cfg.complementary);
    adaptive.set_reestimation_period(cfg.reestimation_period.max(1));
    let fixed = FixedWindowDetector::new(&det_cfg, cfg.fixed_window);
    let mut cusum = CusumDetector::new(model.threshold.clone(), model.threshold.scale(5.0))
        .expect("validated model");
    let mut every_step = EveryStepDetector::new(model.threshold.clone());
    let lambda = 2.0 / (cfg.fixed_window as f64 + 2.0);
    let mut ewma =
        EwmaDetector::new(lambda, model.threshold.clone()).expect("validated parameters");

    let sensor_noise = if cfg.measurement_noise > 0.0 {
        NoiseModel::uniform_ball(cfg.measurement_noise).expect("non-negative noise")
    } else {
        NoiseModel::None
    };

    let mut out = EpisodeResult {
        states: Vec::with_capacity(cfg.steps),
        estimates: Vec::with_capacity(cfg.steps),
        inputs: Vec::with_capacity(cfg.steps),
        residuals: Vec::with_capacity(cfg.steps),
        windows: Vec::with_capacity(cfg.steps),
        deadlines: Vec::with_capacity(cfg.steps),
        adaptive_alarms: Vec::with_capacity(cfg.steps),
        fixed_alarms: Vec::with_capacity(cfg.steps),
        cusum_alarms: Vec::with_capacity(cfg.steps),
        every_step_alarms: Vec::with_capacity(cfg.steps),
        ewma_alarms: Vec::with_capacity(cfg.steps),
        references: Vec::with_capacity(cfg.steps),
        attack_onset: attack.onset(),
        attack_end: attack.end(),
        unsafe_entry: None,
        onset_deadline: None,
    };

    let mut prev_u = Vector::zeros(model.system.input_dim());
    for t in 0..cfg.steps {
        let x_true = plant.state().clone();
        if out.unsafe_entry.is_none() && !model.safe_set.contains(&x_true) {
            out.unsafe_entry = Some(t);
        }

        // Sense through C, add sensor noise, then tamper per sensor.
        let y = observed.measure(&x_true);
        let noisy = &y + &sensor_noise.sample(p, &mut rng);
        let tampered = attack.tamper(t, &noisy);

        // Reconstruct the state estimate from output feedback.
        let estimate = observer.update(&prev_u, &tampered).clone();

        // Control on the reconstructed estimate.
        let u = pid.control(t, &estimate);

        // Log and detect — the same residual pipeline as `C = I`.
        let entry = logger.record(estimate.clone(), u.clone());
        let residual = entry.residual.clone();
        let adaptive_out = adaptive.step(&logger);
        let fixed_alarm = fixed.step(&logger);
        let cusum_alarm = cusum.observe(t, &residual);
        let every_alarm = every_step.observe(t, &residual);
        let ewma_alarm = ewma.observe(t, &residual);

        out.states.push(x_true);
        out.estimates.push(estimate);
        out.inputs.push(u.clone());
        out.residuals.push(residual);
        out.windows.push(adaptive_out.window);
        out.deadlines.push(match adaptive_out.deadline {
            Deadline::Within(d) => Some(d),
            Deadline::Beyond => None,
        });
        out.adaptive_alarms.push(adaptive_out.alarm());
        out.fixed_alarms.push(fixed_alarm);
        out.cusum_alarms.push(cusum_alarm);
        out.every_step_alarms.push(every_alarm);
        out.ewma_alarms.push(ewma_alarm);
        out.references
            .push(pid.channels()[0].reference.value(t, model.dt()));

        // Physics.
        plant.step(&u, &mut rng);
        prev_u = u;
    }
    if let Some(onset) = out.attack_onset {
        out.onset_deadline = out.deadlines.get(onset).copied().flatten();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_attack::{AttackWindow, BiasAttack, NoAttack, PerSensor};
    use awsad_models::Simulator;

    /// A selection map keeping the first `p` of `n` states.
    fn selection(p: usize, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..p)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn rejects_mismatched_output_map() {
        let model = Simulator::VehicleTurning.build();
        let cfg = EpisodeConfig::for_model(&model);
        let c = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]).unwrap();
        let mut attack = NoAttack;
        assert!(run_output_feedback_episode(&model, &c, &mut attack, None, &cfg, 1).is_err());
    }

    #[test]
    fn full_observation_benign_run_stays_quiet() {
        let model = Simulator::VehicleTurning.build();
        let n = model.state_dim();
        let cfg = EpisodeConfig::for_model(&model);
        let mut attack = NoAttack;
        let r =
            run_output_feedback_episode(&model, &Matrix::identity(n), &mut attack, None, &cfg, 7)
                .unwrap();
        assert_eq!(r.states.len(), cfg.steps);
        assert_eq!(r.unsafe_entry, None, "benign run must stay safe");
        let fixed_rate = r.fixed_alarms.iter().filter(|&&a| a).count() as f64 / cfg.steps as f64;
        assert!(fixed_rate < 0.05, "fixed FP rate {fixed_rate}");
    }

    #[test]
    fn partial_observation_still_tracks() {
        // Observe only the inductor current of the RLC circuit; the
        // observer must reconstruct the capacitor voltage well enough
        // that the benign closed loop stays safe and mostly quiet.
        let model = Simulator::RlcCircuit.build();
        let n = model.state_dim();
        assert!(n >= 2, "test needs a multi-state model");
        let cfg = EpisodeConfig::for_model(&model);
        let mut attack = NoAttack;
        let r = run_output_feedback_episode(&model, &selection(1, n), &mut attack, None, &cfg, 11)
            .unwrap();
        assert_eq!(
            r.unsafe_entry, None,
            "benign partial observation must stay safe"
        );
        let adaptive_rate =
            r.adaptive_alarms.iter().filter(|&&a| a).count() as f64 / cfg.steps as f64;
        assert!(adaptive_rate < 0.10, "adaptive FP rate {adaptive_rate}");
    }

    #[test]
    fn per_sensor_bias_is_detected_through_the_observer() {
        let model = Simulator::VehicleTurning.build();
        let n = model.state_dim();
        let cfg = EpisodeConfig::for_model(&model);
        // Both states sensed; falsify only sensor 0 with a bias large
        // relative to the model's own bias scenario.
        let magnitude = model.attack_profile.bias_range.1;
        let onset = model.attack_profile.onset_range.0;
        let mut attack = PerSensor::new(
            vec![0],
            BiasAttack::new(
                AttackWindow::from_step(onset),
                Vector::from_slice(&[magnitude]),
            ),
        )
        .unwrap();
        let r =
            run_output_feedback_episode(&model, &Matrix::identity(n), &mut attack, None, &cfg, 13)
                .unwrap();
        assert_eq!(r.attack_onset, Some(onset));
        let m = crate::evaluate(&r, &r.adaptive_alarms);
        assert!(m.detected, "per-sensor bias must be detected");
    }

    #[test]
    fn episodes_are_deterministic() {
        let model = Simulator::RlcCircuit.build();
        let n = model.state_dim();
        let cfg = EpisodeConfig::for_model(&model);
        let c = if n > 1 {
            selection(n - 1, n)
        } else {
            Matrix::identity(n)
        };
        let mut a1 = NoAttack;
        let mut a2 = NoAttack;
        let r1 = run_output_feedback_episode(&model, &c, &mut a1, None, &cfg, 21).unwrap();
        let r2 = run_output_feedback_episode(&model, &c, &mut a2, None, &cfg, 21).unwrap();
        assert_eq!(r1.estimates, r2.estimates);
        assert_eq!(r1.adaptive_alarms, r2.adaptive_alarms);
    }

    #[test]
    fn observer_design_rejects_bad_noise() {
        let model = Simulator::VehicleTurning.build();
        assert!(design_output_observer(&model.system, f64::NAN, 0.1).is_err());
        assert!(design_output_observer(&model.system, 0.1, -1.0).is_err());
        assert!(design_output_observer(&model.system, 0.1, 0.1).is_ok());
    }
}
