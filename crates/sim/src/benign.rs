use awsad_attack::NoAttack;
use awsad_models::CpsModel;

use crate::{evaluate, run_episode, EpisodeConfig};

/// Usability-at-rest statistics: alarm behaviour of every detector on
/// attack-free episodes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BenignStats {
    /// Episodes whose false-positive rate exceeded the 10% limit.
    pub fp_experiments: usize,
    /// Mean per-step false-positive rate across episodes.
    pub mean_fp_rate: f64,
}

/// Result of a benign cell: the same attack-free trajectories scored
/// for every detector arm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BenignCellResult {
    /// Number of episodes run.
    pub runs: usize,
    /// Adaptive detector.
    pub adaptive: BenignStats,
    /// Fixed `w_m` window.
    pub fixed: BenignStats,
    /// CUSUM baseline.
    pub cusum: BenignStats,
    /// Every-step baseline.
    pub every_step: BenignStats,
    /// EWMA baseline.
    pub ewma: BenignStats,
}

/// Runs `runs` attack-free episodes and reports each detector's
/// false-alarm behaviour — the pure-usability column missing from
/// Table 2 (where FP rates are measured around attacks).
///
/// The paper's central claim is that the adaptive detector pays false
/// alarms *only when the plant is near the unsafe set*; on benign
/// episodes parked at the reference it should therefore look like the
/// long-window detector, not like the every-step one.
pub fn run_benign_cell(
    model: &CpsModel,
    runs: usize,
    cfg: &EpisodeConfig,
    base_seed: u64,
) -> BenignCellResult {
    let mut out = BenignCellResult {
        runs,
        ..Default::default()
    };
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i as u64);
        let mut attack = NoAttack;
        let r = run_episode(model, &mut attack, None, cfg, seed);
        let streams = [
            (&r.adaptive_alarms, &mut out.adaptive),
            (&r.fixed_alarms, &mut out.fixed),
            (&r.cusum_alarms, &mut out.cusum),
            (&r.every_step_alarms, &mut out.every_step),
            (&r.ewma_alarms, &mut out.ewma),
        ];
        for (alarms, stats) in streams {
            let m = evaluate(&r, alarms);
            stats.fp_experiments += m.fp_experiment as usize;
            stats.mean_fp_rate += m.false_positive_rate;
        }
    }
    if runs > 0 {
        for stats in [
            &mut out.adaptive,
            &mut out.fixed,
            &mut out.cusum,
            &mut out.every_step,
            &mut out.ewma,
        ] {
            stats.mean_fp_rate /= runs as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_models::Simulator;

    #[test]
    fn benign_cell_is_reproducible_and_ordered() {
        let model = Simulator::VehicleTurning.build();
        let cfg = EpisodeConfig::for_model(&model);
        let a = run_benign_cell(&model, 5, &cfg, 70);
        let b = run_benign_cell(&model, 5, &cfg, 70);
        assert_eq!(a, b);
        // The every-step detector is the noisiest by construction.
        assert!(a.every_step.mean_fp_rate >= a.fixed.mean_fp_rate);
        // The adaptive detector at rest must not be worse than
        // every-step.
        assert!(a.adaptive.mean_fp_rate <= a.every_step.mean_fp_rate);
    }

    #[test]
    fn zero_runs_is_well_defined() {
        let model = Simulator::RlcCircuit.build();
        let cfg = EpisodeConfig::for_model(&model);
        let r = run_benign_cell(&model, 0, &cfg, 1);
        assert_eq!(r.runs, 0);
        assert_eq!(r.adaptive.mean_fp_rate, 0.0);
    }
}
