use crate::EpisodeResult;

/// A simulation counts as a false-positive *experiment* when its
/// pre-attack false-positive rate exceeds this limit (§6.1.2: "it is
/// counted as a false positive experiment if the false positive rate
/// exceeds 10%").
pub const FP_RATE_LIMIT: f64 = 0.10;

/// Detection metrics of one finished episode, for one detector's alarm
/// stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeMetrics {
    /// Fraction of attack-free steps that raised an alarm (all steps
    /// for a benign episode, pre-onset steps otherwise).
    pub false_positive_rate: f64,
    /// First alarm at or after the attack onset.
    pub detection_step: Option<usize>,
    /// `detection_step − onset`.
    pub detection_delay: Option<usize>,
    /// First step the true state left the safe set.
    pub unsafe_entry: Option<usize>,
    /// The absolute deadline step `onset + t_d` (from the reachability
    /// estimate at the onset), if one existed.
    pub deadline_step: Option<usize>,
    /// Whether the episode counts as a false-positive experiment
    /// (`false_positive_rate > FP_RATE_LIMIT`).
    pub fp_experiment: bool,
    /// Whether the detector missed the detection deadline: a deadline
    /// `t_d` was estimated at the onset and no alarm fired by
    /// `onset + t_d` (§3.3: "The detector is expected to identify an
    /// attack within the deadline"). Attacks whose evidence is too
    /// weak to trip any window in time produce misses — the paper:
    /// adaptive "may miss the detection deadline in some cases …
    /// because those attacks have a negligible effect". Episodes whose
    /// onset deadline was beyond the horizon cannot miss.
    pub missed_deadline: bool,
    /// Whether the attack was detected at all (false negative
    /// otherwise; only meaningful when an attack was present).
    pub detected: bool,
}

/// Computes metrics for one alarm stream of an episode.
///
/// False positives are alarms on *attack-free* steps: before the
/// onset, or after the attack has ended and its last tainted point has
/// left even the largest window (a grace of `w_m` steps — taken from
/// the episode's recorded window bound — follows the attack end).
/// Alarms inside the attack span (plus grace) count as detection, not
/// false positives; the first of them is the detection step.
///
/// # Panics
///
/// Panics when `alarms.len()` differs from the episode length.
pub fn evaluate(result: &EpisodeResult, alarms: &[bool]) -> EpisodeMetrics {
    assert_eq!(
        alarms.len(),
        result.states.len(),
        "alarm stream must cover the episode"
    );
    let steps = alarms.len();
    let onset = result.attack_onset.unwrap_or(steps);
    let grace = result.windows.iter().copied().max().unwrap_or(0) + 1;
    // One past the last step an alarm may still be attributed to the
    // attack rather than counted as a false positive.
    let blame_end = result
        .attack_end
        .map_or(steps, |e| (e + grace).min(steps))
        .max(onset.min(steps));

    let mut fp_count = 0usize;
    let mut clean_steps = 0usize;
    for (t, &alarm) in alarms.iter().enumerate() {
        let attack_attributable = t >= onset && t < blame_end;
        if !attack_attributable {
            clean_steps += 1;
            fp_count += alarm as usize;
        }
    }
    let false_positive_rate = if clean_steps == 0 {
        0.0
    } else {
        fp_count as f64 / clean_steps as f64
    };

    let detection_step = alarms[onset.min(steps)..blame_end]
        .iter()
        .position(|&a| a)
        .map(|i| i + onset);
    let detection_delay = detection_step.map(|d| d - onset);

    let deadline_step = result
        .attack_onset
        .zip(result.onset_deadline)
        .map(|(o, t_d)| o + t_d);
    let missed_deadline = match deadline_step {
        Some(deadline) => match detection_step {
            Some(det) => det > deadline,
            None => true,
        },
        None => false,
    };

    EpisodeMetrics {
        false_positive_rate,
        detection_step,
        detection_delay,
        unsafe_entry: result.unsafe_entry,
        deadline_step,
        fp_experiment: false_positive_rate > FP_RATE_LIMIT,
        missed_deadline,
        detected: detection_step.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_linalg::Vector;

    fn blank(steps: usize, onset: Option<usize>, onset_deadline: Option<usize>) -> EpisodeResult {
        EpisodeResult {
            states: vec![Vector::zeros(1); steps],
            estimates: vec![Vector::zeros(1); steps],
            inputs: vec![Vector::zeros(1); steps],
            residuals: vec![Vector::zeros(1); steps],
            windows: vec![0; steps],
            deadlines: vec![None; steps],
            adaptive_alarms: vec![false; steps],
            fixed_alarms: vec![false; steps],
            cusum_alarms: vec![false; steps],
            every_step_alarms: vec![false; steps],
            ewma_alarms: vec![false; steps],
            references: vec![0.0; steps],
            attack_onset: onset,
            attack_end: None,
            unsafe_entry: None,
            onset_deadline,
        }
    }

    #[test]
    fn fp_rate_counts_pre_onset_only() {
        let r = blank(10, Some(5), None);
        let mut alarms = vec![false; 10];
        alarms[1] = true; // pre-onset FP
        alarms[7] = true; // post-onset: detection, not FP
        let m = evaluate(&r, &alarms);
        assert!((m.false_positive_rate - 0.2).abs() < 1e-12);
        assert!(m.fp_experiment);
        assert_eq!(m.detection_step, Some(7));
        assert_eq!(m.detection_delay, Some(2));
        assert!(m.detected);
    }

    #[test]
    fn benign_episode_uses_all_steps() {
        let r = blank(10, None, None);
        let mut alarms = vec![false; 10];
        alarms[9] = true;
        let m = evaluate(&r, &alarms);
        assert!((m.false_positive_rate - 0.1).abs() < 1e-12);
        assert!(!m.fp_experiment); // exactly 10% is not "exceeds"
        assert_eq!(m.detection_step, None);
        assert!(!m.missed_deadline);
    }

    #[test]
    fn deadline_miss_when_alarm_after_deadline() {
        // Onset 5, estimated deadline t_d = 5 → absolute deadline 10.
        let r = blank(20, Some(5), Some(5));
        let mut late = vec![false; 20];
        late[12] = true;
        let m = evaluate(&r, &late);
        assert_eq!(m.deadline_step, Some(10));
        assert!(m.missed_deadline);

        let mut in_time = vec![false; 20];
        in_time[8] = true;
        assert!(!evaluate(&r, &in_time).missed_deadline);

        // Alarm exactly at the deadline step is still in time
        // (detection *within* the deadline).
        let mut exact = vec![false; 20];
        exact[10] = true;
        assert!(!evaluate(&r, &exact).missed_deadline);
    }

    #[test]
    fn beyond_horizon_deadline_cannot_miss() {
        let r = blank(20, Some(5), None);
        let silent = vec![false; 20];
        let m = evaluate(&r, &silent);
        assert_eq!(m.deadline_step, None);
        assert!(!m.missed_deadline);
        assert!(!m.detected);
    }

    #[test]
    fn undetected_attack_with_deadline_misses() {
        let r = blank(20, Some(5), Some(5));
        let silent = vec![false; 20];
        assert!(evaluate(&r, &silent).missed_deadline);
    }

    #[test]
    #[should_panic(expected = "alarm stream")]
    fn length_mismatch_panics() {
        let r = blank(5, None, None);
        evaluate(&r, &[false; 4]);
    }
}
