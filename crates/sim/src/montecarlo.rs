use awsad_models::CpsModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{evaluate, run_episode, sample_attack, AttackKind, EpisodeConfig};

/// Aggregate statistics of one strategy (adaptive or fixed) over a
/// cell's `runs` episodes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StrategyStats {
    /// `#FP` of Table 2: episodes whose pre-attack false-positive rate
    /// exceeded 10%.
    pub fp_experiments: usize,
    /// `#DM` of Table 2: episodes where the state went unsafe without
    /// a strictly earlier alarm.
    pub deadline_misses: usize,
    /// Episodes with at least one post-onset alarm.
    pub detected: usize,
    /// Mean detection delay (steps) over detected episodes, `None`
    /// when nothing was detected.
    pub mean_detection_delay: Option<f64>,
}

/// Result of one Table 2 cell: the same `runs` seeded trajectories
/// evaluated under both strategies (paired comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// The attack scenario of this cell.
    pub attack: AttackKind,
    /// Number of episodes run.
    pub runs: usize,
    /// Adaptive-window strategy statistics.
    pub adaptive: StrategyStats,
    /// Fixed-window strategy statistics.
    pub fixed: StrategyStats,
    /// Episodes whose attack actually drove the plant unsafe (the
    /// denominator that can produce deadline misses).
    pub threatening_runs: usize,
}

/// Runs one (simulator, attack) cell of Table 2: `runs` episodes with
/// seeds `base_seed, base_seed+1, …`, each drawing fresh attack
/// parameters, evaluated under the adaptive and the fixed strategy on
/// identical trajectories.
pub fn run_cell(
    model: &CpsModel,
    attack: AttackKind,
    runs: usize,
    cfg: &EpisodeConfig,
    base_seed: u64,
) -> CellResult {
    let mut adaptive = StrategyStats::default();
    let mut fixed = StrategyStats::default();
    let mut threatening = 0usize;
    let mut adaptive_delay_sum = 0usize;
    let mut fixed_delay_sum = 0usize;

    for i in 0..runs {
        let seed = base_seed.wrapping_add(i as u64);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
        let scenario = sample_attack(model, attack, &mut rng);
        let mut atk = scenario.attack;
        let result = run_episode(model, atk.as_mut(), Some(scenario.reference), cfg, seed);

        if result.unsafe_entry.is_some() {
            threatening += 1;
        }
        let m_a = evaluate(&result, &result.adaptive_alarms);
        let m_f = evaluate(&result, &result.fixed_alarms);

        adaptive.fp_experiments += m_a.fp_experiment as usize;
        adaptive.deadline_misses += m_a.missed_deadline as usize;
        adaptive.detected += m_a.detected as usize;
        adaptive_delay_sum += m_a.detection_delay.unwrap_or(0);

        fixed.fp_experiments += m_f.fp_experiment as usize;
        fixed.deadline_misses += m_f.missed_deadline as usize;
        fixed.detected += m_f.detected as usize;
        fixed_delay_sum += m_f.detection_delay.unwrap_or(0);
    }

    adaptive.mean_detection_delay =
        (adaptive.detected > 0).then(|| adaptive_delay_sum as f64 / adaptive.detected as f64);
    fixed.mean_detection_delay =
        (fixed.detected > 0).then(|| fixed_delay_sum as f64 / fixed.detected as f64);

    CellResult {
        attack,
        runs,
        adaptive,
        fixed,
        threatening_runs: threatening,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_models::Simulator;

    #[test]
    fn cell_is_reproducible() {
        let model = Simulator::VehicleTurning.build();
        let cfg = EpisodeConfig::for_model(&model);
        let c1 = run_cell(&model, AttackKind::Bias, 3, &cfg, 100);
        let c2 = run_cell(&model, AttackKind::Bias, 3, &cfg, 100);
        assert_eq!(c1, c2);
    }

    #[test]
    fn bias_cell_shows_papers_shape() {
        // Small but meaningful: the adaptive arm misses no more
        // deadlines than fixed, and fixed misses at least one on the
        // vehicle under bias (Table 2: fixed DM 34/100).
        let model = Simulator::VehicleTurning.build();
        let cfg = EpisodeConfig::for_model(&model);
        let cell = run_cell(&model, AttackKind::Bias, 10, &cfg, 2_000);
        assert!(
            cell.threatening_runs > 0,
            "bias attacks never threatened safety"
        );
        assert!(cell.adaptive.deadline_misses <= cell.fixed.deadline_misses);
        assert!(cell.adaptive.detected >= cell.fixed.detected);
    }

    #[test]
    fn counts_bounded_by_runs() {
        let model = Simulator::RlcCircuit.build();
        let cfg = EpisodeConfig::for_model(&model);
        let cell = run_cell(&model, AttackKind::Replay, 4, &cfg, 7);
        for s in [cell.adaptive, cell.fixed] {
            assert!(s.fp_experiments <= cell.runs);
            assert!(s.deadline_misses <= cell.runs);
            assert!(s.detected <= cell.runs);
        }
        assert!(cell.threatening_runs <= cell.runs);
    }
}
