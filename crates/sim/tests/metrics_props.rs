//! Property-based tests for the episode metrics: `evaluate` must be a
//! total, internally consistent function of (alarm stream, episode
//! metadata) — the tables are only as trustworthy as this code.

use awsad_linalg::Vector;
use awsad_sim::{evaluate, EpisodeResult, FP_RATE_LIMIT};
use proptest::prelude::*;

fn episode(
    steps: usize,
    onset: Option<usize>,
    attack_end: Option<usize>,
    onset_deadline: Option<usize>,
    windows: Vec<usize>,
) -> EpisodeResult {
    EpisodeResult {
        states: vec![Vector::zeros(1); steps],
        estimates: vec![Vector::zeros(1); steps],
        inputs: vec![Vector::zeros(1); steps],
        residuals: vec![Vector::zeros(1); steps],
        windows,
        deadlines: vec![None; steps],
        adaptive_alarms: vec![false; steps],
        fixed_alarms: vec![false; steps],
        cusum_alarms: vec![false; steps],
        every_step_alarms: vec![false; steps],
        ewma_alarms: vec![false; steps],
        references: vec![0.0; steps],
        attack_onset: onset,
        attack_end,
        unsafe_entry: None,
        onset_deadline,
    }
}

proptest! {
    /// For arbitrary alarm streams and attack geometry, every derived
    /// metric is in range and internally consistent.
    #[test]
    fn evaluate_is_internally_consistent(
        steps in 5usize..120,
        alarm_bits in prop::collection::vec(any::<bool>(), 5..120),
        onset_frac in 0.0..1.0f64,
        duration in 1usize..60,
        t_d in prop::option::of(0usize..40),
        w in 0usize..20,
    ) {
        let steps = steps.min(alarm_bits.len());
        let alarms: Vec<bool> = alarm_bits[..steps].to_vec();
        let onset = ((steps as f64 * onset_frac) as usize).min(steps.saturating_sub(1));
        let end = (onset + duration).min(steps);
        let r = episode(steps, Some(onset), Some(end), t_d, vec![w; steps]);
        let m = evaluate(&r, &alarms);

        // Ranges.
        prop_assert!((0.0..=1.0).contains(&m.false_positive_rate));
        prop_assert_eq!(m.fp_experiment, m.false_positive_rate > FP_RATE_LIMIT);
        prop_assert_eq!(m.detected, m.detection_step.is_some());

        // Detection lies inside the attributable span.
        if let Some(det) = m.detection_step {
            prop_assert!(det >= onset);
            prop_assert!(alarms[det], "detection step must be an alarmed step");
            prop_assert_eq!(m.detection_delay, Some(det - onset));
        }

        // Deadline bookkeeping.
        match (t_d, m.deadline_step) {
            (Some(d), Some(abs)) => prop_assert_eq!(abs, onset + d),
            (None, None) => {}
            other => prop_assert!(false, "deadline mismatch {other:?}"),
        }
        if m.deadline_step.is_none() {
            prop_assert!(!m.missed_deadline, "no deadline, no miss");
        }
        if let (Some(deadline), Some(det)) = (m.deadline_step, m.detection_step) {
            prop_assert_eq!(m.missed_deadline, det > deadline);
        }
        if m.deadline_step.is_some() && m.detection_step.is_none() {
            prop_assert!(m.missed_deadline);
        }
    }

    /// A benign episode's FP rate equals the raw alarm fraction.
    #[test]
    fn benign_fp_rate_is_the_alarm_fraction(
        alarm_bits in prop::collection::vec(any::<bool>(), 5..200),
    ) {
        let steps = alarm_bits.len();
        let r = episode(steps, None, None, None, vec![0; steps]);
        let m = evaluate(&r, &alarm_bits);
        let expected = alarm_bits.iter().filter(|&&a| a).count() as f64 / steps as f64;
        prop_assert!((m.false_positive_rate - expected).abs() < 1e-12);
        prop_assert!(!m.detected);
        prop_assert!(!m.missed_deadline);
    }

    /// Adding alarms can only move the detection earlier (or create
    /// one) and can never turn a kept deadline into a miss.
    #[test]
    fn alarms_are_monotone_for_detection(
        steps in 10usize..80,
        base_bits in prop::collection::vec(any::<bool>(), 10..80),
        extra in 0usize..80,
        onset in 0usize..40,
        t_d in 0usize..20,
    ) {
        let steps = steps.min(base_bits.len());
        let onset = onset.min(steps - 1);
        let mut more = base_bits[..steps].to_vec();
        let extra = extra.min(steps - 1);
        more[extra] = true;

        let r = episode(steps, Some(onset), Some(steps), Some(t_d), vec![0; steps]);
        let m_base = evaluate(&r, &base_bits[..steps]);
        let m_more = evaluate(&r, &more);

        if let (Some(a), Some(b)) = (m_base.detection_step, m_more.detection_step) {
            prop_assert!(b <= a, "extra alarm delayed detection");
        }
        if m_base.detected {
            prop_assert!(m_more.detected);
        }
        prop_assert!(
            !m_more.missed_deadline || m_base.missed_deadline,
            "extra alarm created a deadline miss"
        );
    }
}
