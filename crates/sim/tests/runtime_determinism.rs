//! The runtime engine must be a *transparent* execution substrate:
//! driving a session tick-by-tick through `awsad-runtime` has to
//! produce exactly the `AdaptiveStep` sequence that calling
//! `AdaptiveDetector::step` directly on the same trace produces —
//! byte-identical deadlines, windows, and alarms, for every model and
//! attack shape.

use awsad_core::{AdaptiveDetector, AdaptiveStep, DataLogger, DetectorConfig};
use awsad_models::{CpsModel, Simulator};
use awsad_runtime::{DetectionEngine, EngineConfig, Tick};
use awsad_sim::{run_episode, sample_attack, AttackKind, EpisodeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fresh detection state mirroring `run_episode`'s construction.
fn detection_parts(model: &CpsModel, cfg: &EpisodeConfig) -> (DataLogger, AdaptiveDetector) {
    let det_cfg =
        DetectorConfig::new(model.threshold.clone(), cfg.max_window).expect("validated model");
    let logger = model.data_logger(cfg.max_window);
    let mut detector = AdaptiveDetector::new(
        det_cfg,
        model
            .deadline_estimator(cfg.max_window)
            .expect("validated model"),
    )
    .expect("validated model");
    detector.set_initial_radius(cfg.initial_radius);
    detector.set_complementary_enabled(cfg.complementary);
    detector.set_reestimation_period(cfg.reestimation_period.max(1));
    (logger, detector)
}

#[test]
fn runtime_session_replays_detector_byte_identically() {
    let models = [
        Simulator::VehicleTurning,
        Simulator::AircraftPitch,
        Simulator::RlcCircuit,
    ];
    let attacks = [AttackKind::Bias, AttackKind::Replay];
    let engine = DetectionEngine::new(EngineConfig::default());

    for (mi, sim) in models.iter().enumerate() {
        let model = sim.build();
        let mut cfg = EpisodeConfig::for_model(&model);
        cfg.steps = cfg.steps.min(250); // enough to cover onset + attack
        for (ai, kind) in attacks.iter().enumerate() {
            let seed = 0xD0_0D + (mi * 10 + ai) as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let scenario = sample_attack(&model, *kind, &mut rng);
            let mut attack = scenario.attack;
            let episode = run_episode(
                &model,
                attack.as_mut(),
                Some(scenario.reference),
                &cfg,
                seed,
            );
            assert_eq!(episode.estimates.len(), episode.inputs.len());

            // Reference: the detector stepped directly on the trace.
            let (mut logger, mut detector) = detection_parts(&model, &cfg);
            let mut expected: Vec<AdaptiveStep> = Vec::with_capacity(cfg.steps);
            for (estimate, input) in episode.estimates.iter().zip(&episode.inputs) {
                logger.record(estimate.clone(), input.clone());
                expected.push(detector.step(&logger));
            }

            // Same trace through a runtime session.
            let (logger, detector) = detection_parts(&model, &cfg);
            let (session, outcomes) = engine.add_session(logger, detector);
            for (estimate, input) in episode.estimates.iter().zip(&episode.inputs) {
                session
                    .submit(Tick {
                        estimate: estimate.clone(),
                        input: input.clone(),
                    })
                    .expect("session open");
            }
            engine.drain();
            let got: Vec<AdaptiveStep> = outcomes.try_iter().map(|o| o.step).collect();

            assert_eq!(
                got, expected,
                "{sim} under {kind:?}: runtime diverged from direct stepping"
            );
            // The episode's own alarm log must agree as well (the
            // engine replay is faithful to the original run, not just
            // to a re-run).
            let alarms: Vec<bool> = expected.iter().map(|s| s.alarm()).collect();
            assert_eq!(
                alarms, episode.adaptive_alarms,
                "{sim} under {kind:?}: replay diverged from the episode"
            );
        }
    }
}
