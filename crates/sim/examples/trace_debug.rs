//! Debug tracing for tuning: prints a condensed per-step view of one
//! attacked episode per (model, attack) pair — window size, deadline,
//! residual in the attacked dimension, alarms, unsafe entry.

use awsad_models::Simulator;
use awsad_sim::{run_episode, sample_attack, AttackKind, EpisodeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("vehicle");
    let attack_name = args.get(2).map(String::as_str).unwrap_or("bias");
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);

    let sim = match which {
        "aircraft" => Simulator::AircraftPitch,
        "vehicle" => Simulator::VehicleTurning,
        "rlc" => Simulator::RlcCircuit,
        "motor" => Simulator::DcMotorPosition,
        "quad" => Simulator::Quadrotor,
        other => panic!("unknown model {other}"),
    };
    let kind = match attack_name {
        "bias" => AttackKind::Bias,
        "delay" => AttackKind::Delay,
        "replay" => AttackKind::Replay,
        other => panic!("unknown attack {other}"),
    };

    let model = sim.build();
    let cfg = EpisodeConfig::for_model(&model);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let s = sample_attack(&model, kind, &mut rng);
    let onset = s.onset.unwrap();
    let mut atk = s.attack;
    let r = run_episode(&model, atk.as_mut(), Some(s.reference), &cfg, seed);

    let d = model.attack_profile.target_dim;
    println!(
        "{} / {} seed={} onset={} unsafe={:?} adaptive@{:?} fixed@{:?}",
        model.name,
        attack_name,
        seed,
        onset,
        r.unsafe_entry,
        r.first_adaptive_alarm(onset),
        r.first_fixed_alarm(onset)
    );
    println!("tau[{}] = {}", d, model.threshold[d]);
    let pre_fp_adaptive = r.adaptive_alarms[..onset].iter().filter(|&&a| a).count();
    println!("pre-onset adaptive alarms: {pre_fp_adaptive}/{onset}");

    let end = r.states.len();
    let stride = (end / 60).max(1);
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>4} {:>6} {:>9} {:>2}{:>2}",
        "t", "true", "est", "resid", "w", "dl", "ref", "A", "F"
    );
    for t in (0..end).step_by(stride) {
        println!(
            "{:>5} {:>9.4} {:>9.4} {:>9.4} {:>4} {:>6} {:>9.4} {:>2}{:>2}",
            t,
            r.states[t][d],
            r.estimates[t][d],
            r.residuals[t][d],
            r.windows[t],
            r.deadlines[t].map_or("-".into(), |x| x.to_string()),
            r.references[t],
            r.adaptive_alarms[t] as u8,
            r.fixed_alarms[t] as u8,
        );
    }
}
