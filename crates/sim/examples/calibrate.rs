//! Calibration diagnostic: per-model residual statistics vs τ.
//!
//! Prints, for each benchmark model, the pre-onset single-sample
//! exceedance rate (drives w=0 false positives), the windowed-mean
//! residual relative to τ (drives large-window false positives), and
//! detection behaviour under a short bias attack. Used to calibrate
//! the per-model `sensor_noise` values.

use awsad_attack::NoAttack;
use awsad_models::Simulator;
use awsad_sim::{run_episode, EpisodeConfig};

fn main() {
    for sim in Simulator::all() {
        let model = sim.build();
        let cfg = EpisodeConfig::for_model(&model);
        let mut attack = NoAttack;
        let r = run_episode(&model, &mut attack, None, &cfg, 12345);
        let n = model.state_dim();
        let steps = r.residuals.len();
        let settle = steps / 3; // skip transient

        // Single-sample exceedance rate (any dim).
        let exceed = (settle..steps)
            .filter(|&t| r.residuals[t].any_exceeds(&model.threshold))
            .count() as f64
            / (steps - settle) as f64;

        // Mean residual per dim / tau.
        let mut worst_ratio = 0.0f64;
        let mut worst_dim = 0;
        for d in 0..n {
            let mean: f64 =
                (settle..steps).map(|t| r.residuals[t][d]).sum::<f64>() / (steps - settle) as f64;
            let ratio = mean / model.threshold[d];
            if ratio > worst_ratio {
                worst_ratio = ratio;
                worst_dim = d;
            }
        }

        // Window sizes chosen by the adaptive detector in steady state.
        let wmin = r.windows[settle..].iter().min().unwrap();
        let wmax = r.windows[settle..].iter().max().unwrap();

        println!(
            "{:<22} exceed(w=0)={:>6.1}%  mean/tau={:>5.2} (dim {} '{}')  adaptive w in [{}, {}]",
            model.name,
            exceed * 100.0,
            worst_ratio,
            worst_dim,
            model.state_names[worst_dim],
            wmin,
            wmax
        );
    }
}
