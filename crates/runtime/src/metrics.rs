use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of fixed latency buckets per stage histogram.
pub const LATENCY_BUCKETS: usize = 24;

/// Upper bound (inclusive) of latency bucket `i`, in nanoseconds.
///
/// Buckets are powers of two starting at 128 ns: bucket 0 holds
/// `(0, 128]` ns, bucket 1 `(128, 256]` ns, …; the last bucket is
/// open-ended (≈ 1 s and above).
pub fn bucket_bound_ns(i: usize) -> u64 {
    128u64 << i.min(LATENCY_BUCKETS - 1)
}

fn bucket_index(ns: u64) -> usize {
    let mut idx = 0;
    while idx < LATENCY_BUCKETS - 1 && ns > bucket_bound_ns(idx) {
        idx += 1;
    }
    idx
}

/// Lock-free accumulation side of one stage histogram.
#[derive(Debug, Default)]
pub(crate) struct HistInner {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl HistInner {
    pub(crate) fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHistogram {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        LatencyHistogram {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one stage's latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample count per bucket; see [`bucket_bound_ns`] for bounds.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded latencies in nanoseconds.
    pub sum_ns: u64,
}

impl LatencyHistogram {
    /// Mean latency in nanoseconds (`0` before any sample).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bucket bound below which at least `q` (in `[0, 1]`) of
    /// the samples fall — a conservative quantile estimate (`None`
    /// before any sample).
    pub fn quantile_bound_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_bound_ns(i));
            }
        }
        Some(bucket_bound_ns(LATENCY_BUCKETS - 1))
    }
}

/// Shared atomic counters behind [`RuntimeMetrics`] snapshots.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    pub(crate) sessions_active: AtomicU64,
    pub(crate) ticks_submitted: AtomicU64,
    pub(crate) ticks_processed: AtomicU64,
    pub(crate) alarms_raised: AtomicU64,
    pub(crate) degraded_ticks: AtomicU64,
    pub(crate) queue_depth_high_water: AtomicU64,
    pub(crate) log_latency: HistInner,
    pub(crate) detect_latency: HistInner,
}

impl MetricsInner {
    pub(crate) fn snapshot(&self) -> RuntimeMetrics {
        RuntimeMetrics {
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            ticks_submitted: self.ticks_submitted.load(Ordering::Relaxed),
            ticks_processed: self.ticks_processed.load(Ordering::Relaxed),
            alarms_raised: self.alarms_raised.load(Ordering::Relaxed),
            degraded_ticks: self.degraded_ticks.load(Ordering::Relaxed),
            queue_depth_high_water: self.queue_depth_high_water.load(Ordering::Relaxed),
            log_latency: self.log_latency.snapshot(),
            detect_latency: self.detect_latency.snapshot(),
        }
    }
}

/// A consistent-enough point-in-time view of the engine's counters.
///
/// All counters accumulate monotonically over the engine's lifetime
/// (they are not reset by session churn). Individual fields are read
/// with relaxed atomics: totals can be transiently off by in-flight
/// ticks relative to each other, but each counter is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeMetrics {
    /// Sessions currently open (added and not yet closed).
    pub sessions_active: u64,
    /// Ticks accepted into session queues so far.
    pub ticks_submitted: u64,
    /// Ticks fully processed (logged + detected) so far.
    pub ticks_processed: u64,
    /// Processed ticks whose detection step raised any alarm.
    pub alarms_raised: u64,
    /// Processed ticks that took the degraded (no-reachability-query)
    /// path under overload.
    pub degraded_ticks: u64,
    /// Highest number of ticks simultaneously queued across all
    /// sessions observed so far.
    pub queue_depth_high_water: u64,
    /// Latency distribution of the logging stage (`DataLogger::record`).
    pub log_latency: LatencyHistogram,
    /// Latency distribution of the detection stage
    /// (`AdaptiveDetector::step` / `step_degraded`).
    pub detect_latency: LatencyHistogram,
}

impl RuntimeMetrics {
    /// Ticks submitted but not yet processed at snapshot time.
    pub fn backlog(&self) -> u64 {
        self.ticks_submitted.saturating_sub(self.ticks_processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_double() {
        assert_eq!(bucket_bound_ns(0), 128);
        assert_eq!(bucket_bound_ns(1), 256);
        assert_eq!(bucket_bound_ns(10), 128 << 10);
    }

    #[test]
    fn bucket_index_clamps_to_last() {
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(128), 0);
        assert_eq!(bucket_index(129), 1);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let hist = HistInner::default();
        hist.record(Duration::from_nanos(100));
        hist.record(Duration::from_nanos(300));
        hist.record(Duration::from_micros(10));
        let snap = hist.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_ns, 100 + 300 + 10_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 3);
        assert!((snap.mean_ns() - (10_400.0 / 3.0)).abs() < 1e-9);
        // Median bound: two of three samples are <= 512 ns.
        assert_eq!(snap.quantile_bound_ns(0.5), Some(512));
        assert_eq!(snap.quantile_bound_ns(1.0), Some(16384));
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let snap = HistInner::default().snapshot();
        assert_eq!(snap.quantile_bound_ns(0.5), None);
        assert_eq!(snap.mean_ns(), 0.0);
    }

    #[test]
    fn snapshot_copies_counters() {
        let inner = MetricsInner::default();
        inner.ticks_submitted.fetch_add(5, Ordering::Relaxed);
        inner.ticks_processed.fetch_add(3, Ordering::Relaxed);
        let snap = inner.snapshot();
        assert_eq!(snap.ticks_submitted, 5);
        assert_eq!(snap.backlog(), 2);
    }
}
