use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of fixed latency buckets per stage histogram.
pub const LATENCY_BUCKETS: usize = 24;

/// Upper bound (inclusive) of latency bucket `i`, in nanoseconds.
///
/// Buckets are powers of two starting at 128 ns: bucket 0 holds
/// `(0, 128]` ns, bucket 1 `(128, 256]` ns, …; samples beyond the
/// last bound (≈ 1 s) land in the explicit overflow bucket, not in
/// bucket `LATENCY_BUCKETS - 1`.
pub fn bucket_bound_ns(i: usize) -> u64 {
    128u64 << i.min(LATENCY_BUCKETS - 1)
}

/// The finite bucket holding `ns`, or `None` when the sample exceeds
/// the last bucket bound and belongs in the overflow bucket.
fn bucket_index(ns: u64) -> Option<usize> {
    let mut idx = 0;
    while ns > bucket_bound_ns(idx) {
        if idx == LATENCY_BUCKETS - 1 {
            return None;
        }
        idx += 1;
    }
    Some(idx)
}

/// Lock-free accumulation side of one stage histogram.
#[derive(Debug, Default)]
pub(crate) struct HistInner {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl HistInner {
    pub(crate) fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        match bucket_index(ns) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records `n` samples of identical duration in one shot. The
    /// batched detection path measures one elapsed span for a whole
    /// lane group and attributes the per-lane mean to each tick, so
    /// histogram counts and totals stay comparable with the scalar
    /// path's per-tick samples at a fraction of the clock reads.
    pub(crate) fn record_n(&self, each: Duration, n: u64) {
        if n == 0 {
            return;
        }
        let ns = each.as_nanos().min(u64::MAX as u128) as u64;
        match bucket_index(ns) {
            Some(i) => self.buckets[i].fetch_add(n, Ordering::Relaxed),
            None => self.overflow.fetch_add(n, Ordering::Relaxed),
        };
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum_ns
            .fetch_add(ns.saturating_mul(n), Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHistogram {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        LatencyHistogram {
            buckets,
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one stage's latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample count per finite bucket; see [`bucket_bound_ns`].
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Samples beyond the last finite bucket bound. Counting these
    /// separately keeps [`LatencyHistogram::quantile_bound_ns`]
    /// honest: a quantile landing here has **no** claimable finite
    /// bound, instead of being silently attributed to the last bucket.
    pub overflow: u64,
    /// Total samples recorded (finite buckets + overflow).
    pub count: u64,
    /// Sum of all recorded latencies in nanoseconds (actual values,
    /// including overflow samples, so the mean stays exact).
    pub sum_ns: u64,
}

impl LatencyHistogram {
    /// Mean latency in nanoseconds (`0` before any sample). Overflow
    /// samples contribute their actual value, not a bucket bound.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Elementwise sum of two histograms — the distribution that
    /// would have resulted from recording both sample sets into one
    /// histogram. Bucket bounds are fixed and identical across all
    /// histograms, so the merge is exact (no re-bucketing error);
    /// counters saturate rather than wrap on overflow.
    pub fn merged(&self, other: &LatencyHistogram) -> LatencyHistogram {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(other.buckets.iter()))
        {
            *slot = a.saturating_add(*b);
        }
        LatencyHistogram {
            buckets,
            overflow: self.overflow.saturating_add(other.overflow),
            count: self.count.saturating_add(other.count),
            sum_ns: self.sum_ns.saturating_add(other.sum_ns),
        }
    }

    /// Upper bucket bound below which at least `q` (in `[0, 1]`) of
    /// the samples fall — a conservative quantile estimate. `None`
    /// before any sample, and `None` when the requested quantile
    /// lands in the overflow bucket (no finite bound would be
    /// truthful there). `q = 0` reports the bound of the first
    /// non-empty bucket (the minimum's bucket), so it too is `None`
    /// when every sample overflowed.
    pub fn quantile_bound_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // At least one sample must be covered: a target of zero would
        // let the scan stop at bucket 0 even when that bucket — or
        // every finite bucket — is empty.
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_bound_ns(i));
            }
        }
        None
    }
}

/// Shared atomic counters behind [`RuntimeMetrics`] snapshots.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    pub(crate) sessions_active: AtomicU64,
    pub(crate) ticks_submitted: AtomicU64,
    pub(crate) ticks_processed: AtomicU64,
    pub(crate) alarms_raised: AtomicU64,
    pub(crate) degraded_ticks: AtomicU64,
    pub(crate) queue_depth_high_water: AtomicU64,
    pub(crate) alloc_free_ticks: AtomicU64,
    pub(crate) batched_deadline_queries: AtomicU64,
    pub(crate) sessions_replicated: AtomicU64,
    pub(crate) failovers: AtomicU64,
    pub(crate) replication_lag_hwm: AtomicU64,
    pub(crate) batch_ticks: AtomicU64,
    pub(crate) batch_sessions_hwm: AtomicU64,
    pub(crate) scalar_fallback_ticks: AtomicU64,
    pub(crate) recalibrations: AtomicU64,
    pub(crate) log_latency: HistInner,
    pub(crate) detect_latency: HistInner,
}

impl MetricsInner {
    pub(crate) fn snapshot(&self) -> RuntimeMetrics {
        RuntimeMetrics {
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            ticks_submitted: self.ticks_submitted.load(Ordering::Relaxed),
            ticks_processed: self.ticks_processed.load(Ordering::Relaxed),
            alarms_raised: self.alarms_raised.load(Ordering::Relaxed),
            degraded_ticks: self.degraded_ticks.load(Ordering::Relaxed),
            queue_depth_high_water: self.queue_depth_high_water.load(Ordering::Relaxed),
            alloc_free_ticks: self.alloc_free_ticks.load(Ordering::Relaxed),
            batched_deadline_queries: self.batched_deadline_queries.load(Ordering::Relaxed),
            sessions_replicated: self.sessions_replicated.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            replication_lag_hwm: self.replication_lag_hwm.load(Ordering::Relaxed),
            batch_ticks: self.batch_ticks.load(Ordering::Relaxed),
            batch_sessions_hwm: self.batch_sessions_hwm.load(Ordering::Relaxed),
            scalar_fallback_ticks: self.scalar_fallback_ticks.load(Ordering::Relaxed),
            recalibrations: self.recalibrations.load(Ordering::Relaxed),
            log_latency: self.log_latency.snapshot(),
            detect_latency: self.detect_latency.snapshot(),
        }
    }
}

/// A consistent-enough point-in-time view of the engine's counters.
///
/// All counters accumulate monotonically over the engine's lifetime
/// (they are not reset by session churn). Individual fields are read
/// with relaxed atomics: totals can be transiently off by in-flight
/// ticks relative to each other, but each counter is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeMetrics {
    /// Sessions currently open (added and not yet closed).
    pub sessions_active: u64,
    /// Ticks accepted into session queues so far.
    pub ticks_submitted: u64,
    /// Ticks fully processed (logged + detected) so far.
    pub ticks_processed: u64,
    /// Processed ticks whose detection step raised any alarm.
    pub alarms_raised: u64,
    /// Processed ticks that took the degraded (no-reachability-query)
    /// path under overload.
    pub degraded_ticks: u64,
    /// Highest number of ticks simultaneously queued across all
    /// sessions observed so far.
    pub queue_depth_high_water: u64,
    /// Non-degraded processed ticks whose detection stage completed
    /// without heap allocation (aged or cache-hit deadline, or the
    /// scratch-buffer reachability walk; no cache insert, no
    /// complementary alarms).
    pub alloc_free_ticks: u64,
    /// Deadline-cache entries inserted by *batched* (coalesced)
    /// reachability walks rather than per-tick misses.
    pub batched_deadline_queries: u64,
    /// Session snapshots accepted into this node's replica store by
    /// the cluster replication ingress (`ReplicateSnapshot` frames
    /// stored, stale generations excluded).
    pub sessions_replicated: u64,
    /// Replica promotions served by this node (`PromoteSession`
    /// frames that turned a stored replica into a live session).
    pub failovers: u64,
    /// Highest replication backlog observed: snapshots queued on the
    /// egress side but not yet acknowledged by the backup. A
    /// high-water mark, not a rate — it answers "how stale could the
    /// backup have been at the worst moment".
    pub replication_lag_hwm: u64,
    /// Non-degraded ticks stepped through the cross-session batched
    /// path (structure-of-arrays lanes in a `BatchPlan` group) rather
    /// than a per-session scalar step. Zero unless
    /// `EngineConfig::cross_session_batch` is on.
    pub batch_ticks: u64,
    /// Widest lane set a single batched detection step has covered —
    /// how many sessions actually vectorized together at the best
    /// moment. A high-water mark, merged by max like the other
    /// high-waters.
    pub batch_sessions_hwm: u64,
    /// Non-degraded ticks that fell back to the scalar path while the
    /// engine was in batch mode (unbatchable sessions: quantized
    /// deadline caches). Degraded ticks count in `degraded_ticks`
    /// only, never here.
    pub scalar_fallback_ticks: u64,
    /// Mid-stream plant-model swaps accepted by live sessions
    /// (`SessionHandle::recalibrate` calls that succeeded). Rejected
    /// attempts leave the session untouched and are counted at the
    /// transport layer, not here.
    pub recalibrations: u64,
    /// Latency distribution of the logging stage (`DataLogger::record`).
    pub log_latency: LatencyHistogram,
    /// Latency distribution of the detection stage
    /// (`AdaptiveDetector::step` / `step_degraded`).
    pub detect_latency: LatencyHistogram,
}

impl RuntimeMetrics {
    /// Ticks submitted but not yet processed at snapshot time.
    pub fn backlog(&self) -> u64 {
        self.ticks_submitted.saturating_sub(self.ticks_processed)
    }

    /// A snapshot with every counter zero — the identity for
    /// [`RuntimeMetrics::merged`], so a fleet of shards can fold
    /// their snapshots without special-casing the empty fleet.
    pub fn zero() -> RuntimeMetrics {
        MetricsInner::default().snapshot()
    }

    /// Combines two independent engine snapshots into the view a
    /// single engine doing both workloads would have reported.
    ///
    /// This is the aggregation contract for sharded deployments
    /// (one `DetectionEngine` per I/O shard): additive counters sum
    /// (saturating), `sessions_active` sums because a session lives
    /// on exactly one shard, `queue_depth_high_water` takes the max —
    /// per-shard high-waters are observed at unrelated instants, so
    /// their sum would claim a global depth that never existed, while
    /// the max is a depth some queue really reached — and latency
    /// histograms merge elementwise (exact; shared fixed bounds).
    pub fn merged(&self, other: &RuntimeMetrics) -> RuntimeMetrics {
        RuntimeMetrics {
            sessions_active: self.sessions_active.saturating_add(other.sessions_active),
            ticks_submitted: self.ticks_submitted.saturating_add(other.ticks_submitted),
            ticks_processed: self.ticks_processed.saturating_add(other.ticks_processed),
            alarms_raised: self.alarms_raised.saturating_add(other.alarms_raised),
            degraded_ticks: self.degraded_ticks.saturating_add(other.degraded_ticks),
            queue_depth_high_water: self
                .queue_depth_high_water
                .max(other.queue_depth_high_water),
            alloc_free_ticks: self.alloc_free_ticks.saturating_add(other.alloc_free_ticks),
            batched_deadline_queries: self
                .batched_deadline_queries
                .saturating_add(other.batched_deadline_queries),
            sessions_replicated: self
                .sessions_replicated
                .saturating_add(other.sessions_replicated),
            failovers: self.failovers.saturating_add(other.failovers),
            // Like queue_depth_high_water: per-shard high-waters are
            // from unrelated instants, so the max is the only honest
            // aggregate.
            replication_lag_hwm: self.replication_lag_hwm.max(other.replication_lag_hwm),
            batch_ticks: self.batch_ticks.saturating_add(other.batch_ticks),
            // A lane width some batched step really reached; sums
            // would claim widths that never existed.
            batch_sessions_hwm: self.batch_sessions_hwm.max(other.batch_sessions_hwm),
            scalar_fallback_ticks: self
                .scalar_fallback_ticks
                .saturating_add(other.scalar_fallback_ticks),
            recalibrations: self.recalibrations.saturating_add(other.recalibrations),
            log_latency: self.log_latency.merged(&other.log_latency),
            detect_latency: self.detect_latency.merged(&other.detect_latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_double() {
        assert_eq!(bucket_bound_ns(0), 128);
        assert_eq!(bucket_bound_ns(1), 256);
        assert_eq!(bucket_bound_ns(10), 128 << 10);
    }

    #[test]
    fn bucket_index_routes_oversized_samples_to_overflow() {
        assert_eq!(bucket_index(1), Some(0));
        assert_eq!(bucket_index(128), Some(0));
        assert_eq!(bucket_index(129), Some(1));
        let last = bucket_bound_ns(LATENCY_BUCKETS - 1);
        assert_eq!(bucket_index(last), Some(LATENCY_BUCKETS - 1));
        assert_eq!(bucket_index(last + 1), None);
        assert_eq!(bucket_index(u64::MAX), None);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let hist = HistInner::default();
        hist.record(Duration::from_nanos(100));
        hist.record(Duration::from_nanos(300));
        hist.record(Duration::from_micros(10));
        let snap = hist.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_ns, 100 + 300 + 10_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 3);
        assert!((snap.mean_ns() - (10_400.0 / 3.0)).abs() < 1e-9);
        // Median bound: two of three samples are <= 512 ns.
        assert_eq!(snap.quantile_bound_ns(0.5), Some(512));
        assert_eq!(snap.quantile_bound_ns(1.0), Some(16384));
    }

    #[test]
    fn saturated_histogram_stays_honest() {
        // Three fast samples plus one far beyond the last bucket
        // bound (~1.07 s): the big sample must land in the overflow
        // bucket, keep the mean exact, and poison only the quantiles
        // that actually reach into the overflow region.
        let hist = HistInner::default();
        let last_bound = bucket_bound_ns(LATENCY_BUCKETS - 1);
        for _ in 0..3 {
            hist.record(Duration::from_nanos(100));
        }
        hist.record(Duration::from_secs(10));
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 3);
        // Mean uses the actual 10 s value, not a clamped bound.
        let expected_mean = (3.0 * 100.0 + 10e9) / 4.0;
        assert!((snap.mean_ns() - expected_mean).abs() < 1e-6);
        // 75% of samples fall in bucket 0; the p75 bound is finite.
        assert_eq!(snap.quantile_bound_ns(0.75), Some(128));
        // The max reaches into overflow: no finite bound is truthful.
        assert_eq!(snap.quantile_bound_ns(1.0), None);
        // Sanity: the overflow threshold itself still counts as finite.
        let edge = HistInner::default();
        edge.record(Duration::from_nanos(last_bound));
        assert_eq!(edge.snapshot().overflow, 0);
        assert_eq!(edge.snapshot().quantile_bound_ns(1.0), Some(last_bound));
    }

    #[test]
    fn zero_quantile_reports_first_nonempty_bucket_or_none() {
        // Samples only in bucket 3 (129*2^2 < 1500 <= 128*2^4): the
        // minimum's bound is bucket 3's, not bucket 0's.
        let hist = HistInner::default();
        hist.record(Duration::from_nanos(1500));
        hist.record(Duration::from_nanos(1600));
        let snap = hist.snapshot();
        assert_eq!(snap.quantile_bound_ns(0.0), Some(2048));
        // Every sample in overflow: no finite bound exists for any
        // quantile, q = 0 included (the regression: it used to report
        // Some(128) off the empty bucket 0).
        let over = HistInner::default();
        over.record(Duration::from_secs(10));
        let snap = over.snapshot();
        assert_eq!(snap.quantile_bound_ns(0.0), None);
        assert_eq!(snap.quantile_bound_ns(1.0), None);
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let snap = HistInner::default().snapshot();
        assert_eq!(snap.quantile_bound_ns(0.5), None);
        assert_eq!(snap.mean_ns(), 0.0);
    }

    #[test]
    fn record_n_equals_n_identical_records() {
        let (batched, looped) = (HistInner::default(), HistInner::default());
        batched.record_n(Duration::from_nanos(700), 5);
        batched.record_n(Duration::from_secs(10), 2); // overflow bucket
        batched.record_n(Duration::from_nanos(1), 0); // no-op
        for _ in 0..5 {
            looped.record(Duration::from_nanos(700));
        }
        for _ in 0..2 {
            looped.record(Duration::from_secs(10));
        }
        assert_eq!(batched.snapshot(), looped.snapshot());
    }

    #[test]
    fn batch_counters_merge_by_sum_and_hwm_by_max() {
        let (a, b) = (MetricsInner::default(), MetricsInner::default());
        a.batch_ticks.store(100, Ordering::Relaxed);
        a.batch_sessions_hwm.store(16, Ordering::Relaxed);
        a.scalar_fallback_ticks.store(3, Ordering::Relaxed);
        a.recalibrations.store(2, Ordering::Relaxed);
        b.batch_ticks.store(50, Ordering::Relaxed);
        b.batch_sessions_hwm.store(9, Ordering::Relaxed);
        b.scalar_fallback_ticks.store(7, Ordering::Relaxed);
        b.recalibrations.store(3, Ordering::Relaxed);
        let merged = a.snapshot().merged(&b.snapshot());
        assert_eq!(merged.batch_ticks, 150);
        assert_eq!(merged.batch_sessions_hwm, 16, "lane width is a high-water");
        assert_eq!(merged.scalar_fallback_ticks, 10);
        assert_eq!(merged.recalibrations, 5, "model swaps sum across shards");
        assert_eq!(RuntimeMetrics::zero().merged(&merged), merged);
    }

    #[test]
    fn histogram_merge_equals_single_histogram_of_both_sample_sets() {
        let (a, b, both) = (
            HistInner::default(),
            HistInner::default(),
            HistInner::default(),
        );
        let left = [100u64, 1_500, 40_000];
        let right = [90u64, 300, 10_000_000_000]; // last one overflows
        for &ns in &left {
            a.record(Duration::from_nanos(ns));
            both.record(Duration::from_nanos(ns));
        }
        for &ns in &right {
            b.record(Duration::from_nanos(ns));
            both.record(Duration::from_nanos(ns));
        }
        let merged = a.snapshot().merged(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        // Merging with an empty histogram is the identity.
        assert_eq!(merged.merged(&HistInner::default().snapshot()), merged);
    }

    #[test]
    fn runtime_metrics_merge_sums_counters_and_maxes_high_water() {
        let (a, b) = (MetricsInner::default(), MetricsInner::default());
        a.sessions_active.store(3, Ordering::Relaxed);
        a.ticks_submitted.store(100, Ordering::Relaxed);
        a.ticks_processed.store(90, Ordering::Relaxed);
        a.queue_depth_high_water.store(7, Ordering::Relaxed);
        a.sessions_replicated.store(11, Ordering::Relaxed);
        a.failovers.store(1, Ordering::Relaxed);
        a.replication_lag_hwm.store(4, Ordering::Relaxed);
        a.log_latency.record(Duration::from_nanos(200));
        b.sessions_active.store(5, Ordering::Relaxed);
        b.ticks_submitted.store(40, Ordering::Relaxed);
        b.ticks_processed.store(40, Ordering::Relaxed);
        b.queue_depth_high_water.store(12, Ordering::Relaxed);
        b.alarms_raised.store(2, Ordering::Relaxed);
        b.sessions_replicated.store(9, Ordering::Relaxed);
        b.replication_lag_hwm.store(2, Ordering::Relaxed);
        let merged = a.snapshot().merged(&b.snapshot());
        assert_eq!(merged.sessions_active, 8);
        assert_eq!(merged.ticks_submitted, 140);
        assert_eq!(merged.backlog(), 10);
        assert_eq!(merged.alarms_raised, 2);
        assert_eq!(merged.queue_depth_high_water, 12);
        // Replication counters: totals sum, the lag high-water maxes
        // (two shards' worst backlogs are from unrelated instants).
        assert_eq!(merged.sessions_replicated, 20);
        assert_eq!(merged.failovers, 1);
        assert_eq!(merged.replication_lag_hwm, 4);
        assert_eq!(merged.log_latency.count, 1);
        // zero() is the fold identity and merge is symmetric.
        assert_eq!(RuntimeMetrics::zero().merged(&merged), merged);
        assert_eq!(b.snapshot().merged(&a.snapshot()), merged);
    }

    #[test]
    fn snapshot_copies_counters() {
        let inner = MetricsInner::default();
        inner.ticks_submitted.fetch_add(5, Ordering::Relaxed);
        inner.ticks_processed.fetch_add(3, Ordering::Relaxed);
        let snap = inner.snapshot();
        assert_eq!(snap.ticks_submitted, 5);
        assert_eq!(snap.backlog(), 2);
    }
}
