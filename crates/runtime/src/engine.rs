use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, Weak};
use std::time::Instant;

use awsad_core::{
    AdaptiveDetector, AdaptiveStep, BatchLane, BatchPlan, DataLogger, DetectorSnapshot,
};
use awsad_linalg::{Matrix, Vector};
use awsad_reach::CacheStats;

use crate::metrics::{MetricsInner, RuntimeMetrics};
use crate::pool::WorkerPool;

/// What the engine does when a session's input queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer in [`SessionHandle::submit`] until the
    /// session's worker drains a slot. Nothing is ever degraded; the
    /// producer's own rate is throttled.
    #[default]
    Block,
    /// Accept the tick immediately but mark it **degraded**: it is
    /// still logged (the residual stream must stay gap-free) and still
    /// checked against `τ`, but at the maximum window `w_m` with no
    /// reachability query — the cheap, conservative-for-false-positives
    /// fallback of [`AdaptiveDetector::step_degraded`]. The queue can
    /// transiently exceed its capacity by the burst size; it shrinks
    /// back as the cheap path drains faster.
    Degrade,
}

/// Engine construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads shared by all sessions (`0` = one per CPU).
    pub workers: usize,
    /// Per-session input-queue capacity (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// What to do when a session queue is full.
    pub backpressure: BackpressurePolicy,
    /// How many queued ticks one drain cycle pops and processes per
    /// session under a single state-lock acquisition (clamped to ≥ 1).
    /// Bounds both the lock hold time and the size of the coalesced
    /// deadline-cache prewarm (scalar mode) or the per-session share
    /// of a cross-session batch (batch mode).
    pub drain_batch: usize,
    /// Opt into the cross-session batched drain: instead of one drain
    /// job per session, a single mega-drain gathers waiting ticks from
    /// *every* session, groups sessions whose detectors share a plant
    /// model and window geometry, and steps each group through
    /// [`awsad_core::BatchPlan`] — structure-of-arrays kernels that
    /// amortize the reachability walk and window means across lanes.
    /// Sessions that cannot batch (quantized deadline caches) and
    /// degraded ticks fall back to the scalar path automatically.
    /// Outcomes are bit-identical to the per-session path either way.
    pub cross_session_batch: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            drain_batch: 32,
            cross_session_batch: false,
        }
    }
}

/// One sensor measurement delivered to a session.
#[derive(Debug, Clone, PartialEq)]
pub struct Tick {
    /// The state estimate `x̄_t` (after any sensor attack/noise).
    pub estimate: Vector,
    /// The control input `u_t` applied at this step.
    pub input: Vector,
}

/// Identifier of a detection session, unique within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// The detection result for one processed tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickOutcome {
    /// The session the tick belonged to.
    pub session: SessionId,
    /// Zero-based submission index within the session (outcomes arrive
    /// in exactly this order — per-session FIFO).
    pub seq: u64,
    /// Whether this tick took the degraded overload path.
    pub degraded: bool,
    /// The adaptive detector's full step outcome.
    pub step: AdaptiveStep,
}

/// The full state of one engine session, sufficient to recreate it —
/// on this engine or another one — with an unbroken outcome stream:
/// the detector/logger snapshot plus the session's submission
/// sequence counter.
///
/// Produced by [`SessionHandle::snapshot`], consumed by
/// [`DetectionEngine::restore_session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Detector adaptation state and retained logger window.
    pub state: DetectorSnapshot,
    /// The `seq` the next submitted tick will be assigned, so restored
    /// sessions continue the per-session FIFO numbering without a gap.
    pub next_seq: u64,
    /// Strictly increasing snapshot counter for this session lineage:
    /// each [`SessionHandle::snapshot`] call returns the next
    /// generation, and a session restored from a snapshot continues
    /// counting from that snapshot's generation. Two snapshots of the
    /// same lineage are therefore totally ordered — the replication
    /// layer uses this to reject a stale replica that arrives after a
    /// newer one (generations never move backwards).
    pub generation: u64,
}

/// Error returned by [`SessionHandle::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The session was closed; the tick was not accepted.
    SessionClosed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::SessionClosed => write!(f, "session is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Locks a mutex, recovering the guard when the lock is poisoned.
///
/// Every engine mutex guards state the panic-containment path leaves
/// consistent on purpose (a panicking session is failed and cleared
/// before anything observes it half-stepped), so poisoning carries no
/// information here — propagating it is what used to turn one
/// session's panic into an engine-wide panic cascade, where every
/// later `submit`/`drain`/`close` died on `.expect("lock")`.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait with the same poison recovery as [`lock_recover`].
fn wait_recover<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cond.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

struct QueuedTick {
    seq: u64,
    degraded: bool,
    tick: Tick,
}

struct Inbox {
    ticks: VecDeque<QueuedTick>,
    /// Whether a drain job for this session is queued or running on
    /// the pool. At most one at a time — this is what serializes a
    /// session's ticks (per-session FIFO) while different sessions
    /// drain concurrently.
    scheduled: bool,
    closed: bool,
    next_seq: u64,
    /// Snapshot generations handed out so far (see
    /// [`SessionSnapshot::generation`]); seeded from the restoring
    /// snapshot so the lineage's counter survives migration.
    generation: u64,
}

struct SessionState {
    logger: DataLogger,
    detector: AdaptiveDetector,
    outcomes: mpsc::Sender<TickOutcome>,
}

struct SessionSlot {
    id: SessionId,
    engine: Arc<EngineShared>,
    inbox: Mutex<Inbox>,
    /// Signalled when a queue slot frees up (Block producers wait) and
    /// on close.
    space: Condvar,
    state: Mutex<SessionState>,
    /// Batch-grouping key: sessions with equal keys share an estimator
    /// walk fingerprint, seeding radius and window clamp range, so the
    /// mega-drain may step them through one [`BatchPlan`] group.
    /// `None` means this session always takes the scalar path (batch
    /// mode off, or a quantized deadline cache whose miss semantics
    /// the batched walk cannot reproduce). Behind a mutex because a
    /// mid-stream recalibration swaps the estimator fingerprint; it is
    /// only written while the session is quiescent and unclaimed
    /// (inbox lock held, queue empty, `scheduled` false), and the
    /// mega-drain reads it only after claiming the session, so a read
    /// taken under either discipline is stable for the whole drain.
    batch_key: Mutex<Option<u64>>,
    /// Set when a panic escaped this session's detector or logger
    /// (e.g. a wrong-dimension tick tripping [`DataLogger::record`]'s
    /// assert). A failed session is closed, its queued ticks are
    /// dropped (with the pending count refunded) and it is never
    /// stepped again — the failure is contained to this session
    /// instead of poisoning the engine's locks.
    failed: AtomicBool,
}

impl Drop for SessionSlot {
    fn drop(&mut self) {
        // In batch mode the registry holds only weak references, so a
        // handle dropped with ticks still queued can take the slot —
        // and the ticks — down before any drain claims them. Refund
        // the pending count so `DetectionEngine::drain` still
        // terminates (the ticks are gone; their outcomes channel died
        // with the handle anyway).
        let leftover = self
            .inbox
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .ticks
            .len() as u64;
        if leftover > 0 {
            let mut pending = lock_recover(&self.engine.pending);
            *pending = pending.saturating_sub(leftover);
            if *pending == 0 {
                self.engine.idle.notify_all();
            }
        }
    }
}

struct EngineShared {
    config: EngineConfig,
    metrics: MetricsInner,
    /// Ticks submitted and not yet fully processed, across all
    /// sessions; guards the idle condition for [`DetectionEngine::drain`].
    pending: Mutex<u64>,
    idle: Condvar,
    next_id: Mutex<u64>,
    /// Optional hook invoked on a pool worker after every drained
    /// batch's outcomes have been sent. Lets a readiness-based caller
    /// (an event loop that must never block on a channel) get a
    /// doorbell — e.g. a byte written to a wake pipe — instead of
    /// parking in `recv`. Set once; `get` on the hot path is a plain
    /// atomic load.
    drain_notifier: OnceLock<Box<dyn Fn() + Send + Sync>>,
    /// Batch mode only: every session ever added, for the mega-drain's
    /// gather pass. Weak so closed-and-dropped sessions don't leak
    /// (dead entries are pruned on each gather).
    sessions: Mutex<Vec<Weak<SessionSlot>>>,
    /// Batch mode only: whether a mega-drain job is queued or running.
    /// At most one at a time — it is the cross-session analogue of
    /// `Inbox::scheduled`.
    batch_scheduled: Mutex<bool>,
}

/// An online multi-session detection engine.
///
/// Each **session** owns one plant instance's detection state — a
/// [`DataLogger`] plus an [`AdaptiveDetector`] (optionally with a
/// deadline cache installed) — and receives measurement [`Tick`]s
/// through a bounded queue. A fixed [`WorkerPool`] shared by all
/// sessions drains the queues: sessions are independent and process
/// concurrently, while ticks *within* a session are strictly
/// serialized in submission order, so every session produces exactly
/// the [`AdaptiveStep`] sequence the detector would produce standalone.
///
/// Overload behavior is configurable per engine via
/// [`BackpressurePolicy`]. Built-in [`RuntimeMetrics`] counters track
/// throughput, alarms, queue high-water and per-stage latency at
/// negligible cost (relaxed atomics).
///
/// # Example
///
/// ```
/// use awsad_core::{AdaptiveDetector, DataLogger, DetectorConfig};
/// use awsad_linalg::{Matrix, Vector};
/// use awsad_lti::LtiSystem;
/// use awsad_reach::{DeadlineEstimator, ReachConfig};
/// use awsad_runtime::{DetectionEngine, EngineConfig, Tick};
/// use awsad_sets::BoxSet;
///
/// // Integrator plant x' = x + u, |u| <= 1, safe |x| <= 5.
/// let sys = LtiSystem::new_discrete_fully_observable(
///     Matrix::identity(1),
///     Matrix::from_rows(&[&[1.0]]).unwrap(),
///     0.02,
/// )
/// .unwrap();
/// let reach = ReachConfig::new(
///     BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
///     0.0,
///     BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap(),
///     10,
/// )
/// .unwrap();
/// let est = DeadlineEstimator::new(sys.a(), sys.b(), reach).unwrap();
/// let cfg = DetectorConfig::new(Vector::from_slice(&[0.5]), 10).unwrap();
/// let detector = AdaptiveDetector::new(cfg, est).unwrap();
/// let logger = DataLogger::new(sys, 10);
///
/// let engine = DetectionEngine::new(EngineConfig::default());
/// let (session, outcomes) = engine.add_session(logger, detector);
/// session
///     .submit(Tick {
///         estimate: Vector::from_slice(&[0.0]),
///         input: Vector::from_slice(&[0.0]),
///     })
///     .unwrap();
/// engine.drain();
/// let outcome = outcomes.try_recv().unwrap();
/// assert_eq!(outcome.seq, 0);
/// assert_eq!(outcome.step.window, 5);
/// assert_eq!(engine.metrics().ticks_processed, 1);
/// ```
#[derive(Debug)]
pub struct DetectionEngine {
    pool: Arc<WorkerPool>,
    shared: Arc<EngineShared>,
}

impl std::fmt::Debug for EngineShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineShared")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl DetectionEngine {
    /// Creates an engine with its own worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let config = EngineConfig {
            queue_capacity: config.queue_capacity.max(1),
            drain_batch: config.drain_batch.max(1),
            ..config
        };
        let pool = Arc::new(WorkerPool::new(config.workers));
        DetectionEngine {
            pool,
            shared: Arc::new(EngineShared {
                config,
                metrics: MetricsInner::default(),
                pending: Mutex::new(0),
                idle: Condvar::new(),
                next_id: Mutex::new(0),
                drain_notifier: OnceLock::new(),
                sessions: Mutex::new(Vec::new()),
                batch_scheduled: Mutex::new(false),
            }),
        }
    }

    /// The engine configuration in effect (capacity already clamped).
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// Installs a callback invoked on a pool worker after each drained
    /// batch of outcomes has been sent (at-least-once per batch; may
    /// coalesce nothing — callers must treat it as a doorbell and
    /// re-check their receivers). Intended for event-loop hosts that
    /// cannot block in `recv`: the callback typically writes one byte
    /// to a wake pipe registered with the host's poller.
    ///
    /// The notifier can be set only once per engine; later calls
    /// return `false` and leave the original in place. It must not
    /// block and must not call back into the engine.
    pub fn set_drain_notifier(&self, notify: impl Fn() + Send + Sync + 'static) -> bool {
        self.shared.drain_notifier.set(Box::new(notify)).is_ok()
    }

    /// The number of pool worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Opens a new detection session around a logger/detector pair and
    /// returns its handle plus the receiving end of its outcome
    /// stream.
    ///
    /// Install a deadline cache on the detector *before* adding it
    /// (see [`AdaptiveDetector::set_deadline_cache`]) to memoize
    /// reachability queries; with the exact cache configuration the
    /// outcome stream is bit-identical either way.
    pub fn add_session(
        &self,
        logger: DataLogger,
        detector: AdaptiveDetector,
    ) -> (SessionHandle, mpsc::Receiver<TickOutcome>) {
        self.add_session_with(logger, detector, 0, 0)
    }

    /// Opens a session that resumes from `snapshot`: the detector and
    /// logger (fresh instances built from the same configuration the
    /// snapshot was taken under) are rewound to the snapshotted state
    /// and the new session's outcome `seq` continues from the
    /// snapshot's counter, so the combined pre/post-snapshot outcome
    /// stream is indistinguishable from an uninterrupted session.
    ///
    /// # Errors
    ///
    /// [`awsad_core::DetectError::InvalidSnapshot`] when the snapshot
    /// fails validation against the supplied detector/logger pair (see
    /// [`AdaptiveDetector::restore`]); no session is created then.
    pub fn restore_session(
        &self,
        mut logger: DataLogger,
        mut detector: AdaptiveDetector,
        snapshot: &SessionSnapshot,
    ) -> awsad_core::Result<(SessionHandle, mpsc::Receiver<TickOutcome>)> {
        detector.restore(&mut logger, &snapshot.state)?;
        Ok(self.add_session_with(logger, detector, snapshot.next_seq, snapshot.generation))
    }

    fn add_session_with(
        &self,
        logger: DataLogger,
        detector: AdaptiveDetector,
        next_seq: u64,
        generation: u64,
    ) -> (SessionHandle, mpsc::Receiver<TickOutcome>) {
        let id = {
            let mut next = lock_recover(&self.shared.next_id);
            let id = SessionId(*next);
            *next += 1;
            id
        };
        let (tx, rx) = mpsc::channel();
        let batch_key = if self.shared.config.cross_session_batch && detector.batch_supported() {
            Some(batch_key_of(&detector))
        } else {
            None
        };
        let slot = Arc::new(SessionSlot {
            id,
            engine: Arc::clone(&self.shared),
            inbox: Mutex::new(Inbox {
                ticks: VecDeque::new(),
                scheduled: false,
                closed: false,
                next_seq,
                generation,
            }),
            space: Condvar::new(),
            state: Mutex::new(SessionState {
                logger,
                detector,
                outcomes: tx,
            }),
            batch_key: Mutex::new(batch_key),
            failed: AtomicBool::new(false),
        });
        if self.shared.config.cross_session_batch {
            lock_recover(&self.shared.sessions).push(Arc::downgrade(&slot));
        }
        self.shared
            .metrics
            .sessions_active
            .fetch_add(1, Ordering::Relaxed);
        (
            SessionHandle {
                slot,
                pool: Arc::clone(&self.pool),
            },
            rx,
        )
    }

    /// A point-in-time copy of the runtime counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        self.shared.metrics.snapshot()
    }

    /// Records one session snapshot accepted into this node's replica
    /// store, with the replication backlog observed at that moment
    /// (`lag` = snapshots queued on the egress side but not yet
    /// acknowledged). Bumps `sessions_replicated` and raises
    /// `replication_lag_hwm` to `lag` if it is a new high-water.
    ///
    /// The engine itself never replicates; this is the hook the
    /// serving layers use so replication health aggregates through
    /// [`RuntimeMetrics::merged`] exactly like every other counter.
    pub fn record_replication(&self, lag: u64) {
        self.shared
            .metrics
            .sessions_replicated
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .metrics
            .replication_lag_hwm
            .fetch_max(lag, Ordering::Relaxed);
    }

    /// Records one replica promotion (a stored backup snapshot turned
    /// into a live session after its primary died). See
    /// [`DetectionEngine::record_replication`] for why this lives on
    /// the engine.
    pub fn record_failover(&self) {
        self.shared
            .metrics
            .failovers
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Blocks until every tick submitted so far has been processed.
    pub fn drain(&self) {
        let mut pending = lock_recover(&self.shared.pending);
        while *pending > 0 {
            pending = wait_recover(&self.shared.idle, pending);
        }
    }
}

/// The producer side of one detection session.
///
/// Dropping the handle closes the session (already-queued ticks still
/// drain; their outcomes remain readable from the receiver).
#[derive(Debug)]
pub struct SessionHandle {
    slot: Arc<SessionSlot>,
    pool: Arc<WorkerPool>,
}

impl std::fmt::Debug for SessionSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionSlot")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// The session's engine-unique id.
    pub fn id(&self) -> SessionId {
        self.slot.id
    }

    /// Submits one measurement tick.
    ///
    /// Under [`BackpressurePolicy::Block`] this blocks while the
    /// session queue is full; under [`BackpressurePolicy::Degrade`] it
    /// returns immediately, flagging over-capacity ticks for the
    /// degraded path.
    ///
    /// # Errors
    ///
    /// [`SubmitError::SessionClosed`] after [`SessionHandle::close`]
    /// (including when the queue drains to make space only after the
    /// session was closed underneath a blocked producer).
    pub fn submit(&self, tick: Tick) -> Result<(), SubmitError> {
        let engine = &self.slot.engine;
        let capacity = engine.config.queue_capacity;
        let mut inbox = lock_recover(&self.slot.inbox);
        if inbox.closed {
            return Err(SubmitError::SessionClosed);
        }
        let mut degraded = false;
        match engine.config.backpressure {
            BackpressurePolicy::Block => {
                while inbox.ticks.len() >= capacity {
                    inbox = wait_recover(&self.slot.space, inbox);
                    if inbox.closed {
                        return Err(SubmitError::SessionClosed);
                    }
                }
            }
            BackpressurePolicy::Degrade => {
                degraded = inbox.ticks.len() >= capacity;
            }
        }
        let seq = inbox.next_seq;
        inbox.next_seq += 1;
        // The pending count must rise before the tick becomes visible
        // to a running drain (which decrements after processing), so
        // this happens under the inbox lock, ahead of the push.
        {
            let mut pending = lock_recover(&engine.pending);
            *pending += 1;
            engine
                .metrics
                .queue_depth_high_water
                .fetch_max(*pending, Ordering::Relaxed);
        }
        engine
            .metrics
            .ticks_submitted
            .fetch_add(1, Ordering::Relaxed);
        inbox.ticks.push_back(QueuedTick {
            seq,
            degraded,
            tick,
        });
        self.schedule_drain(inbox);
        Ok(())
    }

    /// Submits one tick pre-flagged for the degraded path, bypassing
    /// queue-capacity accounting.
    ///
    /// Whether a given tick lands over capacity under
    /// [`BackpressurePolicy::Degrade`] depends on drain timing, which
    /// makes organic overload inherently racy. Tests and differential
    /// harnesses that need a *deterministic* degrade pattern use this
    /// to force exactly which ticks take the degraded path; the
    /// resulting outcome stream is the one an overloaded run would
    /// produce for that same pattern.
    ///
    /// # Errors
    ///
    /// [`SubmitError::SessionClosed`] after [`SessionHandle::close`].
    pub fn submit_degraded(&self, tick: Tick) -> Result<(), SubmitError> {
        let engine = &self.slot.engine;
        let mut inbox = lock_recover(&self.slot.inbox);
        if inbox.closed {
            return Err(SubmitError::SessionClosed);
        }
        let seq = inbox.next_seq;
        inbox.next_seq += 1;
        {
            let mut pending = lock_recover(&engine.pending);
            *pending += 1;
            engine
                .metrics
                .queue_depth_high_water
                .fetch_max(*pending, Ordering::Relaxed);
        }
        engine
            .metrics
            .ticks_submitted
            .fetch_add(1, Ordering::Relaxed);
        inbox.ticks.push_back(QueuedTick {
            seq,
            degraded: true,
            tick,
        });
        self.schedule_drain(inbox);
        Ok(())
    }

    /// Queues whatever drain the engine mode calls for after a push:
    /// scalar mode schedules this session's own drain (serialized by
    /// `Inbox::scheduled`), batch mode rings the engine-wide
    /// mega-drain (serialized by `EngineShared::batch_scheduled` —
    /// per-session `scheduled` is left alone; the mega-drain uses it
    /// as its claim marker during gather).
    fn schedule_drain(&self, mut inbox: std::sync::MutexGuard<'_, Inbox>) {
        let engine = &self.slot.engine;
        if engine.config.cross_session_batch {
            drop(inbox);
            let mut scheduled = lock_recover(&engine.batch_scheduled);
            if !*scheduled {
                *scheduled = true;
                let shared = Arc::clone(engine);
                let pool = Arc::clone(&self.pool);
                let pool2 = Arc::clone(&self.pool);
                pool.execute(move || mega_drain(&shared, &pool2));
            }
        } else {
            let schedule = !inbox.scheduled;
            inbox.scheduled = true;
            drop(inbox);
            if schedule {
                let slot = Arc::clone(&self.slot);
                self.pool.execute(move || drain_session(&slot));
            }
        }
    }

    /// Closes the session: further submits fail, queued ticks still
    /// drain. Idempotent.
    pub fn close(&self) {
        let mut inbox = lock_recover(&self.slot.inbox);
        if !inbox.closed {
            inbox.closed = true;
            self.slot
                .engine
                .metrics
                .sessions_active
                .fetch_sub(1, Ordering::Relaxed);
        }
        drop(inbox);
        // Wake producers blocked on a full queue so they observe the
        // close instead of waiting forever.
        self.slot.space.notify_all();
    }

    /// Captures the session's full state as a [`SessionSnapshot`].
    ///
    /// Blocks until every tick already submitted to this session has
    /// been processed (so the snapshot is a clean cut between two
    /// ticks, never mid-batch), then copies the detector and logger
    /// state plus the session's sequence counter. Ticks submitted
    /// concurrently with the snapshot land on one side of the cut or
    /// the other — callers wanting a deterministic cut should simply
    /// not submit while snapshotting.
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut inbox = lock_recover(&self.slot.inbox);
        while !inbox.ticks.is_empty() || inbox.scheduled {
            inbox = wait_recover(&self.slot.space, inbox);
        }
        // No drain can be running (scheduled is false) and none can
        // start (that requires the inbox lock we hold), so the state
        // lock is immediately available and the lock order here
        // (inbox → state) cannot deadlock against drain_session's
        // state → inbox.
        let state = lock_recover(&self.slot.state);
        inbox.generation += 1;
        SessionSnapshot {
            state: state.detector.snapshot(&state.logger),
            next_seq: inbox.next_seq,
            generation: inbox.generation,
        }
    }

    /// Swaps the session's plant model mid-stream (accepted model
    /// drift): rebuilds the deadline estimator around `(a, b)`, swaps
    /// the logger's prediction model, and clears any installed
    /// deadline cache — see [`AdaptiveDetector::recalibrate`] for the
    /// exact semantics. Returns the session's new recalibration count.
    ///
    /// Like [`SessionHandle::snapshot`], this blocks until every tick
    /// already submitted has been processed, so the swap is a clean
    /// cut between two ticks: every outcome before it was stepped
    /// under the old model, every outcome after it under the new one.
    /// Not a single queued tick is dropped or stepped twice. Callers
    /// wanting a deterministic cut should not submit concurrently.
    ///
    /// # Errors
    ///
    /// [`awsad_core::DetectError::InvalidRecalibration`] when the
    /// model is malformed for this session (wrong dimensions,
    /// non-finite entries, or a plant no deadline estimator accepts);
    /// the session is left exactly as it was.
    pub fn recalibrate(&self, a: &Matrix, b: &Matrix) -> awsad_core::Result<u64> {
        let inbox = {
            let mut inbox = lock_recover(&self.slot.inbox);
            while !inbox.ticks.is_empty() || inbox.scheduled {
                inbox = wait_recover(&self.slot.space, inbox);
            }
            inbox
        };
        // Same lock order and reasoning as `snapshot`: no drain is
        // running or can start while we hold the inbox lock, so the
        // state lock is immediately available and deadlock-free.
        let mut state = lock_recover(&self.slot.state);
        let SessionState {
            logger, detector, ..
        } = &mut *state;
        let count = detector.recalibrate(logger, a, b)?;
        // The estimator fingerprint changed with the model, so the
        // batch-group key must follow — still under the inbox lock,
        // before any drain can observe the new model.
        if self.slot.engine.config.cross_session_batch {
            *lock_recover(&self.slot.batch_key) =
                detector.batch_supported().then(|| batch_key_of(detector));
        }
        self.slot
            .engine
            .metrics
            .recalibrations
            .fetch_add(1, Ordering::Relaxed);
        drop(state);
        drop(inbox);
        Ok(count)
    }

    /// Hit/miss counters of the session detector's deadline cache
    /// (`None` when no cache is installed).
    ///
    /// Briefly locks the session state; prefer calling between bursts.
    pub fn deadline_cache_stats(&self) -> Option<CacheStats> {
        lock_recover(&self.slot.state)
            .detector
            .deadline_cache_stats()
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.close();
    }
}

/// Batch-grouping key: FNV-1a over everything that must match for two
/// sessions to share a [`BatchPlan`] group — the estimator's walk
/// fingerprint (plant model, horizon, admissible geometry), the
/// seeding radius, and the window clamp range. Equal keys make the
/// batched walk bit-identical to each lane's own scalar walk.
fn batch_key_of(detector: &AdaptiveDetector) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for v in [
        detector.estimator().fingerprint(),
        detector.initial_radius().to_bits(),
        detector.config().min_window() as u64,
        detector.config().max_window() as u64,
    ] {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    h
}

/// Drains one session's inbox on a pool worker (scalar mode). At most
/// one instance per session runs at a time (guarded by
/// `Inbox::scheduled`), so outcomes leave in submission order.
///
/// Ticks are popped and processed in batches of up to
/// [`EngineConfig::drain_batch`]: the session state lock is taken
/// *first* and the inbox popped under it, so a stalled session stalls
/// the pop too (queued ticks keep counting against the queue capacity
/// until the session can actually run).
fn drain_session(slot: &SessionSlot) {
    let drain_batch = slot.engine.config.drain_batch;
    let mut batch: Vec<QueuedTick> = Vec::with_capacity(drain_batch);
    loop {
        let mut state = lock_recover(&slot.state);
        batch.clear();
        {
            let mut inbox = lock_recover(&slot.inbox);
            while batch.len() < drain_batch {
                match inbox.ticks.pop_front() {
                    Some(t) => batch.push(t),
                    None => break,
                }
            }
            if batch.is_empty() {
                inbox.scheduled = false;
                drop(inbox);
                // Snapshot takers wait for the quiescent state this
                // transition just established.
                slot.space.notify_all();
                return;
            }
        }
        // Slots freed up: wake every blocked producer (a whole batch
        // of capacity may have opened at once).
        slot.space.notify_all();

        let engine = &slot.engine;
        let processed = process_batch_scalar(slot, &mut state, &mut batch).0;
        drop(state);

        let mut pending = lock_recover(&engine.pending);
        *pending -= processed;
        if *pending == 0 {
            engine.idle.notify_all();
        }
        drop(pending);

        // Ring the host's doorbell after the batch's outcomes are
        // visible on their channels (and after `pending` has been
        // published, so a host that polls `metrics()` on wake sees a
        // consistent backlog).
        if let Some(notify) = engine.drain_notifier.get() {
            notify();
        }
    }
}

/// Steps one session through an already-popped batch of its ticks on
/// the scalar path — the common core of the per-session drain and the
/// mega-drain's fallback for unbatchable sessions. Updates every
/// metric except the pending count (the callers own that, at
/// different granularities). Returns `(processed, degraded)` counts.
///
/// When the batch carries more than one tick and the detector has a
/// deadline cache, the batch's estimates are prewarmed with one
/// batched reachability walk before the per-tick steps — coalescing
/// what would otherwise be per-tick cache-miss walks. Prewarmed
/// entries are bit-identical to miss-path entries, so outcomes are
/// unchanged.
fn process_batch_scalar(
    slot: &SessionSlot,
    state: &mut SessionState,
    batch: &mut Vec<QueuedTick>,
) -> (u64, u64) {
    let engine = &slot.engine;
    let SessionState {
        logger,
        detector,
        outcomes,
    } = state;

    if batch.len() > 1 && detector.has_deadline_cache() {
        let estimates: Vec<&Vector> = batch
            .iter()
            .filter(|q| !q.degraded)
            .map(|q| &q.tick.estimate)
            .collect();
        if !estimates.is_empty() {
            let inserted = detector.prewarm_deadline_cache(&estimates);
            if inserted > 0 {
                engine
                    .metrics
                    .batched_deadline_queries
                    .fetch_add(inserted as u64, Ordering::Relaxed);
            }
        }
    }

    let processed = batch.len() as u64;
    let mut degraded_ticks = 0u64;
    let mut alarms = 0u64;
    let mut alloc_free = 0u64;
    for queued in batch.drain(..) {
        // A session that panicked earlier in this very batch is
        // failed: its remaining ticks are consumed without stepping
        // (they still count as processed for the pending count).
        if slot.failed.load(Ordering::Relaxed) {
            continue;
        }
        let t0 = Instant::now();
        // Contain a panicking step to this session: the logger assert
        // on a wrong-dimension tick (or any panic inside the detector)
        // must not unwind through the drain — that would poison the
        // engine's locks and cascade the panic into every other
        // session's submit. Catch it, fail this session, move on.
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            logger.record(queued.tick.estimate, queued.tick.input);
            let t1 = Instant::now();
            let step = if queued.degraded {
                detector.step_degraded(logger)
            } else {
                detector.step(logger)
            };
            (step, t1)
        }));
        let Ok((step, t1)) = stepped else {
            fail_session(slot);
            continue;
        };
        let t2 = Instant::now();

        engine.metrics.log_latency.record(t1 - t0);
        engine.metrics.detect_latency.record(t2 - t1);
        if queued.degraded {
            degraded_ticks += 1;
        } else if detector.last_step_was_alloc_free() {
            alloc_free += 1;
        }
        if step.alarm() {
            alarms += 1;
        }

        // The receiver may be gone (caller only wanted metrics).
        let _ = outcomes.send(TickOutcome {
            session: slot.id,
            seq: queued.seq,
            degraded: queued.degraded,
            step,
        });
    }

    engine
        .metrics
        .ticks_processed
        .fetch_add(processed, Ordering::Relaxed);
    if degraded_ticks > 0 {
        engine
            .metrics
            .degraded_ticks
            .fetch_add(degraded_ticks, Ordering::Relaxed);
    }
    if alarms > 0 {
        engine
            .metrics
            .alarms_raised
            .fetch_add(alarms, Ordering::Relaxed);
    }
    if alloc_free > 0 {
        engine
            .metrics
            .alloc_free_ticks
            .fetch_add(alloc_free, Ordering::Relaxed);
    }
    (processed, degraded_ticks)
}

/// Fails one session after a panic escaped its logger/detector step:
/// marks it failed and closed (further submits error with
/// [`SubmitError::SessionClosed`]), drops its queued ticks with the
/// pending count refunded so [`DetectionEngine::drain`] still
/// terminates, and wakes blocked producers and snapshot takers. The
/// session's outcome stream simply ends; every other session keeps
/// running — this is the containment that replaces the old
/// lock-poisoning panic cascade.
fn fail_session(slot: &SessionSlot) {
    slot.failed.store(true, Ordering::Relaxed);
    let mut inbox = lock_recover(&slot.inbox);
    let dropped = inbox.ticks.len() as u64;
    inbox.ticks.clear();
    if !inbox.closed {
        inbox.closed = true;
        slot.engine
            .metrics
            .sessions_active
            .fetch_sub(1, Ordering::Relaxed);
    }
    drop(inbox);
    slot.space.notify_all();
    if dropped > 0 {
        let mut pending = lock_recover(&slot.engine.pending);
        *pending = pending.saturating_sub(dropped);
        if *pending == 0 {
            slot.engine.idle.notify_all();
        }
    }
}

/// Countdown used by the mega-drain to wait for the group tasks it
/// scattered onto spare pool workers.
struct GroupLatch {
    remaining: Mutex<usize>,
    done: Condvar,
}

/// The cross-session batched drain (batch mode's replacement for the
/// per-session [`drain_session`] jobs). At most one runs per engine
/// (guarded by `EngineShared::batch_scheduled`).
///
/// Each round it **gathers** up to [`EngineConfig::drain_batch`]
/// waiting ticks from every registered session (claiming each via
/// `Inbox::scheduled`, exactly like a per-session drain would),
/// groups the claimed sessions by [`SessionSlot::batch_key`],
/// **batch-detects** each group through one [`BatchPlan`] — lock-step
/// across sessions, structure-of-arrays kernels under the hood — and
/// **scatters** whole groups onto spare pool workers when there are
/// any (the gather thread always processes the first group itself, so
/// progress never depends on another worker being free). Unbatchable
/// sessions (`batch_key == None`) and degraded ticks take the scalar
/// path, so every outcome stream is bit-identical to scalar mode.
fn mega_drain(shared: &Arc<EngineShared>, pool: &Arc<WorkerPool>) {
    let drain_batch = shared.config.drain_batch;
    let mut plan = BatchPlan::new();
    loop {
        // Gather: claim a tick batch from every session with work.
        let slots: Vec<Arc<SessionSlot>> = {
            let mut registry = lock_recover(&shared.sessions);
            registry.retain(|weak| weak.strong_count() > 0);
            registry.iter().filter_map(Weak::upgrade).collect()
        };
        let mut gathered: Vec<(Option<u64>, Arc<SessionSlot>, Vec<QueuedTick>)> = Vec::new();
        let mut round_ticks = 0u64;
        for slot in slots {
            let mut inbox = lock_recover(&slot.inbox);
            if inbox.scheduled || inbox.ticks.is_empty() {
                continue;
            }
            let take = inbox.ticks.len().min(drain_batch);
            let batch: Vec<QueuedTick> = inbox.ticks.drain(..take).collect();
            inbox.scheduled = true;
            drop(inbox);
            // Queue slots freed: wake blocked producers.
            slot.space.notify_all();
            // The claim above is what pins the key: a recalibration
            // waits for `scheduled` to clear before rewriting it, so
            // this copy stays valid for the whole round.
            let key = *lock_recover(&slot.batch_key);
            round_ticks += batch.len() as u64;
            gathered.push((key, slot, batch));
        }

        if gathered.is_empty() {
            // A tick is queued only after the pending count rises
            // (both under its session's inbox lock), so pending == 0
            // here proves no session holds unclaimed work and the
            // drain may retire. pending > 0 with an empty gather means
            // a submit is mid-flight (or a dying session is about to
            // refund its ticks) — spin until it lands. Holding the
            // batch_scheduled lock across the check closes the race
            // with a submit that just pushed: either it finds the flag
            // still set (we saw its pending rise and loop again), or
            // we retired first and its schedule attempt starts a fresh
            // drain.
            let mut scheduled = lock_recover(&shared.batch_scheduled);
            let pending = lock_recover(&shared.pending);
            if *pending == 0 {
                *scheduled = false;
                return;
            }
            drop(pending);
            drop(scheduled);
            std::thread::yield_now();
            continue;
        }

        // Group claimed sessions by batch key. `None` sorts first;
        // those sessions are unbatchable, so each becomes its own
        // scalar "group".
        gathered.sort_by_key(|(key, _, _)| *key);
        let mut groups: Vec<Vec<(Arc<SessionSlot>, Vec<QueuedTick>)>> = Vec::new();
        let mut prev_key: Option<Option<u64>> = None;
        for (key, slot, batch) in gathered {
            let split = match prev_key {
                Some(prev) => prev.is_none() || prev != key,
                None => true,
            };
            if split {
                groups.push(Vec::new());
            }
            prev_key = Some(key);
            groups.last_mut().expect("just pushed").push((slot, batch));
        }

        // Scatter: spare workers take whole groups. Never wait on a
        // dispatched task unless another worker exists to run it.
        if groups.len() > 1 && pool.workers() > 1 {
            let latch = Arc::new(GroupLatch {
                remaining: Mutex::new(groups.len() - 1),
                done: Condvar::new(),
            });
            let mut rest = groups.into_iter();
            let mut first = rest.next().expect("non-empty groups");
            for mut group in rest {
                let shared2 = Arc::clone(shared);
                let latch2 = Arc::clone(&latch);
                pool.execute(move || {
                    let mut plan = BatchPlan::new();
                    process_group(&shared2, &mut plan, &mut group);
                    let mut remaining = lock_recover(&latch2.remaining);
                    *remaining -= 1;
                    if *remaining == 0 {
                        latch2.done.notify_all();
                    }
                });
            }
            process_group(shared, &mut plan, &mut first);
            let mut remaining = lock_recover(&latch.remaining);
            while *remaining > 0 {
                remaining = wait_recover(&latch.done, remaining);
            }
        } else {
            for mut group in groups {
                process_group(shared, &mut plan, &mut group);
            }
        }

        let mut pending = lock_recover(&shared.pending);
        *pending -= round_ticks;
        if *pending == 0 {
            shared.idle.notify_all();
        }
        drop(pending);

        // As in scalar mode: doorbell after outcomes and pending are
        // both published.
        if let Some(notify) = shared.drain_notifier.get() {
            notify();
        }
    }
}

/// Releases a mega-drain claim on one session: the batch-mode
/// counterpart of a per-session drain's empty-pop transition.
fn finish_slot(slot: &SessionSlot) {
    let mut inbox = lock_recover(&slot.inbox);
    inbox.scheduled = false;
    drop(inbox);
    // Snapshot takers and blocked producers re-check their conditions.
    slot.space.notify_all();
}

/// Processes one gathered group: scalar sessions one by one, batchable
/// sessions in lock-step through the [`BatchPlan`]. Clears every
/// member's claim on the way out.
fn process_group(
    shared: &EngineShared,
    plan: &mut BatchPlan,
    group: &mut Vec<(Arc<SessionSlot>, Vec<QueuedTick>)>,
) {
    if lock_recover(&group[0].0.batch_key).is_none() {
        for (slot, batch) in group.iter_mut() {
            let mut state = lock_recover(&slot.state);
            let (processed, degraded) = process_batch_scalar(slot, &mut state, batch);
            drop(state);
            shared
                .metrics
                .scalar_fallback_ticks
                .fetch_add(processed - degraded, Ordering::Relaxed);
            finish_slot(slot);
        }
        return;
    }
    let (slots, mut batches): (Vec<_>, Vec<_>) = group.drain(..).unzip();
    process_group_vectorized(shared, plan, &slots, &mut batches);
    for slot in &slots {
        finish_slot(slot);
    }
}

/// Steps a group of same-key sessions in lock-step: tick position 0 of
/// every session forms one [`BatchPlan`] lane set, then position 1,
/// and so on — per-session FIFO holds because each session contributes
/// at most one tick per position, in order. Degraded ticks are stepped
/// scalar (`step_degraded`) inline at their position; everything else
/// rides the structure-of-arrays batch.
///
/// All member state locks are held for the whole group (the gather
/// already claimed every member via `Inbox::scheduled`, so the only
/// other state-lock takers — snapshots, cache stats — briefly wait,
/// exactly as they would behind a scalar drain's batch).
fn process_group_vectorized(
    shared: &EngineShared,
    plan: &mut BatchPlan,
    slots: &[Arc<SessionSlot>],
    batches: &mut [Vec<QueuedTick>],
) {
    let mut guards: Vec<_> = slots.iter().map(|slot| lock_recover(&slot.state)).collect();
    let mut cursors = vec![0usize; slots.len()];
    let mut processed = 0u64;
    let mut degraded_ticks = 0u64;
    let mut alarms = 0u64;
    let mut alloc_free = 0u64;
    let mut batch_ticks = 0u64;
    let mut lane_meta: Vec<(usize, u64)> = Vec::new();
    let mut steps: Vec<AdaptiveStep> = Vec::new();
    loop {
        let t0 = Instant::now();
        lane_meta.clear();
        let mut lanes: Vec<BatchLane<'_>> = Vec::new();
        let mut recorded = 0u32;
        for (k, guard) in guards.iter_mut().enumerate() {
            let Some(queued) = batches[k].get_mut(cursors[k]) else {
                continue;
            };
            cursors[k] += 1;
            let estimate = std::mem::replace(&mut queued.tick.estimate, Vector::zeros(0));
            let input = std::mem::replace(&mut queued.tick.input, Vector::zeros(0));
            let degraded = queued.degraded;
            let seq = queued.seq;
            let state: &mut SessionState = &mut *guard;
            // Same containment as the scalar path: a panic in this
            // lane's record (or degraded step) fails only this
            // session; the rest of the group keeps batching.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                state.logger.record(estimate, input);
                degraded.then(|| state.detector.step_degraded(&state.logger))
            }));
            let Ok(degraded_step) = outcome else {
                // Consume the failed session's remaining gathered
                // ticks without stepping (the caller's pending-count
                // decrement already covers them).
                processed += (batches[k].len() - cursors[k] + 1) as u64;
                cursors[k] = batches[k].len();
                fail_session(&slots[k]);
                continue;
            };
            recorded += 1;
            if let Some(step) = degraded_step {
                degraded_ticks += 1;
                if step.alarm() {
                    alarms += 1;
                }
                let _ = state.outcomes.send(TickOutcome {
                    session: slots[k].id,
                    seq,
                    degraded: true,
                    step,
                });
            } else {
                lane_meta.push((k, seq));
                lanes.push(BatchLane {
                    logger: &state.logger,
                    detector: &mut state.detector,
                });
            }
        }
        // recorded == 0 means every session is either exhausted or
        // was failed above (which consumes its remaining ticks), so
        // the group is done.
        if recorded == 0 {
            break;
        }
        processed += u64::from(recorded);
        let t1 = Instant::now();
        let n_lanes = lanes.len();
        steps.clear();
        if n_lanes > 0 {
            plan.step_group(&mut lanes, &mut steps);
        }
        drop(lanes);
        let t2 = Instant::now();

        // One timing span covers the whole position; attribute the
        // mean to each tick so batch-mode histograms stay comparable
        // with scalar-mode ones (same count, same total).
        shared
            .metrics
            .log_latency
            .record_n((t1 - t0) / recorded, u64::from(recorded));
        if n_lanes > 0 {
            shared
                .metrics
                .detect_latency
                .record_n((t2 - t1) / n_lanes as u32, n_lanes as u64);
            batch_ticks += n_lanes as u64;
            shared
                .metrics
                .batch_sessions_hwm
                .fetch_max(n_lanes as u64, Ordering::Relaxed);
        }

        for (&(k, seq), step) in lane_meta.iter().zip(steps.drain(..)) {
            let state = &guards[k];
            if step.alarm() {
                alarms += 1;
            }
            if state.detector.last_step_was_alloc_free() {
                alloc_free += 1;
            }
            let _ = state.outcomes.send(TickOutcome {
                session: slots[k].id,
                seq,
                degraded: false,
                step,
            });
        }
    }
    drop(guards);

    shared
        .metrics
        .ticks_processed
        .fetch_add(processed, Ordering::Relaxed);
    if degraded_ticks > 0 {
        shared
            .metrics
            .degraded_ticks
            .fetch_add(degraded_ticks, Ordering::Relaxed);
    }
    if alarms > 0 {
        shared
            .metrics
            .alarms_raised
            .fetch_add(alarms, Ordering::Relaxed);
    }
    if alloc_free > 0 {
        shared
            .metrics
            .alloc_free_ticks
            .fetch_add(alloc_free, Ordering::Relaxed);
    }
    if batch_ticks > 0 {
        shared
            .metrics
            .batch_ticks
            .fetch_add(batch_ticks, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsad_core::DetectorConfig;
    use awsad_linalg::Matrix;
    use awsad_lti::LtiSystem;
    use awsad_reach::{CacheConfig, DeadlineCache, DeadlineEstimator, ReachConfig};
    use awsad_sets::BoxSet;

    /// Integrator plant; safe |x| <= 5, |u| <= 1, threshold tau.
    fn parts(tau: f64, w_m: usize) -> (DataLogger, AdaptiveDetector) {
        let sys = LtiSystem::new_discrete_fully_observable(
            Matrix::identity(1),
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            0.02,
        )
        .unwrap();
        let reach = ReachConfig::new(
            BoxSet::from_bounds(&[-1.0], &[1.0]).unwrap(),
            0.0,
            BoxSet::from_bounds(&[-5.0], &[5.0]).unwrap(),
            w_m,
        )
        .unwrap();
        let est = DeadlineEstimator::new(sys.a(), sys.b(), reach).unwrap();
        let cfg = DetectorConfig::new(Vector::from_slice(&[tau]), w_m).unwrap();
        let logger = DataLogger::new(sys.clone(), w_m);
        let det = AdaptiveDetector::new(cfg, est).unwrap();
        (logger, det)
    }

    fn tick(x: f64) -> Tick {
        Tick {
            estimate: Vector::from_slice(&[x]),
            input: Vector::from_slice(&[0.0]),
        }
    }

    #[test]
    fn drain_notifier_fires_after_outcomes_are_receivable() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let fired = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let fired2 = Arc::clone(&fired);
        assert!(engine.set_drain_notifier(move || {
            fired2.fetch_add(1, Ordering::Relaxed);
        }));
        // Second install is rejected, first stays.
        assert!(!engine.set_drain_notifier(|| {}));

        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        for i in 0..5 {
            session.submit(tick(i as f64 * 0.01)).unwrap();
        }
        engine.drain();
        // The doorbell rings *after* `pending` hits zero (drain() can
        // return first), so give the worker a moment to get there.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while fired.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        // At least one ring per drained batch, and by the time it
        // rang the outcomes were already on the channel.
        assert!(fired.load(Ordering::Relaxed) >= 1);
        assert_eq!(outcomes.try_iter().count(), 5);
    }

    #[test]
    fn outcomes_arrive_in_submission_order() {
        let engine = DetectionEngine::new(EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        });
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        for i in 0..200 {
            session.submit(tick(0.001 * i as f64)).unwrap();
        }
        engine.drain();
        let got: Vec<u64> = outcomes.try_iter().map(|o| o.seq).collect();
        assert_eq!(got, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn runtime_matches_direct_detector_stepping() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.28, 10);
        let (mut direct_logger, mut direct_det) = parts(0.28, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        let trace: Vec<f64> = (0..40).map(|t| 0.05 * t as f64).collect();
        for &x in &trace {
            session.submit(tick(x)).unwrap();
        }
        engine.drain();
        for &x in &trace {
            direct_logger.record(Vector::from_slice(&[x]), Vector::from_slice(&[0.0]));
            let expected = direct_det.step(&direct_logger);
            let got = outcomes.try_recv().expect("outcome per tick");
            assert_eq!(got.step, expected);
            assert!(!got.degraded);
        }
    }

    #[test]
    fn recalibrate_mid_stream_matches_direct_reference() {
        // 20 ticks under the configured model, an accepted drift swap,
        // 20 more under the new one: outcome-for-outcome identical to
        // a standalone detector recalibrated at the same cut, with not
        // a single tick dropped or duplicated across the swap.
        let new_a = Matrix::from_rows(&[&[0.9]]).unwrap();
        let new_b = Matrix::from_rows(&[&[0.8]]).unwrap();
        let engine = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.28, 10);
        let (mut direct_logger, mut direct_det) = parts(0.28, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        let trace: Vec<f64> = (0..40).map(|t| 0.04 * t as f64).collect();
        for &x in &trace[..20] {
            session.submit(tick(x)).unwrap();
        }
        assert_eq!(session.recalibrate(&new_a, &new_b).unwrap(), 1);
        for &x in &trace[20..] {
            session.submit(tick(x)).unwrap();
        }
        engine.drain();
        for (i, &x) in trace.iter().enumerate() {
            if i == 20 {
                direct_det
                    .recalibrate(&mut direct_logger, &new_a, &new_b)
                    .unwrap();
            }
            direct_logger.record(Vector::from_slice(&[x]), Vector::from_slice(&[0.0]));
            let expected = direct_det.step(&direct_logger);
            let got = outcomes.try_recv().expect("outcome per tick");
            assert_eq!(got.seq, i as u64);
            assert_eq!(got.step, expected, "tick {i}");
        }
        assert_eq!(engine.metrics().recalibrations, 1);
    }

    #[test]
    fn rejected_recalibration_leaves_session_and_metrics_untouched() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.28, 10);
        let (mut direct_logger, mut direct_det) = parts(0.28, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        session.submit(tick(0.01)).unwrap();
        let wrong_dims = Matrix::identity(2);
        assert!(session
            .recalibrate(&wrong_dims, &Matrix::from_rows(&[&[1.0]]).unwrap())
            .is_err());
        session.submit(tick(0.02)).unwrap();
        engine.drain();
        for &x in &[0.01, 0.02] {
            direct_logger.record(Vector::from_slice(&[x]), Vector::from_slice(&[0.0]));
            let expected = direct_det.step(&direct_logger);
            assert_eq!(outcomes.try_recv().unwrap().step, expected);
        }
        assert_eq!(engine.metrics().recalibrations, 0);
    }

    #[test]
    fn recalibrate_regroups_batch_mode_sessions() {
        // Two same-model sessions share a batch group; recalibrating
        // one must split them (different estimator fingerprints) while
        // both streams stay bit-identical to scalar references.
        let new_a = Matrix::from_rows(&[&[0.9]]).unwrap();
        let new_b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let engine = DetectionEngine::new(EngineConfig {
            cross_session_batch: true,
            ..EngineConfig::default()
        });
        let (l0, d0) = parts(0.28, 10);
        let (l1, d1) = parts(0.28, 10);
        let (s0, o0) = engine.add_session(l0, d0);
        let (s1, o1) = engine.add_session(l1, d1);
        let key_before = *lock_recover(&s0.slot.batch_key);
        assert!(key_before.is_some());
        assert_eq!(key_before, *lock_recover(&s1.slot.batch_key));

        let trace: Vec<f64> = (0..30).map(|t| 0.03 * t as f64).collect();
        for &x in &trace[..15] {
            s0.submit(tick(x)).unwrap();
            s1.submit(tick(x)).unwrap();
        }
        engine.drain();
        s0.recalibrate(&new_a, &new_b).unwrap();
        let key_after = *lock_recover(&s0.slot.batch_key);
        assert!(key_after.is_some());
        assert_ne!(key_after, key_before, "fingerprint must follow the model");
        assert_eq!(*lock_recover(&s1.slot.batch_key), key_before);
        for &x in &trace[15..] {
            s0.submit(tick(x)).unwrap();
            s1.submit(tick(x)).unwrap();
        }
        engine.drain();

        let (mut rl0, mut rd0) = parts(0.28, 10);
        let (mut rl1, mut rd1) = parts(0.28, 10);
        for (i, &x) in trace.iter().enumerate() {
            if i == 15 {
                rd0.recalibrate(&mut rl0, &new_a, &new_b).unwrap();
            }
            rl0.record(Vector::from_slice(&[x]), Vector::from_slice(&[0.0]));
            rl1.record(Vector::from_slice(&[x]), Vector::from_slice(&[0.0]));
            assert_eq!(o0.try_recv().unwrap().step, rd0.step(&rl0), "s0 tick {i}");
            assert_eq!(o1.try_recv().unwrap().step, rd1.step(&rl1), "s1 tick {i}");
        }
    }

    #[test]
    fn sessions_process_concurrently_and_independently() {
        let engine = DetectionEngine::new(EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        });
        let mut sessions = Vec::new();
        for _ in 0..8 {
            let (logger, det) = parts(0.5, 10);
            sessions.push(engine.add_session(logger, det));
        }
        for (i, (session, _)) in sessions.iter().enumerate() {
            for t in 0..50 {
                session.submit(tick(0.01 * (i + t) as f64)).unwrap();
            }
        }
        engine.drain();
        for (i, (session, outcomes)) in sessions.iter().enumerate() {
            let outs: Vec<TickOutcome> = outcomes.try_iter().collect();
            assert_eq!(outs.len(), 50, "session {i}");
            assert!(outs.windows(2).all(|p| p[0].seq + 1 == p[1].seq));
            assert_eq!(outs[0].session, session.id());
        }
        let m = engine.metrics();
        assert_eq!(m.ticks_processed, 400);
        assert_eq!(m.log_latency.count, 400);
        assert_eq!(m.detect_latency.count, 400);
    }

    #[test]
    fn metrics_count_alarms_and_sessions() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.2, 10);
        let (session, _outcomes) = engine.add_session(logger, det);
        assert_eq!(engine.metrics().sessions_active, 1);
        for _ in 0..8 {
            session.submit(tick(0.0)).unwrap();
        }
        // Residual spike 2.0 over window 5: mean 0.4 > 0.2 → alarm.
        session.submit(tick(2.0)).unwrap();
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.ticks_processed, 9);
        assert!(m.alarms_raised >= 1);
        assert!(m.queue_depth_high_water >= 1);
        session.close();
        assert_eq!(engine.metrics().sessions_active, 0);
    }

    #[test]
    fn submit_after_close_fails() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        session.submit(tick(0.0)).unwrap();
        session.close();
        assert_eq!(session.submit(tick(0.0)), Err(SubmitError::SessionClosed));
        // The already-queued tick still drains.
        engine.drain();
        assert_eq!(outcomes.try_iter().count(), 1);
    }

    #[test]
    fn degrade_policy_flags_overflow_ticks() {
        // One worker, permanently busy elsewhere? Simplest determinism:
        // stall the session by taking its state lock so nothing drains
        // while we overfill the queue.
        let engine = DetectionEngine::new(EngineConfig {
            workers: 2,
            queue_capacity: 4,
            backpressure: BackpressurePolicy::Degrade,
            ..EngineConfig::default()
        });
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        {
            let _stall = session.slot.state.lock().unwrap();
            for _ in 0..10 {
                session.submit(tick(0.0)).unwrap();
            }
        }
        engine.drain();
        let outs: Vec<TickOutcome> = outcomes.try_iter().collect();
        assert_eq!(outs.len(), 10);
        let degraded: Vec<bool> = outs.iter().map(|o| o.degraded).collect();
        // The drain may pop tick 0 before it stalls on the state lock,
        // so the queue holds 9 or 10 of the submissions: the first
        // `capacity` are regular, everything past the full queue is
        // degraded, and tick 4 can fall either way.
        let n_degraded = degraded.iter().filter(|&&d| d).count();
        assert!((5..=6).contains(&n_degraded), "degraded = {degraded:?}");
        assert!(degraded[..4].iter().all(|&d| !d));
        assert!(degraded[5..].iter().all(|&d| d));
        // Degraded ticks run at w_m with no deadline estimate.
        for o in outs.iter().filter(|o| o.degraded) {
            assert_eq!(o.step.window, 10);
        }
        assert_eq!(engine.metrics().degraded_ticks, n_degraded as u64);
    }

    #[test]
    fn degrade_policy_survives_concurrent_producers_on_one_session() {
        // Several producer threads hammer a single session while its
        // drain is stalled (state lock held), overflowing the queue
        // far past capacity. Degrade must (a) never block a producer,
        // (b) flag every over-capacity tick, (c) preserve seq order in
        // the outcome stream, and (d) leave no tick behind — all of
        // which together also proves there is no deadlock between the
        // inbox lock, the pending counter, and the drain job.
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 50;
        const TOTAL: usize = PRODUCERS * PER_PRODUCER;
        const CAPACITY: usize = 8;

        let engine = DetectionEngine::new(EngineConfig {
            workers: 2,
            queue_capacity: CAPACITY,
            backpressure: BackpressurePolicy::Degrade,
            ..EngineConfig::default()
        });
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        {
            let _stall = session.slot.state.lock().unwrap();
            std::thread::scope(|scope| {
                for _ in 0..PRODUCERS {
                    scope.spawn(|| {
                        for _ in 0..PER_PRODUCER {
                            session.submit(tick(0.0)).unwrap();
                        }
                    });
                }
            });
        }
        engine.drain();

        let outs: Vec<TickOutcome> = outcomes.try_iter().collect();
        assert_eq!(outs.len(), TOTAL, "every submitted tick must drain");
        // Seq order is the engine's FIFO guarantee; with concurrent
        // producers it is also a permutation check (each seq exactly
        // once, in order).
        let seqs: Vec<u64> = outs.iter().map(|o| o.seq).collect();
        assert_eq!(seqs, (0..TOTAL as u64).collect::<Vec<u64>>());
        // The drain may pop at most one tick before stalling on the
        // state lock, so all but the first CAPACITY (+1) submissions
        // overflowed and must be flagged.
        let n_degraded = outs.iter().filter(|o| o.degraded).count();
        assert!(
            (TOTAL - CAPACITY - 1..=TOTAL - CAPACITY).contains(&n_degraded),
            "expected ~{} degraded, got {n_degraded}",
            TOTAL - CAPACITY
        );
        // Degraded ticks run at w_m; none may slip through unpinned.
        for o in outs.iter().filter(|o| o.degraded) {
            assert_eq!(o.step.window, 10);
        }
        let m = engine.metrics();
        assert_eq!(m.ticks_submitted, TOTAL as u64);
        assert_eq!(m.ticks_processed, TOTAL as u64);
        assert_eq!(m.degraded_ticks, n_degraded as u64);
    }

    #[test]
    fn block_policy_never_degrades_and_bounds_queue() {
        let engine = DetectionEngine::new(EngineConfig {
            workers: 2,
            queue_capacity: 2,
            backpressure: BackpressurePolicy::Block,
            ..EngineConfig::default()
        });
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        for _ in 0..50 {
            session.submit(tick(0.0)).unwrap();
        }
        engine.drain();
        assert!(outcomes.try_iter().all(|o| !o.degraded));
        assert_eq!(engine.metrics().degraded_ticks, 0);
    }

    #[test]
    fn exact_cache_in_engine_is_transparent_and_hits() {
        let (logger_a, det_a) = parts(0.5, 10);
        let (logger_b, mut det_b) = parts(0.5, 10);
        det_b.set_deadline_cache(DeadlineCache::new(CacheConfig::exact(128)));
        let engine = DetectionEngine::new(EngineConfig::default());
        let (plain, plain_out) = engine.add_session(logger_a, det_a);
        let (cached, cached_out) = engine.add_session(logger_b, det_b);
        for t in 0..60 {
            let x = if t % 2 == 0 { 0.0 } else { 1.0 };
            plain.submit(tick(x)).unwrap();
            cached.submit(tick(x)).unwrap();
        }
        engine.drain();
        let a: Vec<AdaptiveStep> = plain_out.try_iter().map(|o| o.step).collect();
        let b: Vec<AdaptiveStep> = cached_out.try_iter().map(|o| o.step).collect();
        assert_eq!(a, b, "exact cache must not change any decision");
        let stats = cached.deadline_cache_stats().unwrap();
        assert!(stats.hits > 0, "alternating states must hit the cache");
        assert!(plain.deadline_cache_stats().is_none());
    }

    #[test]
    fn batched_drain_coalesces_cache_misses_and_counts_alloc_free_ticks() {
        // Stall the session so a burst accumulates, then let a single
        // batch drain it: the distinct states' cache misses coalesce
        // into one batched reachability walk and every per-tick query
        // hits the prewarmed cache.
        let engine = DetectionEngine::new(EngineConfig {
            workers: 2,
            queue_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            ..EngineConfig::default()
        });
        let (logger, mut det) = parts(0.5, 10);
        det.set_deadline_cache(DeadlineCache::new(CacheConfig::exact(128)));
        let (session, outcomes) = engine.add_session(logger, det);
        {
            let _stall = session.slot.state.lock().unwrap();
            for _ in 0..32 {
                session.submit(tick(0.0)).unwrap();
            }
        }
        engine.drain();
        assert_eq!(outcomes.try_iter().count(), 32);
        let m = engine.metrics();
        assert_eq!(
            m.batched_deadline_queries, 1,
            "one distinct state → one prewarmed entry"
        );
        assert_eq!(
            m.alloc_free_ticks, 32,
            "all steps hit the cache with no complementary alarms"
        );
        let stats = session.deadline_cache_stats().unwrap();
        assert_eq!(stats.misses, 1, "only the prewarm insert");
        assert_eq!(stats.hits, 32);
    }

    #[test]
    fn uncached_steady_stream_is_alloc_free() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.5, 10);
        let (session, _outcomes) = engine.add_session(logger, det);
        for _ in 0..20 {
            session.submit(tick(0.0)).unwrap();
        }
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.ticks_processed, 20);
        assert_eq!(
            m.alloc_free_ticks, 20,
            "scratch-walk steps without a cache never allocate"
        );
        assert_eq!(
            m.batched_deadline_queries, 0,
            "no cache, nothing to coalesce"
        );
    }

    #[test]
    fn snapshot_restore_continues_stream_and_seq_across_engines() {
        // Spike-then-drift trace that shrinks the window and trips
        // alarms, so resuming exercises real adaptation state.
        let trace: Vec<f64> = (0..60)
            .map(|t| match t {
                0..=9 => 0.0,
                _ => 2.0 + 0.04 * (t as f64 - 10.0),
            })
            .collect();
        let cut = 23;

        // Uninterrupted reference.
        let reference = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.28, 10);
        let (ref_session, ref_out) = reference.add_session(logger, det);
        for &x in &trace {
            ref_session.submit(tick(x)).unwrap();
        }
        reference.drain();
        let expected: Vec<TickOutcome> = ref_out.try_iter().collect();
        assert!(expected.iter().any(|o| o.step.alarm()));

        // Interrupted run: snapshot at the cut, kill the engine, then
        // restore into a brand-new engine with fresh parts.
        let first = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.28, 10);
        let (session, out) = first.add_session(logger, det);
        for &x in &trace[..cut] {
            session.submit(tick(x)).unwrap();
        }
        let snap = session.snapshot();
        assert_eq!(snap.next_seq, cut as u64);
        let mut got: Vec<TickOutcome> = out.try_iter().collect();
        drop(session);
        drop(first);

        let second = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.28, 10);
        let (restored, out2) = second.restore_session(logger, det, &snap).unwrap();
        for &x in &trace[cut..] {
            restored.submit(tick(x)).unwrap();
        }
        second.drain();
        got.extend(out2.try_iter());

        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!(g.seq, e.seq, "seq numbering must continue gap-free");
            assert_eq!(g.step, e.step, "outcome stream must be identical");
        }
    }

    #[test]
    fn snapshot_generations_increase_and_survive_restore() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.5, 10);
        let (session, _out) = engine.add_session(logger, det);
        session.submit(tick(0.0)).unwrap();
        let s1 = session.snapshot();
        let s2 = session.snapshot();
        assert_eq!(s1.generation, 1);
        assert_eq!(s2.generation, 2, "each snapshot is a fresh generation");

        // A restored session continues the lineage's counter, so a
        // snapshot taken after migration still orders after every
        // pre-migration snapshot.
        let second = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.5, 10);
        let (restored, _out2) = second.restore_session(logger, det, &s2).unwrap();
        assert_eq!(restored.snapshot().generation, 3);
    }

    #[test]
    fn replication_recorders_feed_metrics() {
        let engine = DetectionEngine::new(EngineConfig::default());
        engine.record_replication(2);
        engine.record_replication(5);
        engine.record_replication(1);
        engine.record_failover();
        let m = engine.metrics();
        assert_eq!(m.sessions_replicated, 3);
        assert_eq!(m.failovers, 1);
        assert_eq!(m.replication_lag_hwm, 5, "high-water, not last value");
    }

    #[test]
    fn snapshot_waits_for_queued_ticks() {
        // Pile ticks up behind a stalled drain, then snapshot from
        // another thread: the snapshot must block until every queued
        // tick has been processed, so the captured state reflects all
        // of them.
        let engine = DetectionEngine::new(EngineConfig {
            workers: 2,
            queue_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            ..EngineConfig::default()
        });
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        let snap = {
            let stall = session.slot.state.lock().unwrap();
            for _ in 0..20 {
                session.submit(tick(0.0)).unwrap();
            }
            let handle = std::thread::scope(|scope| {
                let taker = scope.spawn(|| session.snapshot());
                // The taker cannot finish while the drain is stalled.
                std::thread::sleep(std::time::Duration::from_millis(50));
                assert!(!taker.is_finished(), "snapshot returned mid-queue");
                drop(stall);
                taker.join().unwrap()
            });
            handle
        };
        assert_eq!(snap.next_seq, 20);
        assert_eq!(snap.state.logger.next_step, 20);
        assert_eq!(outcomes.try_iter().count(), 20);
    }

    #[test]
    fn restore_session_rejects_bad_snapshots_without_creating_one() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let (logger, det) = parts(0.5, 10);
        let (session, _out) = engine.add_session(logger, det);
        for _ in 0..5 {
            session.submit(tick(0.0)).unwrap();
        }
        let mut snap = session.snapshot();
        snap.state.reestimation_period = 0;
        let (logger, det) = parts(0.5, 10);
        let before = engine.metrics().sessions_active;
        assert!(engine.restore_session(logger, det, &snap).is_err());
        assert_eq!(engine.metrics().sessions_active, before);
    }

    #[test]
    fn session_ids_are_unique_and_displayed() {
        let engine = DetectionEngine::new(EngineConfig::default());
        let (l1, d1) = parts(0.5, 10);
        let (l2, d2) = parts(0.5, 10);
        let (s1, _o1) = engine.add_session(l1, d1);
        let (s2, _o2) = engine.add_session(l2, d2);
        assert_ne!(s1.id(), s2.id());
        assert_eq!(s1.id().to_string(), "session-0");
    }

    #[test]
    fn drain_on_idle_engine_returns_immediately() {
        let engine = DetectionEngine::new(EngineConfig::default());
        engine.drain();
        assert_eq!(engine.metrics().ticks_processed, 0);
    }

    #[test]
    fn drain_batch_defaults_and_clamps() {
        assert_eq!(EngineConfig::default().drain_batch, 32);
        assert!(!EngineConfig::default().cross_session_batch);
        let engine = DetectionEngine::new(EngineConfig {
            drain_batch: 0,
            ..EngineConfig::default()
        });
        assert_eq!(engine.config().drain_batch, 1, "zero clamps to one");
    }

    #[test]
    fn degrade_stall_semantics_unchanged_at_all_drain_batch_values() {
        // The drain-batch knob bounds how many ticks one state-lock
        // acquisition processes; it must not change *which* ticks the
        // Degrade policy flags. Replay the stalled-session scenario of
        // `degrade_policy_flags_overflow_ticks` at several knob values
        // and require the same degrade envelope every time.
        for drain_batch in [1usize, 2, 32, 128] {
            let engine = DetectionEngine::new(EngineConfig {
                workers: 2,
                queue_capacity: 4,
                backpressure: BackpressurePolicy::Degrade,
                drain_batch,
                ..EngineConfig::default()
            });
            let (logger, det) = parts(0.5, 10);
            let (session, outcomes) = engine.add_session(logger, det);
            {
                let _stall = session.slot.state.lock().unwrap();
                for _ in 0..10 {
                    session.submit(tick(0.0)).unwrap();
                }
            }
            engine.drain();
            let outs: Vec<TickOutcome> = outcomes.try_iter().collect();
            assert_eq!(outs.len(), 10, "drain_batch={drain_batch}");
            let degraded: Vec<bool> = outs.iter().map(|o| o.degraded).collect();
            let n_degraded = degraded.iter().filter(|&&d| d).count();
            assert!(
                (5..=6).contains(&n_degraded),
                "drain_batch={drain_batch}: degraded = {degraded:?}"
            );
            assert!(degraded[..4].iter().all(|&d| !d));
            assert!(degraded[5..].iter().all(|&d| d));
            for o in outs.iter().filter(|o| o.degraded) {
                assert_eq!(o.step.window, 10);
            }
        }
    }

    /// Mixed fleet on a batch-mode engine vs direct per-detector
    /// stepping: same-model sessions (batchable), a quantized-cache
    /// session (scalar fallback), and a forced degrade pattern — every
    /// outcome stream must be bit-identical to standalone stepping.
    #[test]
    fn batch_mode_matches_direct_detector_stepping() {
        let engine = DetectionEngine::new(EngineConfig {
            workers: 1,
            cross_session_batch: true,
            ..EngineConfig::default()
        });
        // Sessions 0-3: same plant/geometry (one batch group, varied
        // thresholds are fine). Session 4: quantized deadline cache —
        // never batchable. Session 5: different horizon → different
        // fingerprint → its own group.
        let mut sessions = Vec::new();
        let mut direct = Vec::new();
        for i in 0..6 {
            let tau = 0.3 + 0.05 * i as f64;
            let w_m = if i == 5 { 8 } else { 10 };
            let (logger, mut det) = parts(tau, w_m);
            let (ref_logger, mut det_ref) = parts(tau, w_m);
            if i == 4 {
                det.set_deadline_cache(DeadlineCache::new(CacheConfig::quantized(0.5, 64)));
                det_ref.set_deadline_cache(DeadlineCache::new(CacheConfig::quantized(0.5, 64)));
            }
            sessions.push(engine.add_session(logger, det));
            direct.push((ref_logger, det_ref));
        }
        let ticks = 50usize;
        for t in 0..ticks {
            for (i, (session, _)) in sessions.iter().enumerate() {
                let x = 0.11 * ((t * 7 + i * 3) % 13) as f64 - 0.6;
                if (t + i) % 9 == 0 {
                    session.submit_degraded(tick(x)).unwrap();
                } else {
                    session.submit(tick(x)).unwrap();
                }
            }
        }
        engine.drain();
        for (i, (_, outcomes)) in sessions.iter().enumerate() {
            let (ref_logger, ref_det) = &mut direct[i];
            for t in 0..ticks {
                let x = 0.11 * ((t * 7 + i * 3) % 13) as f64 - 0.6;
                ref_logger.record(Vector::from_slice(&[x]), Vector::from_slice(&[0.0]));
                let expected = if (t + i) % 9 == 0 {
                    ref_det.step_degraded(ref_logger)
                } else {
                    ref_det.step(ref_logger)
                };
                let got = outcomes.try_recv().expect("outcome per tick");
                assert_eq!(got.seq, t as u64, "session {i}");
                assert_eq!(got.step, expected, "session {i} tick {t}");
                assert_eq!(got.degraded, (t + i) % 9 == 0);
            }
        }
        let m = engine.metrics();
        assert_eq!(m.ticks_processed, 6 * ticks as u64);
        assert!(m.batch_ticks > 0, "same-model sessions must vectorize");
        assert!(
            m.scalar_fallback_ticks > 0,
            "the quantized-cache session must fall back scalar"
        );
        assert!(
            m.batch_sessions_hwm >= 2,
            "at least two sessions must have shared a lane set, got {}",
            m.batch_sessions_hwm
        );
        assert_eq!(
            m.log_latency.count,
            6 * ticks as u64,
            "batched timing must attribute one sample per tick"
        );
    }

    #[test]
    fn batch_mode_scatters_groups_across_workers() {
        // Two distinct model groups on a multi-worker pool: the
        // mega-drain dispatches one group to a spare worker and
        // processes the other inline. Outcomes must still match
        // direct stepping exactly.
        let engine = DetectionEngine::new(EngineConfig {
            workers: 4,
            cross_session_batch: true,
            ..EngineConfig::default()
        });
        let mut sessions = Vec::new();
        let mut direct = Vec::new();
        for i in 0..6 {
            let w_m = if i % 2 == 0 { 10 } else { 12 };
            let (logger, det) = parts(0.4, w_m);
            let (ref_logger, ref_det) = parts(0.4, w_m);
            sessions.push(engine.add_session(logger, det));
            direct.push((ref_logger, ref_det));
        }
        for t in 0..60 {
            for (i, (session, _)) in sessions.iter().enumerate() {
                let x = 0.07 * ((t * 5 + i) % 11) as f64;
                session.submit(tick(x)).unwrap();
            }
        }
        engine.drain();
        for (i, (_, outcomes)) in sessions.iter().enumerate() {
            let (ref_logger, ref_det) = &mut direct[i];
            for t in 0..60 {
                let x = 0.07 * ((t * 5 + i) % 11) as f64;
                ref_logger.record(Vector::from_slice(&[x]), Vector::from_slice(&[0.0]));
                let expected = ref_det.step(ref_logger);
                let got = outcomes.try_recv().expect("outcome per tick");
                assert_eq!(got.step, expected, "session {i} tick {t}");
            }
        }
        assert_eq!(engine.metrics().ticks_processed, 360);
    }

    #[test]
    fn batch_mode_snapshot_waits_and_cuts_cleanly() {
        let engine = DetectionEngine::new(EngineConfig {
            workers: 1,
            cross_session_batch: true,
            ..EngineConfig::default()
        });
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        for _ in 0..20 {
            session.submit(tick(0.0)).unwrap();
        }
        let snap = session.snapshot();
        assert_eq!(snap.next_seq, 20, "snapshot waits for queued ticks");
        assert_eq!(snap.state.logger.next_step, 20);
        engine.drain();
        assert_eq!(outcomes.try_iter().count(), 20);
    }

    #[test]
    fn batch_mode_dropped_session_does_not_hang_drain() {
        // A handle dropped with ticks still queued takes the slot (and
        // the ticks) down before the mega-drain can claim them; the
        // slot's Drop must refund the pending count so drain returns.
        let engine = DetectionEngine::new(EngineConfig {
            workers: 1,
            cross_session_batch: true,
            ..EngineConfig::default()
        });
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        for _ in 0..10 {
            session.submit(tick(0.0)).unwrap();
        }
        drop(session);
        drop(outcomes);
        engine.drain();
        // Whether the mega-drain won the race or the refund did, the
        // engine must be idle now and stay functional.
        let (logger, det) = parts(0.5, 10);
        let (fresh, fresh_out) = engine.add_session(logger, det);
        fresh.submit(tick(0.0)).unwrap();
        engine.drain();
        assert_eq!(fresh_out.try_iter().count(), 1);
    }

    #[test]
    fn batch_mode_close_drains_queued_ticks() {
        let engine = DetectionEngine::new(EngineConfig {
            workers: 1,
            cross_session_batch: true,
            ..EngineConfig::default()
        });
        let (logger, det) = parts(0.5, 10);
        let (session, outcomes) = engine.add_session(logger, det);
        for _ in 0..5 {
            session.submit(tick(0.0)).unwrap();
        }
        session.close();
        assert_eq!(session.submit(tick(0.0)), Err(SubmitError::SessionClosed));
        engine.drain();
        assert_eq!(outcomes.try_iter().count(), 5);
    }

    /// A tick whose estimate dimension does not match the 1-dim plant:
    /// `DataLogger::record` panics on it inside the drain worker.
    fn poison_tick() -> Tick {
        Tick {
            estimate: Vector::from_slice(&[0.0, 0.0]),
            input: Vector::from_slice(&[0.0]),
        }
    }

    /// Regression: a panic inside one session's step (here the
    /// logger's dimension assert) used to poison the engine's mutexes,
    /// turning every later submit on *any* session into a panic
    /// cascade. Now it fails only the offending session: its stream
    /// ends and further submits see `SessionClosed`, while unrelated
    /// sessions — including ones opened afterwards — keep processing,
    /// and `drain` still terminates.
    #[test]
    fn panicking_session_is_contained_scalar() {
        let engine = DetectionEngine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let (logger_a, det_a) = parts(1e6, 5);
        let (session_a, outcomes_a) = engine.add_session(logger_a, det_a);
        let (logger_b, det_b) = parts(1e6, 5);
        let (session_b, outcomes_b) = engine.add_session(logger_b, det_b);

        // Two good ticks, the poison tick, then two more queued behind
        // it that must be dropped, not stepped.
        for _ in 0..2 {
            session_a.submit(tick(0.1)).unwrap();
        }
        session_a.submit(poison_tick()).unwrap();
        // The drain worker races these two submits: they either queue
        // behind the poison tick and get dropped, or the session is
        // already closed and they bounce — both keep them out of the
        // outcome stream, which is the property under test.
        for _ in 0..2 {
            let _ = session_a.submit(tick(0.1));
        }
        for _ in 0..8 {
            session_b.submit(tick(0.2)).unwrap();
        }
        engine.drain();

        // Session A produced outcomes only for the ticks before the
        // panic; session B's stream is complete.
        assert_eq!(outcomes_a.try_iter().count(), 2);
        assert_eq!(outcomes_b.try_iter().count(), 8);

        // The failed session is closed; the healthy one still works.
        assert_eq!(session_a.submit(tick(0.1)), Err(SubmitError::SessionClosed));
        session_b.submit(tick(0.2)).unwrap();

        // The engine itself is unharmed: new sessions open and run.
        let (logger_c, det_c) = parts(1e6, 5);
        let (session_c, outcomes_c) = engine.add_session(logger_c, det_c);
        for _ in 0..3 {
            session_c.submit(tick(0.3)).unwrap();
        }
        engine.drain();
        assert_eq!(outcomes_b.try_iter().count(), 1);
        assert_eq!(outcomes_c.try_iter().count(), 3);
    }

    /// The same containment on the cross-session batched drain: the
    /// poisoned lane fails its own session mid-group, the co-batched
    /// session's stream stays complete and bit-identical.
    #[test]
    fn panicking_session_is_contained_in_batch_mode() {
        let engine = DetectionEngine::new(EngineConfig {
            workers: 1,
            cross_session_batch: true,
            drain_batch: 8,
            ..EngineConfig::default()
        });
        let (logger_a, det_a) = parts(1e6, 5);
        let (session_a, outcomes_a) = engine.add_session(logger_a, det_a);
        let (logger_b, det_b) = parts(1e6, 5);
        let (session_b, outcomes_b) = engine.add_session(logger_b, det_b);

        for i in 0..6 {
            if i == 2 {
                session_a.submit(poison_tick()).unwrap();
            } else {
                // Past the poison tick the submit races the drain
                // worker's containment close; either way the tick
                // stays out of A's stream.
                let submitted = session_a.submit(tick(0.1));
                if i < 2 {
                    submitted.unwrap();
                }
            }
            session_b.submit(tick(0.2)).unwrap();
        }
        engine.drain();

        assert_eq!(outcomes_a.try_iter().count(), 2);
        let b_steps: Vec<AdaptiveStep> = outcomes_b.try_iter().map(|o| o.step).collect();
        assert_eq!(b_steps.len(), 6);
        assert_eq!(session_a.submit(tick(0.1)), Err(SubmitError::SessionClosed));

        // B's stream matches direct stepping — the failure did not
        // perturb the surviving lanes.
        let (mut logger, mut det) = parts(1e6, 5);
        for (i, got) in b_steps.iter().enumerate() {
            logger.record(Vector::from_slice(&[0.2]), Vector::from_slice(&[0.0]));
            let want = det.step(&logger);
            assert_eq!(*got, want, "tick {i}");
        }
    }
}
