//! Online multi-session detection runtime for AWSAD.
//!
//! The paper evaluates one detector on one plant at a time; a deployed
//! monitoring system watches *fleets* — many plant instances streaming
//! measurements concurrently, each needing its own sliding-window
//! logger, adaptive detector, and deadline estimates. This crate turns
//! the per-episode building blocks of `awsad-core` into such an online
//! engine:
//!
//! * [`WorkerPool`] — a fixed set of long-lived worker threads with a
//!   shared FIFO injector queue (`std` sync primitives only). One pool
//!   serves every session; it also backs `awsad-sim`'s Monte-Carlo
//!   batch runner via [`WorkerPool::run_ordered`].
//! * [`DetectionEngine`] / [`SessionHandle`] — one **session** per
//!   plant instance, fed measurement [`Tick`]s through a bounded
//!   queue. Ticks within a session are processed strictly in
//!   submission order (the detector is stateful), so each session's
//!   [`TickOutcome`] stream is byte-identical to stepping the detector
//!   directly; different sessions run concurrently on the pool.
//! * **Backpressure** — [`BackpressurePolicy::Block`] throttles the
//!   producer when a queue is full; [`BackpressurePolicy::Degrade`]
//!   accepts the tick but processes it on the documented cheap path
//!   (window grown to `w_m`, no reachability query, outcome flagged
//!   degraded).
//! * [`RuntimeMetrics`] — relaxed-atomic counters for throughput,
//!   alarms, degraded ticks, queue high-water, and fixed-bucket
//!   latency histograms for the logging and detection stages.
//!
//! The reachability query is the dominant per-tick cost; sessions can
//! install an `awsad_reach::DeadlineCache` on their detector before
//! registration to memoize it (exact mode changes no decision — see
//! that type for the quantization trade-off).
//!
//! See `examples/streaming_detection.rs` at the workspace root for a
//! 64-session end-to-end run.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod metrics;
mod pool;

pub use engine::{
    BackpressurePolicy, DetectionEngine, EngineConfig, SessionHandle, SessionId, SessionSnapshot,
    SubmitError, Tick, TickOutcome,
};
pub use metrics::{bucket_bound_ns, LatencyHistogram, RuntimeMetrics, LATENCY_BUCKETS};
pub use pool::WorkerPool;
