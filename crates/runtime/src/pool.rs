use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// A fixed-size pool of long-lived worker threads draining a shared
/// injector queue.
///
/// This replaces ad-hoc thread-per-job spawning: thread creation is
/// paid once at construction, concurrency is bounded by the pool size
/// regardless of how many jobs are submitted, and excess jobs queue up
/// in FIFO order. A panicking job is contained to that job — the
/// worker thread survives and moves on to the next one.
///
/// Dropping the pool finishes every already-submitted job before the
/// workers exit (graceful shutdown, no job is abandoned).
///
/// Built on `std` only (`Mutex` + `Condvar` + `mpsc`); no external
/// dependencies.
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared").finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` threads; `0` means one thread per
    /// available CPU.
    pub fn new(workers: usize) -> Self {
        let count = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let handles = (0..count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("awsad-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool lock").jobs.len()
    }

    /// Submits a job to the injector queue.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            debug_assert!(!state.shutdown, "execute after shutdown");
            state.jobs.push_back(Box::new(job));
        }
        self.shared.available.notify_one();
    }

    /// Runs `f` over every item on the pool and returns the results
    /// **in item order**, blocking until the whole batch completes.
    ///
    /// A panic inside `f` is re-raised here (on the submitting thread)
    /// after the batch's remaining jobs finish scheduling; the worker
    /// threads themselves survive.
    ///
    /// Do not call this from inside a pool job: the batch would need a
    /// worker slot the caller is occupying, which can deadlock a fully
    /// loaded pool.
    pub fn run_ordered<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        let n = items.len();
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel();
        for (idx, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.execute(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f(item)));
                let _ = tx.send((idx, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, result) = rx.recv().expect("pool alive for the whole batch");
            match result {
                Ok(value) => slots[idx] = Some(value),
                Err(payload) => resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index sent exactly once"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool lock").shutdown = true;
        self.shared.available.notify_all();
        // The last pool reference can die *inside* a pool job — e.g. a
        // queued drain closure holding an `Arc<WorkerPool>` outliving
        // the engine that spawned it. Joining the current thread would
        // be a self-deadlock (EDEADLK), so that one handle is detached
        // instead: the shutdown flag above makes it exit on its own
        // once the queue is empty.
        let me = std::thread::current().id();
        for handle in self.workers.drain(..) {
            if handle.thread().id() == me {
                drop(handle);
            } else {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.available.wait(state).expect("pool lock");
            }
        };
        // Contain panics to the job; the worker lives on.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // graceful shutdown finishes the queue
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn run_ordered_preserves_item_order() {
        let pool = WorkerPool::new(3);
        let results = pool.run_ordered((0..100).collect(), |i: usize| {
            if i.is_multiple_of(7) {
                std::thread::sleep(Duration::from_millis(1));
            }
            i * 2
        });
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_ordered_on_empty_batch() {
        let pool = WorkerPool::new(1);
        let results: Vec<usize> = pool.run_ordered(Vec::new(), |i: usize| i);
        assert!(results.is_empty());
    }

    #[test]
    fn zero_means_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.workers() >= 1);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("job panic"));
        // The single worker must survive to run this:
        let results = pool.run_ordered(vec![1, 2, 3], |i: i32| i + 1);
        assert_eq!(results, vec![2, 3, 4]);
    }

    #[test]
    fn last_reference_dropped_inside_a_job_shuts_down_cleanly() {
        let pool = Arc::new(WorkerPool::new(2));
        let inner = Arc::clone(&pool);
        let (ready_tx, ready_rx) = mpsc::channel();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel();
        pool.execute(move || {
            ready_tx.send(()).unwrap();
            go_rx.recv().unwrap();
            // With main's reference gone, this drop runs the pool's
            // Drop on a worker thread; a self-join would deadlock or
            // panic before the send below.
            drop(inner);
            done_tx.send(()).unwrap();
        });
        ready_rx.recv().unwrap();
        drop(pool);
        go_tx.send(()).unwrap();
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("worker-side pool drop must not self-deadlock");
    }

    #[test]
    fn run_ordered_propagates_job_panics() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(vec![0, 1, 2], |i: usize| {
                assert!(i != 1, "boom");
                i
            })
        }));
        assert!(outcome.is_err());
        // Workers survive the propagated panic.
        assert_eq!(pool.run_ordered(vec![5], |i: usize| i), vec![5]);
    }
}
