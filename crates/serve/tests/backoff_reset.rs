//! Regression test: a successful call must reset the
//! decorrelated-jitter backoff state to the base delay.
//!
//! The bug: `recover()` only reset the jitter state on a *successful*
//! recovery. An outage that exhausted its retries surfaced its error
//! with the delay still inflated (up to `max_delay`), so the *next*
//! outage — possibly hours later, after any number of successful
//! calls — started its first backoff from the previous outage's
//! ceiling instead of `base_delay`.

use std::time::Duration;

use awsad_serve::reconnect::{ReconnectingClient, RetryPolicy};
use awsad_serve::server::{Server, ServerConfig};
use awsad_serve::wire::SessionSpec;

#[test]
fn successful_call_resets_backoff_to_base_delay() {
    let policy = RetryPolicy {
        max_retries: 2,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(30),
        seed: 7,
    };
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut rc = ReconnectingClient::connect(addr, policy.clone()).unwrap();
    let session = rc.open_session(&SessionSpec::model_defaults(2)).unwrap();
    rc.tick(session.id, &[0.0], &[0.0]).unwrap();
    assert_eq!(rc.current_backoff_floor(), policy.base_delay);

    // Kill the server for good and run the outage to retry
    // exhaustion a few times, compounding the backoff delay.
    server.shutdown();
    drop(server);
    for _ in 0..4 {
        rc.tick(session.id, &[0.0], &[0.0])
            .expect_err("no server is listening");
    }
    assert!(
        rc.current_backoff_floor() > policy.base_delay,
        "the exhausted outage must have inflated the jitter state \
         (floor {:?})",
        rc.current_backoff_floor()
    );

    // Server comes back on the same address; the next call recovers,
    // restores the session from its checkpoint, and succeeds — which
    // must snap the jitter state back to the base delay so a future
    // outage does not inherit this one's inflation.
    let server = Server::bind(addr, ServerConfig::default()).unwrap();
    rc.tick(session.id, &[0.0], &[0.0]).unwrap();
    assert!(rc.reconnects() >= 1);
    assert_eq!(rc.current_backoff_floor(), policy.base_delay);
    server.shutdown();
}
