//! Chaos tests: deterministic transport-fault injection against the
//! serving layer.
//!
//! The load-bearing guarantees proven here:
//!
//! * a detection session **survives a server kill-and-restart**: the
//!   `ReconnectingClient` restores it from its checkpoint and the
//!   resumed `AdaptiveStep` stream is byte-identical to an
//!   uninterrupted direct-engine run of the same seeded bias attack;
//! * truncated-mid-frame and dropped replies are likewise survived
//!   byte-identically;
//! * the timeout-desync bug is fixed: a reply arriving after the
//!   client's reply timeout can no longer be misattributed to the
//!   next call (the legacy call pattern demonstrably misattributed
//!   it; the fixed client poisons itself instead);
//! * a slow-loris peer ties up only its own connection and only until
//!   the server's frame deadline — asserted on transport counters,
//!   not wall-clock;
//! * idle sessions are evicted after `session_ttl` and the eviction
//!   is observable (counter + `UnknownSession` on next use).

mod support;

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use awsad_core::AdaptiveStep;
use awsad_serve::client::{Client, ClientError};
use awsad_serve::reconnect::{ReconnectingClient, RetryPolicy};
use awsad_serve::server::{Server, ServerConfig};
use awsad_serve::wire::{self, ErrorCode, Frame, SessionSpec, WireOutcome};

use support::{direct_engine_steps, pinned_trace, FaultPlan, FaultProxy, ReplyFault};

/// Polls until the predicate holds or the deadline passes — counter
/// updates race the test thread, never the protocol itself.
fn wait_for(mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !pred() {
        assert!(Instant::now() < deadline, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A fast retry policy for tests: deterministic seed, short delays.
fn test_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 40,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(100),
        seed: 7,
    }
}

fn assert_stream_matches(outcomes: &[WireOutcome], trace_len: usize, direct: &[AdaptiveStep]) {
    assert_eq!(outcomes.len(), trace_len);
    // Seq numbering must be continuous across every reconnect/resume.
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.seq, i as u64, "seq discontinuity at {i}");
        assert!(!o.degraded);
    }
    let steps: Vec<AdaptiveStep> = outcomes.iter().map(|o| o.to_step()).collect();
    assert_eq!(steps, *direct, "resumed stream must equal direct stepping");
    // The attack half must actually alarm, or the comparison is
    // vacuously all-quiet.
    assert!(
        outcomes.iter().any(|o| o.alarm()),
        "pinned scenario must trip at least one alarm"
    );
}

#[test]
fn session_survives_server_kill_and_restart_byte_identically() {
    let config = ServerConfig::default();
    let server = Server::bind("127.0.0.1:0", config.clone()).unwrap();
    let addr = server.local_addr();

    let mut rc = ReconnectingClient::connect(addr, test_policy()).unwrap();
    let session = rc.open_session(&SessionSpec::model_defaults(2)).unwrap();

    let trace = pinned_trace(120);
    let mut outcomes = Vec::new();
    let mut server = Some(server);
    for (i, chunk) in trace.chunks(10).enumerate() {
        if i == 6 {
            // Kill the server mid-stream — sessions and all — and
            // bring a fresh one up on the same address.
            let old = server.take().unwrap();
            old.shutdown();
            drop(old);
            server = Some(Server::bind(addr, config.clone()).unwrap());
        }
        outcomes.extend(rc.tick_batch(session.id, chunk).unwrap());
    }

    assert!(
        rc.reconnects() >= 1,
        "the kill must have forced at least one reconnect"
    );
    assert_stream_matches(&outcomes, trace.len(), &direct_engine_steps(&trace));
    server.unwrap().shutdown();
}

#[test]
fn truncated_and_dropped_replies_are_survived_byte_identically() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    // Connection 1: hello, open, batch 1, checkpoint 1 forwarded, then
    // batch 2's reply is cut mid-frame (6 bytes = prefix + 2 bytes of
    // body). Connection 2: hello, restore, batch-2 replay, checkpoint
    // forwarded, then batch 3's reply is swallowed whole. Connection 3
    // runs clean.
    let proxy = FaultProxy::start(
        server.local_addr(),
        vec![
            FaultPlan::after(4, ReplyFault::Truncate(6)),
            FaultPlan::after(4, ReplyFault::Drop),
        ],
    );

    let mut rc = ReconnectingClient::connect(proxy.addr(), test_policy()).unwrap();
    let session = rc.open_session(&SessionSpec::model_defaults(2)).unwrap();

    let trace = pinned_trace(120);
    let mut outcomes = Vec::new();
    for chunk in trace.chunks(40) {
        outcomes.extend(rc.tick_batch(session.id, chunk).unwrap());
    }

    assert_eq!(rc.reconnects(), 2, "one reconnect per injected fault");
    assert_stream_matches(&outcomes, trace.len(), &direct_engine_steps(&trace));
    drop(proxy);
    server.shutdown();
}

#[test]
fn late_reply_after_timeout_poisons_instead_of_misattributing() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let trace = pinned_trace(4);

    // Part 1 — the regression, demonstrated with the legacy call
    // pattern (write a frame, read *whatever frame comes next*): after
    // a timed-out tick, the delayed reply is delivered as the answer
    // to the following metrics call. This is the bug.
    let proxy = FaultProxy::start(
        server.local_addr(),
        vec![
            // Reply 0 (open) forwarded; reply 1 (tick outcomes)
            // delayed past the client timeout, then delivered late.
            FaultPlan {
                replies: vec![
                    ReplyFault::Forward,
                    ReplyFault::Delay(Duration::from_millis(400)),
                ],
            },
            // Connection for part 2: same delay on the tick reply.
            FaultPlan {
                replies: vec![
                    ReplyFault::Forward,
                    ReplyFault::Forward,
                    ReplyFault::Delay(Duration::from_millis(400)),
                ],
            },
        ],
    );

    let mut legacy = TcpStream::connect(proxy.addr()).unwrap();
    wire::write_frame(
        &mut legacy,
        &Frame::OpenSession(SessionSpec::model_defaults(2)),
    )
    .unwrap();
    let Frame::SessionOpened { session, .. } =
        wire::read_frame(&mut legacy, wire::DEFAULT_MAX_FRAME_LEN).unwrap()
    else {
        panic!("expected SessionOpened");
    };
    wire::write_frame(
        &mut legacy,
        &Frame::Tick {
            session,
            ticks: vec![trace[0].clone()],
        },
    )
    .unwrap();
    legacy
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    // The tick reply is 400 ms out; this read times out first.
    assert!(matches!(
        wire::read_frame(&mut legacy, wire::DEFAULT_MAX_FRAME_LEN),
        Err(wire::ReadFrameError::Io(_))
    ));
    // Legacy pattern: shrug, issue the next request, read the next
    // frame. The late TickOutcomes is sitting in the socket by now —
    // and gets returned as the "answer" to MetricsQuery.
    legacy.set_read_timeout(None).unwrap();
    wire::write_frame(&mut legacy, &Frame::MetricsQuery).unwrap();
    match wire::read_frame(&mut legacy, wire::DEFAULT_MAX_FRAME_LEN).unwrap() {
        Frame::TickOutcomes { .. } => {} // the misattribution, observed
        other => panic!("expected the stale TickOutcomes, got {other:?}"),
    }

    // Part 2 — the fixed client on the same fault: the timeout
    // poisons it, and no later call ever reads the stale frame.
    let mut client = Client::connect(proxy.addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    client
        .set_reply_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    match client.tick(session.id, &trace[0].estimate, &trace[0].input) {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected a timeout Io error, got {other:?}"),
    }
    assert!(client.is_poisoned());
    // Give the delayed reply time to arrive in the socket buffer,
    // exactly as in part 1 — then prove the client refuses to touch it.
    std::thread::sleep(Duration::from_millis(500));
    match client.metrics() {
        Err(ClientError::Poisoned { .. }) => {}
        other => panic!("poisoned client must refuse calls, got {other:?}"),
    }

    drop(proxy);
    server.shutdown();
}

#[test]
fn slow_loris_ties_up_only_its_own_connection_for_a_bounded_time() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(20),
        frame_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    // The attacker: sends two bytes of a length prefix, then stalls.
    let mut loris = TcpStream::connect(server.local_addr()).unwrap();
    loris.write_all(&[0x00, 0x00]).unwrap();
    loris.flush().unwrap();

    // A healthy client on its own connection is entirely unaffected
    // while the attacker is stalling.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    for tick in pinned_trace(10) {
        client
            .tick(session.id, &tick.estimate, &tick.input)
            .unwrap();
    }

    // Counter-based bound: the server drops the stalled connection
    // once the frame deadline lapses. No decode error — the bytes
    // were not malformed, just never finished.
    wait_for(|| server.transport_metrics().connections_dropped >= 1);
    let m = server.transport_metrics();
    assert_eq!(m.connections_dropped, 1);
    assert_eq!(m.decode_errors, 0);

    // The healthy connection is still live after the teardown.
    let outcome = client.tick(session.id, &[0.0], &[0.0]).unwrap();
    assert_eq!(outcome.seq, 10);
    server.shutdown();
}

#[test]
fn idle_sessions_are_evicted_after_ttl() {
    let config = ServerConfig {
        session_ttl: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    client.tick(session.id, &[0.0], &[0.0]).unwrap();

    // Stop using the session; the accept-thread sweep evicts it.
    wait_for(|| server.transport_metrics().sessions_evicted == 1);
    wait_for(|| server.engine_metrics().sessions_active == 0);

    // The eviction is indistinguishable from a close: next use gets
    // UnknownSession, the connection itself is untouched.
    match client.tick(session.id, &[0.0], &[0.0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected UnknownSession after eviction, got {other:?}"),
    }
    let replacement = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    client.tick(replacement.id, &[0.0], &[0.0]).unwrap();
    server.shutdown();
}

#[test]
fn snapshot_restore_over_the_wire_continues_seq_and_stream() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let spec = SessionSpec::model_defaults(2);
    let session = client.open_session(&spec).unwrap();

    let trace = pinned_trace(60);
    let mut outcomes = client.tick_batch(session.id, &trace[..30]).unwrap();
    let state = client.snapshot_session(session.id).unwrap();
    client.close_session(session.id).unwrap();

    // Restore on the same connection under a fresh id; the stream
    // picks up exactly where the snapshot left off.
    let restored = client.restore_session(&spec, &state).unwrap();
    assert_ne!(restored.id, session.id);
    outcomes.extend(client.tick_batch(restored.id, &trace[30..]).unwrap());

    assert_stream_matches(&outcomes, trace.len(), &direct_engine_steps(&trace));

    // A corrupt snapshot is rejected with the typed error, not a
    // hung or poisoned connection.
    let mut bad = state.clone();
    bad.reestimation_period = 0;
    match client.restore_session(&spec, &bad) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadSnapshot),
        other => panic!("expected BadSnapshot, got {other:?}"),
    }
    assert!(!client.is_poisoned());
    server.shutdown();
}
