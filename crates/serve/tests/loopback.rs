//! End-to-end loopback tests for the detection service.
//!
//! The load-bearing guarantees proven here:
//!
//! * the `AdaptiveStep` stream a client receives over TCP is
//!   **byte-identical** to stepping the shared `DetectionEngine`
//!   directly on the same pinned scenario;
//! * a malformed or oversized frame increments the server's
//!   decode-error counter and kills **only** the offending connection
//!   — sessions on other connections keep ticking;
//! * protocol-level misuse (unknown session, bad model, wrong
//!   dimensions) yields typed error replies without harming the
//!   connection;
//! * shutdown joins every thread and leaves the port closed.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use awsad_core::{AdaptiveDetector, AdaptiveStep, DetectorConfig};
use awsad_models::Simulator;
use awsad_runtime::{BackpressurePolicy, DetectionEngine, EngineConfig, Tick, TickOutcome};
use awsad_serve::client::{Client, ClientError};
use awsad_serve::server::{Server, ServerConfig};
use awsad_serve::wire::{self, ErrorCode, Frame, SessionSpec, WireTick};

/// The pinned scenario: vehicle turning (Table 1 row 2) under a
/// deterministic trace that regulates for a while, then takes a bias
/// jump which must trip alarms. Pure arithmetic — no RNG — so every
/// run and every transport sees the exact same floats.
fn pinned_trace(len: usize) -> Vec<WireTick> {
    let model = Simulator::VehicleTurning.build();
    (0..len)
        .map(|t| {
            let mut estimate = model.x0.clone().into_vec();
            estimate[0] += 0.01 * ((t % 4) as f64);
            if t >= len / 2 {
                // Sensor bias attack onset halfway through.
                estimate[0] += 0.9;
            }
            WireTick {
                estimate,
                input: vec![0.0; model.system.input_dim()],
            }
        })
        .collect()
}

/// Steps the same scenario through a local engine (the PR 1 path) and
/// returns its outcome stream.
fn direct_engine_steps(trace: &[WireTick]) -> Vec<AdaptiveStep> {
    let model = Simulator::VehicleTurning.build();
    let w_m = model.default_max_window;
    let det_cfg = DetectorConfig::new(model.threshold.clone(), w_m).unwrap();
    let detector = AdaptiveDetector::new(det_cfg, model.deadline_estimator(w_m).unwrap()).unwrap();
    let logger = model.data_logger(w_m);
    let engine = DetectionEngine::new(EngineConfig::default());
    let (session, outcomes) = engine.add_session(logger, detector);
    for tick in trace {
        session
            .submit(Tick {
                estimate: awsad_linalg::Vector::from_slice(&tick.estimate),
                input: awsad_linalg::Vector::from_slice(&tick.input),
            })
            .unwrap();
    }
    engine.drain();
    outcomes.try_iter().map(|o: TickOutcome| o.step).collect()
}

#[test]
fn remote_stream_is_byte_identical_to_direct_engine() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    assert_eq!(session.state_dim, 1); // vehicle turning is 1-state

    let trace = pinned_trace(120);
    // Mixed call shapes: single ticks, then batches of varying size —
    // the outcome stream must be seamless across them.
    let mut remote = Vec::new();
    for tick in &trace[..5] {
        remote.push(
            client
                .tick(session.id, &tick.estimate, &tick.input)
                .unwrap(),
        );
    }
    for chunk in trace[5..].chunks(37) {
        remote.extend(client.tick_batch(session.id, chunk).unwrap());
    }
    assert_eq!(remote.len(), trace.len());

    // Seqs arrive in submission order and nothing was degraded (Block
    // policy: the server throttles instead).
    for (i, outcome) in remote.iter().enumerate() {
        assert_eq!(outcome.seq, i as u64);
        assert!(!outcome.degraded);
    }

    let direct = direct_engine_steps(&trace);
    let remote_steps: Vec<AdaptiveStep> = remote.iter().map(|o| o.to_step()).collect();
    assert_eq!(
        remote_steps, direct,
        "TCP stream must equal direct stepping"
    );

    // The attack half of the trace must actually alarm — otherwise
    // this test would vacuously compare all-quiet streams.
    assert!(
        remote.iter().any(|o| o.alarm()),
        "pinned scenario must trip at least one alarm"
    );

    client.close_session(session.id).unwrap();
    server.shutdown();
}

/// Polls until the predicate holds or the deadline passes — counter
/// updates race the test thread, never the protocol itself.
fn wait_for(mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !pred() {
        assert!(Instant::now() < deadline, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn malformed_frame_kills_only_its_connection() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();

    // Healthy connection A with an open, ticking session.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(1))
        .unwrap();
    let probe = WireTick {
        estimate: vec![0.0; session.state_dim],
        input: vec![0.0; session.input_dim],
    };
    client
        .tick(session.id, &probe.estimate, &probe.input)
        .unwrap();

    let before = server.transport_metrics();

    // Hostile connection B: a well-framed payload with bad magic.
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    let mut payload = Frame::MetricsQuery.encode();
    payload[0] = b'X';
    hostile
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    hostile.write_all(&payload).unwrap();
    hostile.flush().unwrap();

    // The server counts the decode error and tears connection B down;
    // the teardown is visible to B as an Error frame and/or EOF.
    wait_for(|| {
        let m = server.transport_metrics();
        m.decode_errors == before.decode_errors + 1
            && m.connections_dropped == before.connections_dropped + 1
    });
    match wire::read_frame(&mut hostile, wire::DEFAULT_MAX_FRAME_LEN) {
        Ok(Frame::Error { code, message }) => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(message.contains("protocol violation"), "{message}");
            // After the error reply the stream must be closed.
            assert!(matches!(
                wire::read_frame(&mut hostile, wire::DEFAULT_MAX_FRAME_LEN),
                Err(wire::ReadFrameError::Closed)
            ));
        }
        Err(wire::ReadFrameError::Closed) => {} // reply raced the close: fine
        other => panic!("expected error reply or close, got {other:?}"),
    }

    // Connection A is untouched: its session keeps producing outcomes
    // with uninterrupted seq numbering.
    let outcome = client
        .tick(session.id, &probe.estimate, &probe.input)
        .unwrap();
    assert_eq!(outcome.seq, 1);
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_before_allocation_and_drops_connection() {
    let config = ServerConfig {
        max_frame_len: 4096,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let before = server.transport_metrics();

    // Declare a ~4 GiB payload; the guard must fire on the prefix
    // alone (sending the bytes would take forever — none follow).
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    hostile.write_all(&u32::MAX.to_be_bytes()).unwrap();
    hostile.flush().unwrap();

    wait_for(|| {
        let m = server.transport_metrics();
        m.decode_errors == before.decode_errors + 1
            && m.connections_dropped == before.connections_dropped + 1
    });

    // A healthy client still gets served afterwards.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.decode_errors, before.decode_errors + 1);
    server.shutdown();
}

#[test]
fn protocol_misuse_yields_typed_errors_without_killing_the_connection() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Unknown model row.
    match client.open_session(&SessionSpec::model_defaults(9)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadModel),
        other => panic!("expected BadModel, got {other:?}"),
    }
    // Threshold of the wrong dimension.
    let mut spec = SessionSpec::model_defaults(1);
    spec.threshold = vec![0.1];
    match client.open_session(&spec) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::DimensionMismatch),
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    // Ticking a session that was never opened.
    match client.tick(77, &[0.0], &[0.0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    // A real session rejects wrong-dimension ticks atomically (no
    // partial submission: the next good tick still gets seq 0).
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    match client.tick(session.id, &[0.0, 0.0], &[0.0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::DimensionMismatch),
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    let good = client
        .tick(
            session.id,
            &vec![0.0; session.state_dim],
            &vec![0.0; session.input_dim],
        )
        .unwrap();
    assert_eq!(good.seq, 0);

    // The connection survived all of the above; decode errors stayed
    // at zero (misuse is not malformed framing).
    assert_eq!(client.metrics().unwrap().decode_errors, 0);
    server.shutdown();
}

#[test]
fn session_quota_is_enforced_per_connection() {
    let config = ServerConfig {
        max_sessions_per_connection: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let a = client
        .open_session(&SessionSpec::model_defaults(1))
        .unwrap();
    let _b = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    match client.open_session(&SessionSpec::model_defaults(3)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::SessionLimit),
        other => panic!("expected SessionLimit, got {other:?}"),
    }
    // Closing one frees a slot.
    client.close_session(a.id).unwrap();
    client
        .open_session(&SessionSpec::model_defaults(3))
        .unwrap();
    server.shutdown();
}

#[test]
fn metrics_aggregate_across_connections() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let trace = pinned_trace(30);

    let mut clients: Vec<(Client, u64)> = (0..3)
        .map(|_| {
            let mut c = Client::connect(server.local_addr()).unwrap();
            let s = c.open_session(&SessionSpec::model_defaults(2)).unwrap();
            (c, s.id)
        })
        .collect();
    for (client, session) in clients.iter_mut() {
        client.tick_batch(*session, &trace).unwrap();
    }

    let (client, _) = &mut clients[0];
    let m = client.metrics().unwrap();
    assert_eq!(m.ticks_processed, 3 * trace.len() as u64);
    assert_eq!(m.sessions_active, 3);
    assert_eq!(m.connections_opened, 3);
    assert_eq!(m.connections_dropped, 0);
    assert_eq!(m.decode_errors, 0);
    assert_eq!(m.log_latency.count, m.ticks_processed);
    assert_eq!(m.detect_latency.count, m.ticks_processed);
    assert!(m.detect_latency.mean_ns > 0.0);
    // Frames in: 3×(hello + open + batch) + this metrics query. Out:
    // every reply except the metrics reply itself, whose counter only
    // bumps after this snapshot is written.
    assert_eq!(m.frames_in, 10);
    assert_eq!(m.frames_out, 9);
    server.shutdown();
}

#[test]
fn degrade_policy_reaches_the_wire() {
    // A server running the Degrade policy with a tiny queue: a large
    // batch overflows the session queue faster than the single-CPU
    // pool drains it, so some outcomes come back flagged degraded —
    // and the flag is visible to the remote client.
    let config = ServerConfig {
        engine: EngineConfig {
            workers: 1,
            queue_capacity: 2,
            backpressure: BackpressurePolicy::Degrade,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(2))
        .unwrap();
    let trace = pinned_trace(64);
    let outcomes = client.tick_batch(session.id, &trace).unwrap();
    assert_eq!(outcomes.len(), trace.len());
    let seqs: Vec<u64> = outcomes.iter().map(|o| o.seq).collect();
    assert_eq!(seqs, (0..trace.len() as u64).collect::<Vec<u64>>());
    // Degraded ticks are pinned to the model's default w_m.
    let w_m = Simulator::VehicleTurning.build().default_max_window as u64;
    for o in outcomes.iter().filter(|o| o.degraded) {
        assert_eq!(o.window, w_m);
    }
    assert_eq!(
        client.metrics().unwrap().degraded_ticks,
        outcomes.iter().filter(|o| o.degraded).count() as u64
    );
    server.shutdown();
}

#[test]
fn shutdown_closes_the_port_and_is_idempotent() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client
        .open_session(&SessionSpec::model_defaults(1))
        .unwrap();
    client.tick(session.id, &[0.0, 0.0, 0.0], &[0.0]).unwrap();

    server.shutdown();
    server.shutdown(); // idempotent

    // The connection is gone: the next call fails rather than hangs.
    let res = client.tick(session.id, &[0.0, 0.0, 0.0], &[0.0]);
    assert!(res.is_err(), "call after shutdown must fail, got {res:?}");
    // And the port no longer accepts (allow the OS a moment to tear
    // down the listener backlog).
    wait_for(|| {
        TcpStream::connect(addr).is_err() || {
            // A connect may still succeed against TIME_WAIT artifacts on
            // some kernels; what matters is that no server answers.
            let mut probe = TcpStream::connect(addr).unwrap();
            probe
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let _ = wire::write_frame(&mut probe, &Frame::MetricsQuery);
            wire::read_frame(&mut probe, wire::DEFAULT_MAX_FRAME_LEN).is_err()
        }
    });
}
