//! Property-based coverage for the wire protocol: every one of the 14
//! frame types round-trips through its envelope bit-exactly, and no
//! byte soup — random or structure-aware-mutated — can panic the
//! decoder.
//!
//! The frame generator lives in `awsad-testkit` (shared with the fuzz
//! binary), seeded here from proptest-drawn `u64`s so each property
//! case replays deterministically.

use awsad_serve::wire::{Frame, ReadFrameError, WireError, DEFAULT_MAX_FRAME_LEN};
use awsad_testkit::wirefuzz::{arbitrary_corr, arbitrary_frame, mutate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Encode→decode→re-encode is byte-idempotent for every frame
    /// type, correlation ids and hostile float bit patterns included
    /// (bytes, not floats, so NaN payloads are covered).
    #[test]
    fn envelope_round_trips_bit_exactly(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arbitrary_frame(&mut rng);
        let corr = arbitrary_corr(&mut rng);
        let bytes = frame.encode_with_corr(corr);
        let env = Frame::decode_enveloped(&bytes).expect("clean frame must decode");
        prop_assert_eq!(env.corr, corr);
        prop_assert_eq!(env.frame.type_name(), frame.type_name());
        let again = env.frame.encode_with_corr(env.corr);
        prop_assert_eq!(again, bytes);
    }

    /// Strict decode (no envelope) accepts exactly the corr-less
    /// encoding and flags a trailing correlation id as the 8 trailing
    /// bytes it is.
    #[test]
    fn strict_decode_matches_envelope_discipline(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arbitrary_frame(&mut rng);
        let bare = frame.encode();
        prop_assert!(Frame::decode(&bare).is_ok());
        let with_corr = frame.encode_with_corr(Some(7));
        prop_assert_eq!(
            Frame::decode(&with_corr).unwrap_err(),
            WireError::TrailingBytes(8)
        );
    }

    /// Decoding arbitrary byte soup never panics (both entry points).
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = Frame::decode(&bytes);
        let _ = Frame::decode_enveloped(&bytes);
    }

    /// Structure-aware mutants of valid frames — the adversarial
    /// neighborhood random bytes almost never reach — never panic
    /// either, and whatever still decodes re-encodes cleanly.
    #[test]
    fn mutated_frames_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut payload = arbitrary_frame(&mut rng).encode_with_corr(arbitrary_corr(&mut rng));
        mutate(&mut rng, &mut payload);
        let _ = Frame::decode(&payload);
        if let Ok(env) = Frame::decode_enveloped(&payload) {
            let _ = env.frame.encode_with_corr(env.corr);
        }
    }

    /// The stream layer rejects an oversized declared length before
    /// allocating the payload.
    #[test]
    fn oversized_prefix_rejected_before_allocation(extra in 1u32..=u32::MAX - DEFAULT_MAX_FRAME_LEN) {
        let declared = DEFAULT_MAX_FRAME_LEN + extra;
        let mut stream = Vec::new();
        stream.extend_from_slice(&declared.to_be_bytes());
        stream.extend_from_slice(&[0u8; 8]);
        let got = awsad_serve::wire::read_envelope(
            &mut std::io::Cursor::new(&stream),
            DEFAULT_MAX_FRAME_LEN,
        );
        match got {
            Err(ReadFrameError::Wire(WireError::FrameTooLarge { len, max })) => {
                prop_assert_eq!(len, declared);
                prop_assert_eq!(max, DEFAULT_MAX_FRAME_LEN);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other),
        }
    }
}
