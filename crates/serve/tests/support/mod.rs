//! Shared chaos-test support: the frame-aware fault-injection TCP
//! proxy (now hosted by `awsad-testkit`, re-exported here so the
//! chaos suite keeps its imports) plus the pinned attack scenario and
//! its direct-engine reference.

#![allow(dead_code)]

pub use awsad_testkit::proxy::{FaultPlan, FaultProxy, ReplyFault};

use awsad_core::{AdaptiveDetector, AdaptiveStep, DetectorConfig};
use awsad_models::Simulator;
use awsad_runtime::{DetectionEngine, EngineConfig, Tick, TickOutcome};
use awsad_serve::wire::WireTick;

/// The pinned scenario used across the serve test suites: vehicle
/// turning (Table 1 row 2) under a deterministic trace that regulates
/// for a while, then takes a bias jump which must trip alarms. Pure
/// arithmetic — no RNG — so every run and every transport sees the
/// exact same floats.
pub fn pinned_trace(len: usize) -> Vec<WireTick> {
    let model = Simulator::VehicleTurning.build();
    (0..len)
        .map(|t| {
            let mut estimate = model.x0.clone().into_vec();
            estimate[0] += 0.01 * ((t % 4) as f64);
            if t >= len / 2 {
                // Sensor bias attack onset halfway through.
                estimate[0] += 0.9;
            }
            WireTick {
                estimate,
                input: vec![0.0; model.system.input_dim()],
            }
        })
        .collect()
}

/// Steps the pinned scenario through a local engine — the reference
/// stream every transported/resumed run must equal byte-for-byte.
pub fn direct_engine_steps(trace: &[WireTick]) -> Vec<AdaptiveStep> {
    let model = Simulator::VehicleTurning.build();
    let w_m = model.default_max_window;
    let det_cfg = DetectorConfig::new(model.threshold.clone(), w_m).unwrap();
    let detector = AdaptiveDetector::new(det_cfg, model.deadline_estimator(w_m).unwrap()).unwrap();
    let logger = model.data_logger(w_m);
    let engine = DetectionEngine::new(EngineConfig::default());
    let (session, outcomes) = engine.add_session(logger, detector);
    for tick in trace {
        session
            .submit(Tick {
                estimate: awsad_linalg::Vector::from_slice(&tick.estimate),
                input: awsad_linalg::Vector::from_slice(&tick.input),
            })
            .unwrap();
    }
    engine.drain();
    outcomes.try_iter().map(|o: TickOutcome| o.step).collect()
}
