//! Blocking client for the AWSAD detection service.
//!
//! [`Client`] wraps one TCP connection and mirrors the server's
//! request/reply discipline: every call writes one frame and blocks
//! for its reply. Batching is the throughput lever — a
//! [`Client::tick_batch`] of `n` ticks costs one round trip instead
//! of `n`, and the server still returns one [`WireOutcome`] per tick
//! in submission order, so the reconstructed `AdaptiveStep` stream is
//! identical to stepping the engine in-process.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{
    read_frame, write_frame, ErrorCode, Frame, ReadFrameError, SessionSpec, WireError, WireMetrics,
    WireOutcome, WireTick, DEFAULT_MAX_FRAME_LEN,
};

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server sent bytes violating the protocol.
    Wire(WireError),
    /// The server closed the connection.
    Closed,
    /// The server answered with a typed error frame.
    Server {
        /// Failure category.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a well-formed frame of the wrong
    /// type for the request (a server bug or a desynchronized
    /// stream).
    UnexpectedReply(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::UnexpectedReply(expected) => {
                write!(f, "unexpected reply frame (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ReadFrameError> for ClientError {
    fn from(e: ReadFrameError) -> Self {
        match e {
            ReadFrameError::Closed => ClientError::Closed,
            ReadFrameError::Io(e) => ClientError::Io(e),
            ReadFrameError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A session opened on the server, as the client sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSession {
    /// Server-assigned session id; pass to [`Client::tick`],
    /// [`Client::tick_batch`] and [`Client::close_session`].
    pub id: u64,
    /// The plant's state dimension — every tick's estimate length.
    pub state_dim: usize,
    /// The plant's input dimension — every tick's input length.
    pub input_dim: usize,
}

/// A blocking connection to one detection server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_len: u32,
}

impl Client {
    /// Connects, disables Nagle, and performs the `Hello` handshake.
    ///
    /// # Errors
    ///
    /// Connection failures surface as [`ClientError::Io`]; a
    /// version-incompatible server surfaces as [`ClientError::Wire`]
    /// or [`ClientError::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        };
        let hello = Frame::Hello {
            client: format!("awsad-serve-client/{}", env!("CARGO_PKG_VERSION")),
        };
        match client.call(&hello)? {
            Frame::HelloAck { .. } => Ok(client),
            other => Err(unexpected("HelloAck", other)),
        }
    }

    /// Sets a read timeout for replies (`None` = block forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Opens a detection session described by `spec`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::BadModel`] /
    /// [`ErrorCode::SessionLimit`] / [`ErrorCode::DimensionMismatch`]
    /// on a rejected spec, plus the usual transport failures.
    pub fn open_session(&mut self, spec: &SessionSpec) -> Result<RemoteSession> {
        match self.call(&Frame::OpenSession(spec.clone()))? {
            Frame::SessionOpened {
                session,
                state_dim,
                input_dim,
            } => Ok(RemoteSession {
                id: session,
                state_dim: state_dim as usize,
                input_dim: input_dim as usize,
            }),
            other => Err(unexpected("SessionOpened", other)),
        }
    }

    /// Submits one measurement tick and blocks for its outcome.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on unknown sessions or dimension
    /// mismatches; transport failures otherwise.
    pub fn tick(&mut self, session: u64, estimate: &[f64], input: &[f64]) -> Result<WireOutcome> {
        let mut outcomes = self.tick_batch(
            session,
            &[WireTick {
                estimate: estimate.to_vec(),
                input: input.to_vec(),
            }],
        )?;
        outcomes
            .pop()
            .ok_or(ClientError::UnexpectedReply("exactly one outcome"))
    }

    /// Submits a batch of ticks in one round trip and blocks until
    /// the server returns one outcome per tick, in submission order.
    ///
    /// # Errors
    ///
    /// As [`Client::tick`]; additionally
    /// [`ClientError::UnexpectedReply`] if the server returns a
    /// mismatched outcome count or session id.
    pub fn tick_batch(&mut self, session: u64, ticks: &[WireTick]) -> Result<Vec<WireOutcome>> {
        let n = ticks.len();
        let request = Frame::Tick {
            session,
            ticks: ticks.to_vec(),
        };
        match self.call(&request)? {
            Frame::TickOutcomes {
                session: got_session,
                outcomes,
            } => {
                if got_session != session || outcomes.len() != n {
                    return Err(ClientError::UnexpectedReply(
                        "outcomes for the submitted batch",
                    ));
                }
                Ok(outcomes)
            }
            other => Err(unexpected("TickOutcomes", other)),
        }
    }

    /// Closes a session (idempotent server-side state: closing an
    /// unknown id is a [`ClientError::Server`] with
    /// [`ErrorCode::UnknownSession`]).
    ///
    /// # Errors
    ///
    /// As documented above, plus transport failures.
    pub fn close_session(&mut self, session: u64) -> Result<()> {
        match self.call(&Frame::CloseSession { session })? {
            Frame::SessionClosed { .. } => Ok(()),
            other => Err(unexpected("SessionClosed", other)),
        }
    }

    /// Fetches the server's engine counters plus transport counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&mut self) -> Result<WireMetrics> {
        match self.call(&Frame::MetricsQuery)? {
            Frame::MetricsReply(m) => Ok(m),
            other => Err(unexpected("MetricsReply", other)),
        }
    }

    /// One request/reply round trip. [`Frame::Error`] replies are
    /// lifted into [`ClientError::Server`] here so every typed method
    /// above only matches its success frame.
    fn call(&mut self, request: &Frame) -> Result<Frame> {
        write_frame(&mut self.writer, request)?;
        match read_frame(&mut self.reader, self.max_frame_len)? {
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            frame => Ok(frame),
        }
    }
}

fn unexpected(expected: &'static str, _got: Frame) -> ClientError {
    ClientError::UnexpectedReply(expected)
}
