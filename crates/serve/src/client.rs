//! Blocking client for the AWSAD detection service.
//!
//! [`Client`] wraps one TCP connection and mirrors the server's
//! request/reply discipline: every call writes one frame and blocks
//! for its reply. Batching is the throughput lever — a
//! [`Client::tick_batch`] of `n` ticks costs one round trip instead
//! of `n`, and the server still returns one [`WireOutcome`] per tick
//! in submission order, so the reconstructed `AdaptiveStep` stream is
//! identical to stepping the engine in-process.
//!
//! # Reply correlation and poisoning
//!
//! Every request carries a correlation id that the server echoes on
//! the reply, and the client verifies the echo. This closes a real
//! desync bug: a reply that arrives *after* a
//! [`Client::set_reply_timeout`] expiry used to sit in the socket
//! buffer and be delivered as the answer to the *next* call —
//! silently attributing outcomes to the wrong request. Now any
//! mid-call transport failure (timeout, I/O error, protocol
//! violation, correlation mismatch, wrong reply shape) marks the
//! client **poisoned**: the stream position is unknown, so every
//! subsequent call fails fast with [`ClientError::Poisoned`] instead
//! of reading a stale frame. A poisoned client cannot be revived —
//! reconnect (or use [`crate::ReconnectingClient`], which does so
//! automatically and restores sessions from snapshots).
//!
//! Typed [`ClientError::Server`] errors do *not* poison: they are
//! well-framed replies on a still-synchronized stream.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{
    read_envelope, write_frame_corr, ErrorCode, Frame, ReadFrameError, RingMember, SessionSpec,
    WireError, WireMetrics, WireOutcome, WireSessionState, WireTick, DEFAULT_MAX_FRAME_LEN,
};

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server sent bytes violating the protocol.
    Wire(WireError),
    /// The server closed the connection.
    Closed,
    /// The server answered with a typed error frame.
    Server {
        /// Failure category.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a well-formed frame of the wrong
    /// type for the request (a server bug or a desynchronized
    /// stream).
    UnexpectedReply {
        /// The frame type the request called for.
        expected: &'static str,
        /// The frame type that actually arrived.
        got: &'static str,
    },
    /// The reply's correlation id does not match the request's — the
    /// stream is delivering answers to some earlier call.
    Desync {
        /// Correlation id this call sent.
        sent: u64,
        /// Correlation id the reply carried.
        got: u64,
    },
    /// A previous call on this client failed mid-stream; the reply
    /// stream position is unknown and the connection must not be
    /// reused.
    Poisoned {
        /// What poisoned the client.
        reason: &'static str,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::UnexpectedReply { expected, got } => {
                write!(f, "unexpected reply frame (expected {expected}, got {got})")
            }
            ClientError::Desync { sent, got } => write!(
                f,
                "reply stream desynchronized (sent correlation id {sent}, reply carries {got})"
            ),
            ClientError::Poisoned { reason } => write!(
                f,
                "client poisoned by an earlier mid-stream failure ({reason}); reconnect required"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ReadFrameError> for ClientError {
    fn from(e: ReadFrameError) -> Self {
        match e {
            ReadFrameError::Closed => ClientError::Closed,
            ReadFrameError::Io(e) => ClientError::Io(e),
            ReadFrameError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A session opened on the server, as the client sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSession {
    /// Server-assigned session id; pass to [`Client::tick`],
    /// [`Client::tick_batch`] and [`Client::close_session`].
    pub id: u64,
    /// The plant's state dimension — every tick's estimate length.
    pub state_dim: usize,
    /// The plant's input dimension — every tick's input length.
    pub input_dim: usize,
}

/// A blocking connection to one detection server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_len: u32,
    next_corr: u64,
    poisoned: Option<&'static str>,
}

impl Client {
    /// Connects, disables Nagle, and performs the `Hello` handshake.
    ///
    /// # Errors
    ///
    /// Connection failures surface as [`ClientError::Io`]; a
    /// version-incompatible server surfaces as [`ClientError::Wire`]
    /// or [`ClientError::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            next_corr: 1,
            poisoned: None,
        };
        let hello = Frame::Hello {
            client: format!("awsad-serve-client/{}", env!("CARGO_PKG_VERSION")),
        };
        match client.call(&hello)? {
            Frame::HelloAck { .. } => Ok(client),
            other => Err(client.unexpected("HelloAck", &other)),
        }
    }

    /// Sets a read timeout for replies (`None` = block forever).
    ///
    /// A call that times out poisons the client (see the module docs):
    /// the reply may still arrive later, and reading it as the answer
    /// to a subsequent request would misattribute outcomes.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Why this client refuses calls, if a mid-stream failure has
    /// poisoned it; `None` while healthy.
    pub fn poisoned(&self) -> Option<&'static str> {
        self.poisoned
    }

    /// Whether a mid-stream failure has poisoned this client (every
    /// further call will fail with [`ClientError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Opens a detection session described by `spec`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::BadModel`] /
    /// [`ErrorCode::SessionLimit`] / [`ErrorCode::DimensionMismatch`]
    /// on a rejected spec, plus the usual transport failures.
    pub fn open_session(&mut self, spec: &SessionSpec) -> Result<RemoteSession> {
        match self.call(&Frame::OpenSession(spec.clone()))? {
            Frame::SessionOpened {
                session,
                state_dim,
                input_dim,
            } => Ok(RemoteSession {
                id: session,
                state_dim: state_dim as usize,
                input_dim: input_dim as usize,
            }),
            other => Err(self.unexpected("SessionOpened", &other)),
        }
    }

    /// Submits one measurement tick and blocks for its outcome.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on unknown sessions or dimension
    /// mismatches; transport failures otherwise.
    pub fn tick(&mut self, session: u64, estimate: &[f64], input: &[f64]) -> Result<WireOutcome> {
        let mut outcomes = self.tick_batch(
            session,
            &[WireTick {
                estimate: estimate.to_vec(),
                input: input.to_vec(),
            }],
        )?;
        match outcomes.pop() {
            Some(outcome) => Ok(outcome),
            None => {
                // tick_batch checked the count, so this is
                // unreachable; poison anyway rather than trust a
                // stream that just contradicted itself.
                self.poisoned = Some("empty outcome batch for a one-tick request");
                Err(ClientError::UnexpectedReply {
                    expected: "exactly one outcome",
                    got: "empty TickOutcomes",
                })
            }
        }
    }

    /// Submits a batch of ticks in one round trip and blocks until
    /// the server returns one outcome per tick, in submission order.
    ///
    /// # Errors
    ///
    /// As [`Client::tick`]; additionally
    /// [`ClientError::UnexpectedReply`] if the server returns a
    /// mismatched outcome count or session id (which also poisons the
    /// client — such a reply means the stream cannot be trusted).
    pub fn tick_batch(&mut self, session: u64, ticks: &[WireTick]) -> Result<Vec<WireOutcome>> {
        let n = ticks.len();
        let request = Frame::Tick {
            session,
            ticks: ticks.to_vec(),
        };
        match self.call(&request)? {
            Frame::TickOutcomes {
                session: got_session,
                outcomes,
            } => {
                if got_session != session || outcomes.len() != n {
                    self.poisoned = Some("outcome batch does not match the submitted batch");
                    return Err(ClientError::UnexpectedReply {
                        expected: "outcomes for the submitted batch",
                        got: "TickOutcomes",
                    });
                }
                Ok(outcomes)
            }
            other => Err(self.unexpected("TickOutcomes", &other)),
        }
    }

    /// Fetches a bit-exact snapshot of a session's detector state —
    /// enough to rebuild it with [`Client::restore_session`] on any
    /// connection (including to a restarted server) such that the
    /// resumed outcome stream is byte-identical to an uninterrupted
    /// run.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::UnknownSession`] on
    /// an id this connection does not own; transport failures
    /// otherwise. A pre-snapshot server answers
    /// [`ClientError::Wire`] (unknown frame type) and drops the
    /// connection.
    pub fn snapshot_session(&mut self, session: u64) -> Result<WireSessionState> {
        match self.call(&Frame::SnapshotSession { session })? {
            Frame::SessionSnapshot {
                session: got_session,
                state,
            } => {
                if got_session != session {
                    self.poisoned = Some("snapshot for a different session");
                    return Err(ClientError::UnexpectedReply {
                        expected: "snapshot of the requested session",
                        got: "SessionSnapshot",
                    });
                }
                Ok(state)
            }
            other => Err(self.unexpected("SessionSnapshot", &other)),
        }
    }

    /// Opens a session resumed from `state` (as returned by
    /// [`Client::snapshot_session`]) under `spec` — the spec must be
    /// the one the snapshotted session was opened with. The server
    /// assigns a fresh id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::BadSnapshot`] when
    /// the state fails validation against the spec; otherwise as
    /// [`Client::open_session`].
    pub fn restore_session(
        &mut self,
        spec: &SessionSpec,
        state: &WireSessionState,
    ) -> Result<RemoteSession> {
        let request = Frame::RestoreSession {
            spec: spec.clone(),
            state: state.clone(),
        };
        match self.call(&request)? {
            Frame::SessionOpened {
                session,
                state_dim,
                input_dim,
            } => Ok(RemoteSession {
                id: session,
                state_dim: state_dim as usize,
                input_dim: input_dim as usize,
            }),
            other => Err(self.unexpected("SessionOpened", &other)),
        }
    }

    /// Swaps a session's plant model mid-stream (accepted model
    /// drift): the server drains the session's queue, rebuilds its
    /// deadline estimator around `(a, b)` (row-major, `n x n` and
    /// `n x m`), and replies with the session's new recalibration
    /// count. Every tick before this call is stepped under the old
    /// model, every tick after it under the new one — nothing is
    /// dropped or stepped twice.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::UnknownSession`] on
    /// a foreign id, or [`ErrorCode::DimensionMismatch`] when the
    /// model does not fit the session (the session is untouched
    /// then); transport failures otherwise. A pre-recalibration
    /// server answers [`ClientError::Wire`] (unknown frame type) and
    /// drops the connection.
    pub fn recalibrate(
        &mut self,
        session: u64,
        state_dim: u32,
        input_dim: u32,
        a: &[f64],
        b: &[f64],
    ) -> Result<u64> {
        let request = Frame::Recalibrate {
            session,
            state_dim,
            input_dim,
            a: a.to_vec(),
            b: b.to_vec(),
        };
        match self.call(&request)? {
            Frame::RecalibrateAck {
                session: got_session,
                recal_count,
            } => {
                if got_session != session {
                    self.poisoned = Some("recalibrate ack for a different session");
                    return Err(ClientError::UnexpectedReply {
                        expected: "ack for the recalibrated session",
                        got: "RecalibrateAck",
                    });
                }
                Ok(recal_count)
            }
            other => Err(self.unexpected("RecalibrateAck", &other)),
        }
    }

    /// Closes a session (idempotent server-side state: closing an
    /// unknown id is a [`ClientError::Server`] with
    /// [`ErrorCode::UnknownSession`]).
    ///
    /// # Errors
    ///
    /// As documented above, plus transport failures.
    pub fn close_session(&mut self, session: u64) -> Result<()> {
        match self.call(&Frame::CloseSession { session })? {
            Frame::SessionClosed { .. } => Ok(()),
            other => Err(self.unexpected("SessionClosed", &other)),
        }
    }

    /// Fetches the server's engine counters plus transport counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&mut self) -> Result<WireMetrics> {
        match self.call(&Frame::MetricsQuery)? {
            Frame::MetricsReply(m) => Ok(m),
            other => Err(self.unexpected("MetricsReply", &other)),
        }
    }

    /// Stores `state` as the backup copy of the session lineage
    /// identified by the cluster-wide replica `key` (cluster
    /// replication egress — see `awsad-cluster`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::BadSnapshot`] when
    /// the receiver already holds `generation` or newer for this key;
    /// transport failures otherwise.
    pub fn replicate_snapshot(
        &mut self,
        key: u64,
        generation: u64,
        spec: &SessionSpec,
        state: &WireSessionState,
    ) -> Result<()> {
        let request = Frame::ReplicateSnapshot {
            key,
            generation,
            spec: spec.clone(),
            state: state.clone(),
        };
        match self.call(&request)? {
            Frame::ReplicateAck {
                key: got_key,
                generation: got_generation,
            } => {
                if got_key != key || got_generation != generation {
                    self.poisoned = Some("replicate ack does not match the submitted snapshot");
                    return Err(ClientError::UnexpectedReply {
                        expected: "ack of the submitted snapshot",
                        got: "ReplicateAck",
                    });
                }
                Ok(())
            }
            other => Err(self.unexpected("ReplicateAck", &other)),
        }
    }

    /// Promotes the replica stored under `key` into a live session on
    /// this connection, returning the fresh session id together with
    /// the state it was restored from (whose `next_seq` tells the
    /// caller how far the replica had caught up).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::UnknownSession`]
    /// when no replica is held under `key` (including after a prior
    /// promote — promotion consumes the replica); transport failures
    /// otherwise.
    pub fn promote_session(&mut self, key: u64) -> Result<(u64, WireSessionState)> {
        match self.call(&Frame::PromoteSession { key })? {
            Frame::SessionSnapshot { session, state } => Ok((session, state)),
            other => Err(self.unexpected("SessionSnapshot", &other)),
        }
    }

    /// Pushes a ring-membership view to the server, returning the
    /// epoch now in force there (which is `epoch` when the update was
    /// accepted, or a newer value when the server already knew
    /// better).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ring_update(&mut self, epoch: u64, members: &[RingMember]) -> Result<u64> {
        let request = Frame::RingUpdate {
            epoch,
            members: members.to_vec(),
        };
        match self.call(&request)? {
            Frame::ReplicateAck { generation, .. } => Ok(generation),
            other => Err(self.unexpected("ReplicateAck", &other)),
        }
    }

    /// One request/reply round trip. [`Frame::Error`] replies are
    /// lifted into [`ClientError::Server`] here so every typed method
    /// above only matches its success frame.
    ///
    /// This is where the stream-integrity invariants live: a poisoned
    /// client refuses the call outright; a transport failure or a
    /// correlation-id mismatch poisons it. Server error frames pass
    /// through without poisoning — they are well-framed replies on a
    /// healthy stream.
    fn call(&mut self, request: &Frame) -> Result<Frame> {
        if let Some(reason) = self.poisoned {
            return Err(ClientError::Poisoned { reason });
        }
        let corr = self.next_corr;
        self.next_corr += 1;
        if let Err(e) = write_frame_corr(&mut self.writer, request, Some(corr)) {
            self.poisoned = Some("write failed mid-call");
            return Err(e.into());
        }
        let envelope = match read_envelope(&mut self.reader, self.max_frame_len) {
            Ok(envelope) => envelope,
            Err(e) => {
                self.poisoned = Some(match &e {
                    ReadFrameError::Closed => "connection closed mid-call",
                    ReadFrameError::Io(_) => "read failed or timed out mid-call",
                    ReadFrameError::Wire(_) => "malformed reply frame",
                });
                return Err(e.into());
            }
        };
        // A legacy server does not echo correlation ids; `None` is
        // trusted for compatibility. A *wrong* id is proof of desync.
        if let Some(got) = envelope.corr {
            if got != corr {
                self.poisoned = Some("reply correlation id mismatch");
                return Err(ClientError::Desync { sent: corr, got });
            }
        }
        match envelope.frame {
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            frame => Ok(frame),
        }
    }

    /// Records an unexpected (but well-framed) reply. The correlation
    /// id matched, yet the frame type is wrong for the request — a
    /// server bug either way, so the stream cannot be trusted.
    fn unexpected(&mut self, expected: &'static str, got: &Frame) -> ClientError {
        self.poisoned = Some("reply frame type did not match the request");
        ClientError::UnexpectedReply {
            expected,
            got: got.type_name(),
        }
    }
}
