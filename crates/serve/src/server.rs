//! The AWSAD detection server: a TCP front-end over one shared
//! [`DetectionEngine`].
//!
//! Threading model: one accept thread plus **one reader thread per
//! connection**. Sessions live in a server-wide registry keyed by
//! session id, but every entry records the connection that opened it
//! and lookups check that owner — so one client can never address
//! another's session, exactly as when the map was connection-local.
//! Each connection speaks a strict request/reply discipline: every
//! decoded frame is answered by exactly one reply frame, and a
//! request's correlation id (when present) is echoed on its reply.
//! Cross-connection concurrency comes from the engine's worker pool,
//! not from interleaving on a socket.
//!
//! Session lifetime: a connection's sessions are closed when the
//! connection ends (any cause). A client that wants its detector
//! state to survive transport failure snapshots it
//! ([`Frame::SnapshotSession`]) and restores it on a fresh connection
//! ([`Frame::RestoreSession`]) — the engine rebuilds the session
//! bit-exactly, so the resumed outcome stream is byte-identical to an
//! uninterrupted run. `crate::ReconnectingClient` automates this.
//! Orthogonally, [`ServerConfig::session_ttl`] lets the server evict
//! sessions a *live* connection has left idle; the accept thread
//! sweeps for them between accepts.
//!
//! Hostile-input posture, per the serving-layer design:
//!
//! * the declared frame length is checked against
//!   [`ServerConfig::max_frame_len`] *before* any allocation;
//! * a malformed frame (bad magic/version/type, truncation, trailing
//!   bytes) increments the `decode_errors` transport counter and
//!   tears down **only that connection** — its sessions close, queued
//!   ticks still drain, and every other session keeps ticking;
//! * sockets carry a read timeout so connection threads observe the
//!   shutdown flag within [`ServerConfig::read_timeout`] even while a
//!   peer is idle or trickling bytes mid-frame, and a frame that does
//!   not complete within [`ServerConfig::frame_deadline`] of its
//!   first byte drops the connection — a slow-loris peer ties up only
//!   its own connection, and only for a bounded time;
//! * overload maps onto the engine's own backpressure: under
//!   [`BackpressurePolicy::Block`](awsad_runtime::BackpressurePolicy)
//!   a flooding client is throttled by its own unanswered batch, and
//!   under `Degrade` its over-quota ticks take the flagged cheap path
//!   — either way other sessions' latency is protected.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use awsad_core::{AdaptiveDetector, DataLogger, DetectorConfig};
use awsad_linalg::{Matrix, Vector};
use awsad_models::Simulator;
use awsad_reach::{CacheConfig, DeadlineCache};
use awsad_runtime::{
    DetectionEngine, EngineConfig, LatencyHistogram, RuntimeMetrics, SessionHandle, Tick,
    TickOutcome,
};

use crate::wire::{
    read_envelope, write_frame, write_frame_corr, ErrorCode, Frame, ReadFrameError, RingMember,
    SessionSpec, WireLatency, WireMetrics, WireOutcome, WireSessionState, DEFAULT_MAX_FRAME_LEN,
};

/// One session snapshot headed for a backup peer, handed to the
/// server's [`ReplicationSink`] after every accepted tick batch.
#[derive(Debug, Clone)]
pub struct ReplicationUpdate {
    /// The live session id on the primary.
    pub session: u64,
    /// Snapshot generation (strictly increasing per session lineage);
    /// the backup rejects anything not newer than what it holds.
    pub generation: u64,
    /// The spec the session was opened with — the backup needs it to
    /// rebuild the detector stack at promotion time.
    pub spec: SessionSpec,
    /// The session state as of the just-answered batch.
    pub state: WireSessionState,
}

/// Where a replication-enabled server sends its post-batch snapshots.
///
/// Implementations (see `awsad-cluster`) typically enqueue the update
/// for a background sender so the hot reply path never waits on the
/// backup's socket — replication is asynchronous by design, and the
/// cluster router compensates for the resulting lag at promotion time
/// by comparing the promoted replica's progress against its own
/// checkpoint.
pub trait ReplicationSink: Send + Sync {
    /// Accepts one update. Returns the sink's current backlog —
    /// updates accepted but not yet acknowledged by the backup,
    /// including this one — which the server records as the
    /// replication-lag high-water mark.
    fn replicate(&self, update: ReplicationUpdate) -> u64;
    /// The server accepted ring epoch `epoch` with membership
    /// `members`; the sink re-derives its backup target from it.
    fn ring_update(&self, epoch: u64, members: &[RingMember]);
}

/// Server construction parameters.
#[derive(Clone)]
pub struct ServerConfig {
    /// Engine configuration (worker count, queue capacity,
    /// backpressure policy) for the shared detection engine.
    pub engine: EngineConfig,
    /// Maximum accepted frame payload length; larger declarations are
    /// rejected before allocation and drop the connection.
    pub max_frame_len: u32,
    /// Socket read timeout — the cadence at which idle connection
    /// threads re-check the shutdown flag.
    pub read_timeout: Duration,
    /// How long a `Tick` request may wait for the engine to produce
    /// its outcomes before the server answers with
    /// [`ErrorCode::Timeout`].
    pub outcome_timeout: Duration,
    /// Maximum sessions one connection may hold open.
    pub max_sessions_per_connection: usize,
    /// Name returned in the `HelloAck` handshake.
    pub server_name: String,
    /// Evict sessions that have not served a request for this long
    /// (`None` — the default — never evicts). Eviction closes the
    /// session exactly as `CloseSession` would; the owning client's
    /// next use gets [`ErrorCode::UnknownSession`]. The sweep runs on
    /// the accept thread between accepts, so expect eviction within
    /// roughly a sweep interval (~10 ms) past the deadline.
    pub session_ttl: Option<Duration>,
    /// Maximum wall-clock time a single frame may take from its first
    /// byte to its last. A peer that stalls mid-frame past this
    /// deadline is disconnected (counted in `connections_dropped`),
    /// bounding how long a slow-loris writer can hold a connection
    /// thread.
    pub frame_deadline: Duration,
    /// When set, every accepted tick batch is followed by a session
    /// snapshot handed to this sink for asynchronous replication to a
    /// backup peer (`None` — the default — replicates nothing).
    pub replication: Option<Arc<dyn ReplicationSink>>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("engine", &self.engine)
            .field("max_frame_len", &self.max_frame_len)
            .field("read_timeout", &self.read_timeout)
            .field("outcome_timeout", &self.outcome_timeout)
            .field(
                "max_sessions_per_connection",
                &self.max_sessions_per_connection,
            )
            .field("server_name", &self.server_name)
            .field("session_ttl", &self.session_ttl)
            .field("frame_deadline", &self.frame_deadline)
            .field("replication", &self.replication.as_ref().map(|_| ".."))
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_millis(100),
            outcome_timeout: Duration::from_secs(30),
            max_sessions_per_connection: 64,
            server_name: format!("awsad-serve/{}", env!("CARGO_PKG_VERSION")),
            session_ttl: None,
            frame_deadline: Duration::from_secs(30),
            replication: None,
        }
    }
}

/// Atomic transport counters (the serving-layer analogue of
/// [`RuntimeMetrics`]).
#[derive(Debug, Default)]
struct TransportInner {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    decode_errors: AtomicU64,
    connections_opened: AtomicU64,
    connections_dropped: AtomicU64,
    sessions_evicted: AtomicU64,
    recalibrations_rejected: AtomicU64,
}

/// A point-in-time copy of the server's transport counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportMetrics {
    /// Frames successfully decoded across all connections.
    pub frames_in: u64,
    /// Reply frames written across all connections.
    pub frames_out: u64,
    /// Malformed or oversized frames observed (each one also drops
    /// its connection).
    pub decode_errors: u64,
    /// Connections accepted over the server's lifetime.
    pub connections_opened: u64,
    /// Connections torn down for cause — decode error or transport
    /// I/O failure (clean client closes do not count).
    pub connections_dropped: u64,
    /// Sessions closed by the idle-TTL sweep
    /// ([`ServerConfig::session_ttl`]).
    pub sessions_evicted: u64,
    /// `Recalibrate` requests refused without touching their session
    /// (wrong dimensions or a model the detector rejected). Accepted
    /// swaps count in [`RuntimeMetrics::recalibrations`] instead.
    pub recalibrations_rejected: u64,
}

impl TransportInner {
    fn snapshot(&self) -> TransportMetrics {
        TransportMetrics {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_dropped: self.connections_dropped.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            recalibrations_rejected: self.recalibrations_rejected.load(Ordering::Relaxed),
        }
    }
}

/// The mutable half of a registered session. Locked for the duration
/// of each request touching the session; the TTL sweep `try_lock`s it
/// so an in-flight request is never evicted under itself.
struct SessionInner {
    handle: SessionHandle,
    outcomes: mpsc::Receiver<TickOutcome>,
}

/// One open session in the server-wide registry.
struct ServeSession {
    /// Connection that opened it; lookups from any other connection
    /// answer `UnknownSession`.
    owner: u64,
    state_dim: usize,
    input_dim: usize,
    /// Retained for replication egress: the backup rebuilds the
    /// detector stack from this spec at promotion time.
    spec: SessionSpec,
    last_used: Mutex<Instant>,
    inner: Mutex<SessionInner>,
}

/// One backup copy held for a remote primary's session, keyed by the
/// cluster-wide replica key.
struct ReplicaEntry {
    generation: u64,
    spec: SessionSpec,
    state: WireSessionState,
}

struct ServerShared {
    config: ServerConfig,
    engine: DetectionEngine,
    transport: TransportInner,
    shutdown: AtomicBool,
    next_conn_id: AtomicU64,
    /// Server-wide session registry; entries carry their owning
    /// connection id. Dropping an entry closes its session (the
    /// handle's `Drop` does the close).
    sessions: Mutex<HashMap<u64, Arc<ServeSession>>>,
    /// Backup copies this server holds for remote primaries'
    /// sessions, waiting to be promoted on failover.
    replicas: Mutex<HashMap<u64, ReplicaEntry>>,
    /// Highest ring epoch accepted via [`Frame::RingUpdate`]; older
    /// epochs are ignored (and acked with this value).
    ring_epoch: AtomicU64,
    /// Joined on shutdown; finished threads are reaped opportunistically
    /// by the accept loop so a long-lived server does not accumulate
    /// handles for long-gone connections.
    connections: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running detection server. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop, wakes every
/// connection thread, and joins them all.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Mutex<Option<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accepts let the same thread run the idle-session
        // sweep between connection attempts.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            engine: DetectionEngine::new(config.engine.clone()),
            config,
            transport: TransportInner::default(),
            shutdown: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(1),
            sessions: Mutex::new(HashMap::new()),
            replicas: Mutex::new(HashMap::new()),
            ring_epoch: AtomicU64::new(0),
            connections: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("awsad-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            local_addr,
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The address the server is listening on (with the actual port
    /// when bound ephemerally).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the shared engine's counters.
    pub fn engine_metrics(&self) -> RuntimeMetrics {
        self.shared.engine.metrics()
    }

    /// A point-in-time copy of the transport counters.
    pub fn transport_metrics(&self) -> TransportMetrics {
        self.shared.transport.snapshot()
    }

    /// Stops accepting, wakes every connection thread, and joins them
    /// all. Sessions close; already-queued ticks still drain on the
    /// engine. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept thread polls the shutdown flag between
        // non-blocking accept attempts; a throwaway connection is not
        // needed but hurries it along on a loaded box.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.lock().expect("accept lock").take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self
            .shared
            .connections
            .lock()
            .expect("connections lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // The listener's non-blocking flag is inherited by
                // accepted sockets on some platforms; connection
                // threads want plain blocking reads with a timeout.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                shared
                    .transport
                    .connections_opened
                    .fetch_add(1, Ordering::Relaxed);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name("awsad-serve-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared, conn_id))
                    .expect("spawn connection thread");
                let mut conns = shared.connections.lock().expect("connections lock");
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                sweep_idle_sessions(&shared);
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE); back off
                // briefly instead of spinning.
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Closes registry sessions idle past [`ServerConfig::session_ttl`].
/// A session whose `inner` lock is held is mid-request — by
/// definition not idle — and is skipped via `try_lock`.
fn sweep_idle_sessions(shared: &ServerShared) {
    let Some(ttl) = shared.config.session_ttl else {
        return;
    };
    let now = Instant::now();
    let mut registry = shared.sessions.lock().expect("session registry lock");
    registry.retain(|_, session| {
        let Ok(_inner) = session.inner.try_lock() else {
            return true;
        };
        // Re-check idleness under the inner lock: a request that
        // finished between our `now` and this try_lock has already
        // refreshed `last_used`.
        let last = *session.last_used.lock().expect("last_used lock");
        if now.saturating_duration_since(last) < ttl {
            return true;
        }
        shared
            .transport
            .sessions_evicted
            .fetch_add(1, Ordering::Relaxed);
        false
    });
}

/// Wraps the connection socket so blocking reads wake up every
/// [`ServerConfig::read_timeout`] to observe the shutdown flag — even
/// mid-frame, so a byte-trickling peer cannot pin a thread across
/// shutdown. Reads never return `WouldBlock` to the framing layer;
/// they either deliver bytes, report a real error, or fail with
/// [`io::ErrorKind::Other`] once shutdown is requested.
///
/// The reader also enforces [`ServerConfig::frame_deadline`]: a timer
/// arms on the first byte read after [`Self::frame_done`] (i.e. the
/// first byte of a frame) and a read past the deadline fails with
/// [`io::ErrorKind::TimedOut`], so a slow-loris peer holds its
/// connection thread for at most one deadline.
struct ShutdownAwareReader<'a> {
    stream: BufReader<TcpStream>,
    shutdown: &'a AtomicBool,
    frame_deadline: Duration,
    mid_frame_since: Option<Instant>,
}

impl ShutdownAwareReader<'_> {
    /// Marks the current frame complete, disarming the mid-frame
    /// stall deadline until the next byte arrives.
    fn frame_done(&mut self) {
        self.mid_frame_since = None;
    }
}

impl Read for ShutdownAwareReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(io::Error::other("server shutting down"));
            }
            if let Some(since) = self.mid_frame_since {
                if since.elapsed() >= self.frame_deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "frame not completed within the frame deadline",
                    ));
                }
            }
            match self.stream.read(buf) {
                Ok(n) => {
                    if n > 0 && self.mid_frame_since.is_none() {
                        self.mid_frame_since = Some(Instant::now());
                    }
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                other => return other,
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<ServerShared>, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared
                .transport
                .connections_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = ShutdownAwareReader {
        stream: BufReader::new(stream),
        shutdown: &shared.shutdown,
        frame_deadline: shared.config.frame_deadline,
        mid_frame_since: None,
    };
    let mut writer = BufWriter::new(write_stream);

    loop {
        let envelope = match read_envelope(&mut reader, shared.config.max_frame_len) {
            Ok(envelope) => envelope,
            Err(ReadFrameError::Closed) => break, // clean client close
            Err(ReadFrameError::Io(_)) => {
                // Shutdown, transport failure, or a mid-frame stall
                // past the frame deadline; either way this connection
                // is done.
                if !shared.shutdown.load(Ordering::SeqCst) {
                    shared
                        .transport
                        .connections_dropped
                        .fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            Err(ReadFrameError::Wire(err)) => {
                // Malformed traffic: count it, tell the peer why
                // (best effort — the stream may be desynchronized),
                // and kill only this connection.
                shared
                    .transport
                    .decode_errors
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .transport
                    .connections_dropped
                    .fetch_add(1, Ordering::Relaxed);
                let reply = Frame::Error {
                    code: ErrorCode::Internal,
                    message: format!("protocol violation, closing connection: {err}"),
                };
                shared.transport.frames_out.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut writer, &reply);
                break;
            }
        };
        reader.frame_done();
        shared.transport.frames_in.fetch_add(1, Ordering::Relaxed);

        let reply = handle_frame(&shared, conn_id, envelope.frame);
        // Count before the bytes hit the wire: a client that has read
        // its reply must observe the counter already bumped, which
        // keeps `frames_out` exact from any observer's point of view
        // (the write-failure path below tears the connection down, so
        // the one-frame overcount there is visible as a drop).
        shared.transport.frames_out.fetch_add(1, Ordering::Relaxed);
        // Echo the request's correlation id (legacy corr-less request
        // → legacy corr-less reply, byte-identical to older servers).
        if write_frame_corr(&mut writer, &reply, envelope.corr).is_err() {
            shared
                .transport
                .connections_dropped
                .fetch_add(1, Ordering::Relaxed);
            break;
        }
    }
    // Close this connection's sessions: drop them from the registry
    // (the handle's `Drop` closes each; the engine still drains
    // whatever was already queued).
    shared
        .sessions
        .lock()
        .expect("session registry lock")
        .retain(|_, s| s.owner != conn_id);
}

fn error(code: ErrorCode, message: impl Into<String>) -> Frame {
    Frame::Error {
        code,
        message: message.into(),
    }
}

/// Looks up `session` in the registry, enforcing connection
/// ownership, and refreshes its idle clock.
#[allow(clippy::result_large_err)] // Err is the ready-to-send reply frame; rare path
fn lookup_session(
    shared: &ServerShared,
    conn_id: u64,
    session: u64,
) -> Result<Arc<ServeSession>, Frame> {
    let registry = shared.sessions.lock().expect("session registry lock");
    match registry.get(&session) {
        Some(s) if s.owner == conn_id => {
            *s.last_used.lock().expect("last_used lock") = Instant::now();
            Ok(Arc::clone(s))
        }
        // An existing session owned by another connection is reported
        // exactly like a missing one: ids must not leak across
        // clients.
        _ => Err(error(
            ErrorCode::UnknownSession,
            format!("session {session}"),
        )),
    }
}

fn handle_frame(shared: &ServerShared, conn_id: u64, frame: Frame) -> Frame {
    match frame {
        Frame::Hello { client: _ } => Frame::HelloAck {
            server: shared.config.server_name.clone(),
        },
        Frame::OpenSession(spec) => open_session(shared, conn_id, &spec, None),
        // A wire-level restore starts a fresh snapshot lineage
        // (generation 0): the wire state image cannot carry the
        // counter, and only cluster promotion needs it.
        Frame::RestoreSession { spec, state } => {
            open_session(shared, conn_id, &spec, Some((&state, 0)))
        }
        Frame::Tick { session, ticks } => run_ticks(shared, conn_id, session, ticks),
        Frame::SnapshotSession { session } => snapshot_session(shared, conn_id, session),
        Frame::CloseSession { session } => {
            let mut registry = shared.sessions.lock().expect("session registry lock");
            match registry.get(&session) {
                Some(s) if s.owner == conn_id => {
                    registry.remove(&session);
                    Frame::SessionClosed { session }
                }
                _ => error(ErrorCode::UnknownSession, format!("session {session}")),
            }
        }
        Frame::MetricsQuery => Frame::MetricsReply(wire_metrics(
            &shared.engine.metrics(),
            &shared.transport.snapshot(),
        )),
        Frame::ReplicateSnapshot {
            key,
            generation,
            spec,
            state,
        } => store_replica(shared, key, generation, spec, state),
        Frame::PromoteSession { key } => promote_session(shared, conn_id, key),
        Frame::RingUpdate { epoch, members } => ring_update(shared, epoch, &members),
        Frame::Recalibrate {
            session,
            state_dim,
            input_dim,
            a,
            b,
        } => recalibrate_session(shared, conn_id, session, state_dim, input_dim, &a, &b),
        // Reply-direction frames arriving from a client are requests
        // we cannot serve; answer with a typed error but keep the
        // connection (the stream itself is still well-formed).
        Frame::HelloAck { .. }
        | Frame::SessionOpened { .. }
        | Frame::TickOutcomes { .. }
        | Frame::SessionClosed { .. }
        | Frame::MetricsReply(_)
        | Frame::SessionSnapshot { .. }
        | Frame::ReplicateAck { .. }
        | Frame::RecalibrateAck { .. }
        | Frame::Error { .. } => error(
            ErrorCode::Internal,
            "reply-direction frame is not a valid request",
        ),
    }
}

/// Accepts (or rejects as stale) one replicated snapshot from a
/// remote primary.
fn store_replica(
    shared: &ServerShared,
    key: u64,
    generation: u64,
    spec: SessionSpec,
    state: WireSessionState,
) -> Frame {
    let mut replicas = shared.replicas.lock().expect("replica store lock");
    if let Some(existing) = replicas.get(&key) {
        if existing.generation >= generation {
            return error(
                ErrorCode::BadSnapshot,
                format!(
                    "stale replica generation {generation} for key {key} (holding {})",
                    existing.generation
                ),
            );
        }
    }
    replicas.insert(
        key,
        ReplicaEntry {
            generation,
            spec,
            state,
        },
    );
    Frame::ReplicateAck { key, generation }
}

/// Turns the stored replica under `key` into a live session owned by
/// the requesting connection. The replica is consumed; the reply
/// echoes the restored state so the promoting router can judge the
/// replica's freshness against its own checkpoint.
fn promote_session(shared: &ServerShared, conn_id: u64, key: u64) -> Frame {
    let entry = {
        let mut replicas = shared.replicas.lock().expect("replica store lock");
        match replicas.remove(&key) {
            Some(entry) => entry,
            None => return error(ErrorCode::UnknownSession, format!("replica {key}")),
        }
    };
    let reply = open_session(
        shared,
        conn_id,
        &entry.spec,
        Some((&entry.state, entry.generation)),
    );
    let Frame::SessionOpened { session, .. } = reply else {
        // The restore failed; put the replica back so a retry (or a
        // different router) can still promote it.
        shared
            .replicas
            .lock()
            .expect("replica store lock")
            .insert(key, entry);
        return reply;
    };
    shared.engine.record_failover();
    Frame::SessionSnapshot {
        session,
        state: entry.state,
    }
}

/// Accepts a ring-membership update, ignoring stale epochs. The ack
/// always carries the epoch now in force, so a sender with an old
/// view can tell it lost.
fn ring_update(shared: &ServerShared, epoch: u64, members: &[RingMember]) -> Frame {
    let current = shared
        .ring_epoch
        .fetch_max(epoch, Ordering::SeqCst)
        .max(epoch);
    if current == epoch {
        if let Some(sink) = &shared.config.replication {
            sink.ring_update(epoch, members);
        }
    }
    Frame::ReplicateAck {
        key: 0,
        generation: current,
    }
}

/// Builds the detector stack a spec describes — **exactly** the
/// construction `OpenSession`/`RestoreSession` perform, exposed so
/// differential harnesses (`awsad-testkit`) can assemble the
/// bit-identical local reference for a spec instead of hand-copying
/// the server's defaulting rules.
///
/// Returns `(logger, detector, state_dim, input_dim)`.
///
/// # Errors
///
/// The error code the server would reply with, plus a human-readable
/// detail.
pub fn session_parts_for_spec(
    spec: &SessionSpec,
) -> Result<(DataLogger, AdaptiveDetector, usize, usize), (ErrorCode, String)> {
    let Some(sim) = Simulator::all()
        .into_iter()
        .find(|s| s.table1_row() == spec.model as usize)
    else {
        return Err((
            ErrorCode::BadModel,
            format!("no Table 1 row {} (valid: 1..=5)", spec.model),
        ));
    };
    let model = sim.build();
    let w_m = if spec.max_window == 0 {
        model.default_max_window
    } else {
        spec.max_window as usize
    };
    let threshold = if spec.threshold.is_empty() {
        model.threshold.clone()
    } else {
        Vector::from_slice(&spec.threshold)
    };
    if threshold.len() != model.state_dim() {
        return Err((
            ErrorCode::DimensionMismatch,
            format!(
                "threshold has {} entries, {} wants {}",
                threshold.len(),
                model.name,
                model.state_dim()
            ),
        ));
    }
    // The output map is scenario metadata: ticks are state estimates
    // regardless of how many physical sensors produced them, so the
    // map never changes the detector stack — but a malformed one is a
    // client bug worth rejecting before it replicates across the
    // cluster.
    if !spec.output_map.is_empty() {
        let rows = spec.output_rows as usize;
        if rows == 0 || spec.output_map.len() != rows * model.state_dim() {
            return Err((
                ErrorCode::DimensionMismatch,
                format!(
                    "output map has {} entries, not {} rows x {} states",
                    spec.output_map.len(),
                    rows,
                    model.state_dim()
                ),
            ));
        }
        if spec.output_map.iter().any(|v| !v.is_finite()) {
            return Err((
                ErrorCode::DimensionMismatch,
                "output map entries must be finite".into(),
            ));
        }
    } else if spec.output_rows != 0 {
        return Err((
            ErrorCode::DimensionMismatch,
            format!(
                "output map declares {} rows but carries no entries",
                spec.output_rows
            ),
        ));
    }
    let det_cfg = DetectorConfig::with_min_window(threshold, spec.min_window as usize, w_m)
        .map_err(|e| (ErrorCode::Internal, format!("detector config: {e}")))?;
    let estimator = model
        .deadline_estimator(w_m)
        .map_err(|e| (ErrorCode::Internal, format!("deadline estimator: {e}")))?;
    let mut detector = AdaptiveDetector::new(det_cfg, estimator)
        .map_err(|e| (ErrorCode::Internal, format!("detector: {e}")))?;
    if spec.cache_capacity > 0 {
        detector.set_deadline_cache(DeadlineCache::new(CacheConfig::exact(
            spec.cache_capacity as usize,
        )));
    }
    let logger = model.data_logger(w_m);
    Ok((
        logger,
        detector,
        model.state_dim(),
        model.system.input_dim(),
    ))
}

/// Wraps [`session_parts_for_spec`] for the reply path. `Err` carries
/// the ready-to-send error frame.
#[allow(clippy::result_large_err)] // Err is the ready-to-send reply frame; rare path
fn build_session_parts(
    spec: &SessionSpec,
) -> Result<(DataLogger, AdaptiveDetector, usize, usize), Frame> {
    session_parts_for_spec(spec).map_err(|(code, msg)| error(code, msg))
}

/// Opens a fresh session, or — when `restore` carries a snapshot and
/// the generation to seed its lineage counter with — rebuilds one
/// mid-stream. Both paths answer `SessionOpened`.
fn open_session(
    shared: &ServerShared,
    conn_id: u64,
    spec: &SessionSpec,
    restore: Option<(&WireSessionState, u64)>,
) -> Frame {
    {
        let registry = shared.sessions.lock().expect("session registry lock");
        if registry.values().filter(|s| s.owner == conn_id).count()
            >= shared.config.max_sessions_per_connection
        {
            return error(
                ErrorCode::SessionLimit,
                format!(
                    "connection already holds {} sessions",
                    shared.config.max_sessions_per_connection
                ),
            );
        }
    }
    let (logger, detector, state_dim, input_dim) = match build_session_parts(spec) {
        Ok(parts) => parts,
        Err(reply) => return reply,
    };
    let (handle, outcomes) = match restore {
        None => shared.engine.add_session(logger, detector),
        Some((state, generation)) => {
            let mut snapshot = state.to_snapshot();
            snapshot.generation = generation;
            match shared.engine.restore_session(logger, detector, &snapshot) {
                Ok(pair) => pair,
                Err(e) => return error(ErrorCode::BadSnapshot, format!("restore: {e}")),
            }
        }
    };
    let id = handle.id().0;
    shared
        .sessions
        .lock()
        .expect("session registry lock")
        .insert(
            id,
            Arc::new(ServeSession {
                owner: conn_id,
                state_dim,
                input_dim,
                spec: spec.clone(),
                last_used: Mutex::new(Instant::now()),
                inner: Mutex::new(SessionInner { handle, outcomes }),
            }),
        );
    Frame::SessionOpened {
        session: id,
        state_dim: state_dim as u32,
        input_dim: input_dim as u32,
    }
}

fn snapshot_session(shared: &ServerShared, conn_id: u64, session: u64) -> Frame {
    let serve_session = match lookup_session(shared, conn_id, session) {
        Ok(s) => s,
        Err(reply) => return reply,
    };
    let inner = serve_session.inner.lock().expect("session inner lock");
    // The strict request/reply discipline means every prior batch's
    // outcomes have been delivered, so this only waits for queue
    // drain (normally instant).
    let snapshot = inner.handle.snapshot();
    Frame::SessionSnapshot {
        session,
        state: WireSessionState::from_snapshot(&snapshot),
    }
}

/// Swaps a live session's plant model mid-stream (accepted model
/// drift). The engine blocks until the session's queue is drained, so
/// the swap is a clean cut between two ticks; the post-swap state is
/// replicated like a post-batch state so failover restores the
/// *recalibrated* session.
fn recalibrate_session(
    shared: &ServerShared,
    conn_id: u64,
    session: u64,
    state_dim: u32,
    input_dim: u32,
    a: &[f64],
    b: &[f64],
) -> Frame {
    let serve_session = match lookup_session(shared, conn_id, session) {
        Ok(s) => s,
        Err(reply) => return reply,
    };
    let reject = |msg: String| {
        shared
            .transport
            .recalibrations_rejected
            .fetch_add(1, Ordering::Relaxed);
        error(ErrorCode::DimensionMismatch, msg)
    };
    if state_dim as usize != serve_session.state_dim
        || input_dim as usize != serve_session.input_dim
    {
        return reject(format!(
            "recalibrate declares dims {state_dim}/{input_dim}, session wants {}/{}",
            serve_session.state_dim, serve_session.input_dim
        ));
    }
    // The wire decoder already validated the element counts against
    // the declared dims, so these constructions cannot fail.
    let n = state_dim as usize;
    let m = input_dim as usize;
    let a = Matrix::from_row_major(n, n, a.to_vec()).expect("A validated on decode");
    let b = Matrix::from_row_major(n, m, b.to_vec()).expect("B validated on decode");
    let inner = serve_session.inner.lock().expect("session inner lock");
    let recal_count = match inner.handle.recalibrate(&a, &b) {
        Ok(count) => count,
        Err(e) => return reject(format!("recalibrate: {e}")),
    };
    if let Some(sink) = &shared.config.replication {
        // The queue is drained (recalibrate waited for it), so this
        // snapshot captures exactly the post-swap state; a failover
        // from here resumes under the new model.
        let snapshot = inner.handle.snapshot();
        let lag = sink.replicate(ReplicationUpdate {
            session,
            generation: snapshot.generation,
            spec: serve_session.spec.clone(),
            state: WireSessionState::from_snapshot(&snapshot),
        });
        shared.engine.record_replication(lag);
    }
    Frame::RecalibrateAck {
        session,
        recal_count,
    }
}

fn run_ticks(
    shared: &ServerShared,
    conn_id: u64,
    session: u64,
    ticks: Vec<crate::wire::WireTick>,
) -> Frame {
    let serve_session = match lookup_session(shared, conn_id, session) {
        Ok(s) => s,
        Err(reply) => return reply,
    };
    // Validate the whole batch before submitting anything: the engine
    // asserts on dimension mismatches, and a half-submitted batch
    // would desynchronize the outcome stream.
    for (i, tick) in ticks.iter().enumerate() {
        if tick.estimate.len() != serve_session.state_dim
            || tick.input.len() != serve_session.input_dim
        {
            return error(
                ErrorCode::DimensionMismatch,
                format!(
                    "tick {i}: got estimate/input dims {}/{}, session wants {}/{}",
                    tick.estimate.len(),
                    tick.input.len(),
                    serve_session.state_dim,
                    serve_session.input_dim
                ),
            );
        }
    }
    let inner = serve_session.inner.lock().expect("session inner lock");
    let n = ticks.len();
    for tick in ticks {
        // Under the Block policy this throttles the producer right
        // here — per-session bounded-queue backpressure reaching all
        // the way back through TCP to the client, which is waiting on
        // this very reply.
        if inner
            .handle
            .submit(Tick {
                estimate: Vector::from_vec(tick.estimate),
                input: Vector::from_vec(tick.input),
            })
            .is_err()
        {
            return error(ErrorCode::UnknownSession, "session closed under batch");
        }
    }
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        match inner.outcomes.recv_timeout(shared.config.outcome_timeout) {
            Ok(outcome) => outcomes.push(WireOutcome::from_outcome(&outcome)),
            Err(_) => {
                return error(
                    ErrorCode::Timeout,
                    format!("engine produced {}/{n} outcomes in time", outcomes.len()),
                )
            }
        }
    }
    if let Some(sink) = &shared.config.replication {
        // All outcomes are in hand, so the session queue is drained
        // and this snapshot captures exactly the post-batch state. The
        // sink only enqueues (replication is asynchronous), so the
        // reply is not delayed by the backup's socket.
        let snapshot = inner.handle.snapshot();
        let lag = sink.replicate(ReplicationUpdate {
            session,
            generation: snapshot.generation,
            spec: serve_session.spec.clone(),
            state: WireSessionState::from_snapshot(&snapshot),
        });
        shared.engine.record_replication(lag);
    }
    Frame::TickOutcomes { session, outcomes }
}

/// Collapses one [`LatencyHistogram`] into its wire summary
/// (count/mean/conservative quantile bounds/overflow). Shared by the
/// blocking server and `awsad-net`; quantile bounds honor the
/// histogram's overflow honesty (`None` when no finite bound holds).
pub fn wire_latency(hist: &LatencyHistogram) -> WireLatency {
    WireLatency {
        count: hist.count,
        mean_ns: hist.mean_ns(),
        p50_bound_ns: hist.quantile_bound_ns(0.5),
        p99_bound_ns: hist.quantile_bound_ns(0.99),
        overflow: hist.overflow,
    }
}

/// Folds an engine snapshot plus transport counters into the
/// `MetricsReply` image. The single construction path for metrics
/// replies: the blocking server uses it directly, and `awsad-net`
/// feeds it a cross-shard [`RuntimeMetrics::merged`] snapshot plus
/// summed transport counters, then fills the shard-specific appended
/// fields (`shards`, `partial_frame_resumes`) — which stay zero here,
/// marking an unsharded reply.
pub fn wire_metrics(engine: &RuntimeMetrics, transport: &TransportMetrics) -> WireMetrics {
    WireMetrics {
        sessions_active: engine.sessions_active,
        ticks_submitted: engine.ticks_submitted,
        ticks_processed: engine.ticks_processed,
        alarms_raised: engine.alarms_raised,
        degraded_ticks: engine.degraded_ticks,
        queue_depth_high_water: engine.queue_depth_high_water,
        log_latency: wire_latency(&engine.log_latency),
        detect_latency: wire_latency(&engine.detect_latency),
        frames_in: transport.frames_in,
        frames_out: transport.frames_out,
        decode_errors: transport.decode_errors,
        connections_opened: transport.connections_opened,
        connections_dropped: transport.connections_dropped,
        alloc_free_ticks: engine.alloc_free_ticks,
        batched_deadline_queries: engine.batched_deadline_queries,
        sessions_evicted: transport.sessions_evicted,
        shards: 0,
        partial_frame_resumes: 0,
        sessions_replicated: engine.sessions_replicated,
        failovers: engine.failovers,
        replication_lag_hwm: engine.replication_lag_hwm,
        batch_ticks: engine.batch_ticks,
        batch_sessions_hwm: engine.batch_sessions_hwm,
        scalar_fallback_ticks: engine.scalar_fallback_ticks,
        recalibrations: engine.recalibrations,
        recalibrations_rejected: transport.recalibrations_rejected,
    }
}
