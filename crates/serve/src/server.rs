//! The AWSAD detection server: a TCP front-end over one shared
//! [`DetectionEngine`].
//!
//! Threading model: one accept thread plus **one reader thread per
//! connection**. A connection thread owns its sessions exclusively
//! (id lookup happens in a connection-local map, so one client can
//! never address another's session) and speaks a strict
//! request/reply discipline: every decoded frame is answered by
//! exactly one reply frame. Cross-connection concurrency comes from
//! the engine's worker pool, not from interleaving on a socket.
//!
//! Hostile-input posture, per the serving-layer design:
//!
//! * the declared frame length is checked against
//!   [`ServerConfig::max_frame_len`] *before* any allocation;
//! * a malformed frame (bad magic/version/type, truncation, trailing
//!   bytes) increments the `decode_errors` transport counter and
//!   tears down **only that connection** — its sessions close, queued
//!   ticks still drain, and every other session keeps ticking;
//! * sockets carry a read timeout so connection threads observe the
//!   shutdown flag within [`ServerConfig::read_timeout`] even while a
//!   peer is idle or trickling bytes mid-frame;
//! * overload maps onto the engine's own backpressure: under
//!   [`BackpressurePolicy::Block`](awsad_runtime::BackpressurePolicy)
//!   a flooding client is throttled by its own unanswered batch, and
//!   under `Degrade` its over-quota ticks take the flagged cheap path
//!   — either way other sessions' latency is protected.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use awsad_core::{AdaptiveDetector, DetectorConfig};
use awsad_linalg::Vector;
use awsad_models::Simulator;
use awsad_reach::{CacheConfig, DeadlineCache};
use awsad_runtime::{
    DetectionEngine, EngineConfig, LatencyHistogram, RuntimeMetrics, SessionHandle, Tick,
    TickOutcome,
};

use crate::wire::{
    read_frame, write_frame, ErrorCode, Frame, ReadFrameError, SessionSpec, WireLatency,
    WireMetrics, WireOutcome, DEFAULT_MAX_FRAME_LEN,
};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine configuration (worker count, queue capacity,
    /// backpressure policy) for the shared detection engine.
    pub engine: EngineConfig,
    /// Maximum accepted frame payload length; larger declarations are
    /// rejected before allocation and drop the connection.
    pub max_frame_len: u32,
    /// Socket read timeout — the cadence at which idle connection
    /// threads re-check the shutdown flag.
    pub read_timeout: Duration,
    /// How long a `Tick` request may wait for the engine to produce
    /// its outcomes before the server answers with
    /// [`ErrorCode::Timeout`].
    pub outcome_timeout: Duration,
    /// Maximum sessions one connection may hold open.
    pub max_sessions_per_connection: usize,
    /// Name returned in the `HelloAck` handshake.
    pub server_name: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_millis(100),
            outcome_timeout: Duration::from_secs(30),
            max_sessions_per_connection: 64,
            server_name: format!("awsad-serve/{}", env!("CARGO_PKG_VERSION")),
        }
    }
}

/// Atomic transport counters (the serving-layer analogue of
/// [`RuntimeMetrics`]).
#[derive(Debug, Default)]
struct TransportInner {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    decode_errors: AtomicU64,
    connections_opened: AtomicU64,
    connections_dropped: AtomicU64,
}

/// A point-in-time copy of the server's transport counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportMetrics {
    /// Frames successfully decoded across all connections.
    pub frames_in: u64,
    /// Reply frames written across all connections.
    pub frames_out: u64,
    /// Malformed or oversized frames observed (each one also drops
    /// its connection).
    pub decode_errors: u64,
    /// Connections accepted over the server's lifetime.
    pub connections_opened: u64,
    /// Connections torn down for cause — decode error or transport
    /// I/O failure (clean client closes do not count).
    pub connections_dropped: u64,
}

impl TransportInner {
    fn snapshot(&self) -> TransportMetrics {
        TransportMetrics {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_dropped: self.connections_dropped.load(Ordering::Relaxed),
        }
    }
}

struct ServerShared {
    config: ServerConfig,
    engine: DetectionEngine,
    transport: TransportInner,
    shutdown: AtomicBool,
    /// Joined on shutdown; finished threads are reaped opportunistically
    /// by the accept loop so a long-lived server does not accumulate
    /// handles for long-gone connections.
    connections: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running detection server. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop, wakes every
/// connection thread, and joins them all.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Mutex<Option<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            engine: DetectionEngine::new(config.engine.clone()),
            config,
            transport: TransportInner::default(),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("awsad-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            local_addr,
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The address the server is listening on (with the actual port
    /// when bound ephemerally).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the shared engine's counters.
    pub fn engine_metrics(&self) -> RuntimeMetrics {
        self.shared.engine.metrics()
    }

    /// A point-in-time copy of the transport counters.
    pub fn transport_metrics(&self) -> TransportMetrics {
        self.shared.transport.snapshot()
    }

    /// Stops accepting, wakes every connection thread, and joins them
    /// all. Sessions close; already-queued ticks still drain on the
    /// engine. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept thread may be parked in accept(); poke it with a
        // throwaway connection so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.lock().expect("accept lock").take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self
            .shared
            .connections
            .lock()
            .expect("connections lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared
                    .transport
                    .connections_opened
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name("awsad-serve-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared))
                    .expect("spawn connection thread");
                let mut conns = shared.connections.lock().expect("connections lock");
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => {
                // Transient accept failure (e.g. EMFILE); back off
                // briefly instead of spinning.
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Wraps the connection socket so blocking reads wake up every
/// [`ServerConfig::read_timeout`] to observe the shutdown flag — even
/// mid-frame, so a byte-trickling peer cannot pin a thread across
/// shutdown. Reads never return `WouldBlock` to the framing layer;
/// they either deliver bytes, report a real error, or fail with
/// [`io::ErrorKind::Other`] once shutdown is requested.
struct ShutdownAwareReader<'a> {
    stream: BufReader<TcpStream>,
    shutdown: &'a AtomicBool,
}

impl Read for ShutdownAwareReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(io::Error::other("server shutting down"));
            }
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                other => return other,
            }
        }
    }
}

/// One open session as a connection thread sees it.
struct ConnSession {
    handle: SessionHandle,
    outcomes: mpsc::Receiver<TickOutcome>,
    state_dim: usize,
    input_dim: usize,
}

fn handle_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared
                .transport
                .connections_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = ShutdownAwareReader {
        stream: BufReader::new(stream),
        shutdown: &shared.shutdown,
    };
    let mut writer = BufWriter::new(write_stream);
    let mut sessions: HashMap<u64, ConnSession> = HashMap::new();

    loop {
        let frame = match read_frame(&mut reader, shared.config.max_frame_len) {
            Ok(frame) => frame,
            Err(ReadFrameError::Closed) => return, // clean client close
            Err(ReadFrameError::Io(_)) => {
                // Shutdown or transport failure; either way this
                // connection is done.
                if !shared.shutdown.load(Ordering::SeqCst) {
                    shared
                        .transport
                        .connections_dropped
                        .fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Err(ReadFrameError::Wire(err)) => {
                // Malformed traffic: count it, tell the peer why
                // (best effort — the stream may be desynchronized),
                // and kill only this connection.
                shared
                    .transport
                    .decode_errors
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .transport
                    .connections_dropped
                    .fetch_add(1, Ordering::Relaxed);
                let reply = Frame::Error {
                    code: ErrorCode::Internal,
                    message: format!("protocol violation, closing connection: {err}"),
                };
                shared.transport.frames_out.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut writer, &reply);
                return;
            }
        };
        shared.transport.frames_in.fetch_add(1, Ordering::Relaxed);

        let reply = handle_frame(&shared, &mut sessions, frame);
        // Count before the bytes hit the wire: a client that has read
        // its reply must observe the counter already bumped, which
        // keeps `frames_out` exact from any observer's point of view
        // (the write-failure path below tears the connection down, so
        // the one-frame overcount there is visible as a drop).
        shared.transport.frames_out.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut writer, &reply).is_err() {
            shared
                .transport
                .connections_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    // `sessions` drops here (or on any return): handles close, the
    // engine keeps draining whatever was already queued.
}

fn error(code: ErrorCode, message: impl Into<String>) -> Frame {
    Frame::Error {
        code,
        message: message.into(),
    }
}

fn handle_frame(
    shared: &ServerShared,
    sessions: &mut HashMap<u64, ConnSession>,
    frame: Frame,
) -> Frame {
    match frame {
        Frame::Hello { client: _ } => Frame::HelloAck {
            server: shared.config.server_name.clone(),
        },
        Frame::OpenSession(spec) => open_session(shared, sessions, &spec),
        Frame::Tick { session, ticks } => run_ticks(shared, sessions, session, ticks),
        Frame::CloseSession { session } => match sessions.remove(&session) {
            Some(conn_session) => {
                conn_session.handle.close();
                Frame::SessionClosed { session }
            }
            None => error(ErrorCode::UnknownSession, format!("session {session}")),
        },
        Frame::MetricsQuery => Frame::MetricsReply(wire_metrics(
            &shared.engine.metrics(),
            &shared.transport.snapshot(),
        )),
        // Reply-direction frames arriving from a client are requests
        // we cannot serve; answer with a typed error but keep the
        // connection (the stream itself is still well-formed).
        Frame::HelloAck { .. }
        | Frame::SessionOpened { .. }
        | Frame::TickOutcomes { .. }
        | Frame::SessionClosed { .. }
        | Frame::MetricsReply(_)
        | Frame::Error { .. } => error(
            ErrorCode::Internal,
            "reply-direction frame is not a valid request",
        ),
    }
}

fn open_session(
    shared: &ServerShared,
    sessions: &mut HashMap<u64, ConnSession>,
    spec: &SessionSpec,
) -> Frame {
    if sessions.len() >= shared.config.max_sessions_per_connection {
        return error(
            ErrorCode::SessionLimit,
            format!(
                "connection already holds {} sessions",
                shared.config.max_sessions_per_connection
            ),
        );
    }
    let Some(sim) = Simulator::all()
        .into_iter()
        .find(|s| s.table1_row() == spec.model as usize)
    else {
        return error(
            ErrorCode::BadModel,
            format!("no Table 1 row {} (valid: 1..=5)", spec.model),
        );
    };
    let model = sim.build();
    let w_m = if spec.max_window == 0 {
        model.default_max_window
    } else {
        spec.max_window as usize
    };
    let threshold = if spec.threshold.is_empty() {
        model.threshold.clone()
    } else {
        Vector::from_slice(&spec.threshold)
    };
    if threshold.len() != model.state_dim() {
        return error(
            ErrorCode::DimensionMismatch,
            format!(
                "threshold has {} entries, {} wants {}",
                threshold.len(),
                model.name,
                model.state_dim()
            ),
        );
    }
    let det_cfg = match DetectorConfig::with_min_window(threshold, spec.min_window as usize, w_m) {
        Ok(cfg) => cfg,
        Err(e) => return error(ErrorCode::Internal, format!("detector config: {e}")),
    };
    let estimator = match model.deadline_estimator(w_m) {
        Ok(est) => est,
        Err(e) => return error(ErrorCode::Internal, format!("deadline estimator: {e}")),
    };
    let mut detector = match AdaptiveDetector::new(det_cfg, estimator) {
        Ok(det) => det,
        Err(e) => return error(ErrorCode::Internal, format!("detector: {e}")),
    };
    if spec.cache_capacity > 0 {
        detector.set_deadline_cache(DeadlineCache::new(CacheConfig::exact(
            spec.cache_capacity as usize,
        )));
    }
    let logger = model.data_logger(w_m);
    let (handle, outcomes) = shared.engine.add_session(logger, detector);
    let id = handle.id().0;
    sessions.insert(
        id,
        ConnSession {
            handle,
            outcomes,
            state_dim: model.state_dim(),
            input_dim: model.system.input_dim(),
        },
    );
    Frame::SessionOpened {
        session: id,
        state_dim: model.state_dim() as u32,
        input_dim: model.system.input_dim() as u32,
    }
}

fn run_ticks(
    shared: &ServerShared,
    sessions: &mut HashMap<u64, ConnSession>,
    session: u64,
    ticks: Vec<crate::wire::WireTick>,
) -> Frame {
    let Some(conn_session) = sessions.get(&session) else {
        return error(ErrorCode::UnknownSession, format!("session {session}"));
    };
    // Validate the whole batch before submitting anything: the engine
    // asserts on dimension mismatches, and a half-submitted batch
    // would desynchronize the outcome stream.
    for (i, tick) in ticks.iter().enumerate() {
        if tick.estimate.len() != conn_session.state_dim
            || tick.input.len() != conn_session.input_dim
        {
            return error(
                ErrorCode::DimensionMismatch,
                format!(
                    "tick {i}: got estimate/input dims {}/{}, session wants {}/{}",
                    tick.estimate.len(),
                    tick.input.len(),
                    conn_session.state_dim,
                    conn_session.input_dim
                ),
            );
        }
    }
    let n = ticks.len();
    for tick in ticks {
        // Under the Block policy this throttles the producer right
        // here — per-session bounded-queue backpressure reaching all
        // the way back through TCP to the client, which is waiting on
        // this very reply.
        if conn_session
            .handle
            .submit(Tick {
                estimate: Vector::from_vec(tick.estimate),
                input: Vector::from_vec(tick.input),
            })
            .is_err()
        {
            return error(ErrorCode::UnknownSession, "session closed under batch");
        }
    }
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        match conn_session
            .outcomes
            .recv_timeout(shared.config.outcome_timeout)
        {
            Ok(outcome) => outcomes.push(WireOutcome::from_outcome(&outcome)),
            Err(_) => {
                return error(
                    ErrorCode::Timeout,
                    format!("engine produced {}/{n} outcomes in time", outcomes.len()),
                )
            }
        }
    }
    Frame::TickOutcomes { session, outcomes }
}

fn wire_latency(hist: &LatencyHistogram) -> WireLatency {
    WireLatency {
        count: hist.count,
        mean_ns: hist.mean_ns(),
        p50_bound_ns: hist.quantile_bound_ns(0.5),
        p99_bound_ns: hist.quantile_bound_ns(0.99),
        overflow: hist.overflow,
    }
}

fn wire_metrics(engine: &RuntimeMetrics, transport: &TransportMetrics) -> WireMetrics {
    WireMetrics {
        sessions_active: engine.sessions_active,
        ticks_submitted: engine.ticks_submitted,
        ticks_processed: engine.ticks_processed,
        alarms_raised: engine.alarms_raised,
        degraded_ticks: engine.degraded_ticks,
        queue_depth_high_water: engine.queue_depth_high_water,
        log_latency: wire_latency(&engine.log_latency),
        detect_latency: wire_latency(&engine.detect_latency),
        frames_in: transport.frames_in,
        frames_out: transport.frames_out,
        decode_errors: transport.decode_errors,
        connections_opened: transport.connections_opened,
        connections_dropped: transport.connections_dropped,
        alloc_free_ticks: engine.alloc_free_ticks,
        batched_deadline_queries: engine.batched_deadline_queries,
    }
}
