//! Detection-as-a-service for AWSAD: a TCP boundary around the
//! multi-session [`awsad_runtime::DetectionEngine`].
//!
//! PR 1's engine is an in-process library; a production deployment
//! monitors remote plants, which means measurements arrive over a
//! network, hostile bytes are a fact of life, and per-tick cost must
//! stay bounded even under malformed traffic. This crate adds that
//! boundary in three layers:
//!
//! * [`wire`] — a versioned, length-prefixed **binary wire protocol**
//!   (magic + version + frame type). Floats travel as IEEE-754 bit
//!   patterns, so the detection outcomes a client receives are
//!   *byte-identical* to stepping the engine locally. Encoding is
//!   explicit (no serde on the wire path) and decoding of hostile
//!   bytes can only fail with a typed [`wire::WireError`].
//! * [`server`] — a std-only TCP **server**: one reader thread per
//!   connection feeding one shared `DetectionEngine`, per-session
//!   bounded queues riding the engine's Block/Degrade backpressure,
//!   read timeouts, a max-frame-size guard enforced *before*
//!   allocation, per-connection error isolation (a malformed frame
//!   kills only that connection and bumps a decode-error counter),
//!   and graceful shutdown via a flag + listener wakeup.
//! * [`client`] — a blocking **client library** with single-tick and
//!   batched-tick APIs, used by `examples/serve_demo.rs` and the
//!   `serve_loopback` throughput bench. Every request carries a
//!   correlation id the server echoes, and a mid-stream failure
//!   poisons the client rather than risking reply misattribution.
//! * [`reconnect`] — [`ReconnectingClient`], which makes detection
//!   sessions survive connection failure: it checkpoints each session
//!   (`SnapshotSession`) after every batch, reconnects with
//!   decorrelated-jitter backoff, restores sessions
//!   (`RestoreSession`) on the fresh connection, and replays the
//!   interrupted batch — the resumed outcome stream is byte-identical
//!   to an uninterrupted run, even across a server restart.
//!
//! The server answers [`wire::Frame::MetricsQuery`] with the engine's
//! [`awsad_runtime::RuntimeMetrics`] plus its own transport counters
//! (frames in/out, decode errors, dropped connections, idle-TTL
//! session evictions).
//!
//! # Quickstart
//!
//! ```
//! use awsad_serve::client::Client;
//! use awsad_serve::server::{Server, ServerConfig};
//! use awsad_serve::wire::SessionSpec;
//!
//! // Ephemeral port on loopback; one engine shared by every client.
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! // Aircraft pitch (Table 1 row 1) on its profiled defaults.
//! let session = client.open_session(&SessionSpec::model_defaults(1)).unwrap();
//! let outcome = client
//!     .tick(session.id, &[0.0, 0.0, 0.0], &[0.0])
//!     .unwrap();
//! assert_eq!(outcome.seq, 0);
//! assert!(!outcome.alarm());
//!
//! client.close_session(session.id).unwrap();
//! server.shutdown();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod reconnect;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, RemoteSession};
pub use reconnect::{ReconnectingClient, RetryPolicy};
pub use server::{ReplicationSink, ReplicationUpdate, Server, ServerConfig, TransportMetrics};
pub use wire::{
    ErrorCode, Frame, RingMember, SessionSpec, WireError, WireLatency, WireMetrics, WireOutcome,
    WireSessionState, WireTick, DEFAULT_MAX_FRAME_LEN, VERSION,
};
